//! Spectral edge cases: known spectra, degenerate inputs, truncation.

use bbgnn_linalg::eigen::{jacobi_eigen, lanczos_topk};
use bbgnn_linalg::svd::{jacobi_svd, low_rank_approximation, randomized_svd};
use bbgnn_linalg::{CsrMatrix, DenseMatrix};

#[test]
fn zero_matrix_svd() {
    let z = DenseMatrix::zeros(5, 3);
    let svd = jacobi_svd(&z);
    for s in &svd.sigma {
        assert_eq!(*s, 0.0);
    }
    assert!(svd.reconstruct().max_abs_diff(&z) < 1e-15);
}

#[test]
fn rank_one_matrix_has_one_singular_value() {
    let u = DenseMatrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
    let v = DenseMatrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
    let a = u.matmul_nt(&v);
    let svd = jacobi_svd(&a);
    assert!(svd.sigma[0] > 1.0);
    for &s in &svd.sigma[1..] {
        assert!(s < 1e-10, "extra singular value {s}");
    }
}

#[test]
fn svd_truncate_keeps_leading_triplets() {
    let a = DenseMatrix::uniform(8, 8, 1.0, 1);
    let svd = jacobi_svd(&a);
    let t = svd.truncate(3);
    assert_eq!(t.sigma.len(), 3);
    assert_eq!(t.u.cols(), 3);
    assert_eq!(t.v.cols(), 3);
    assert_eq!(t.sigma, svd.sigma[..3].to_vec());
}

#[test]
fn truncate_beyond_rank_is_noop() {
    let a = DenseMatrix::uniform(4, 3, 1.0, 2);
    let svd = jacobi_svd(&a);
    let t = svd.truncate(99);
    assert_eq!(t.sigma.len(), svd.sigma.len());
}

#[test]
fn eigen_of_identity() {
    let e = jacobi_eigen(&DenseMatrix::identity(6));
    for &v in &e.values {
        assert!((v - 1.0).abs() < 1e-12);
    }
}

#[test]
fn eigen_of_diagonal_sorts_descending() {
    let mut d = DenseMatrix::zeros(4, 4);
    for (i, &v) in [3.0, -1.0, 7.0, 0.0].iter().enumerate() {
        d.set(i, i, v);
    }
    let e = jacobi_eigen(&d);
    assert_eq!(e.values, vec![7.0, 3.0, 0.0, -1.0]);
}

#[test]
fn complete_graph_spectrum() {
    // K_n adjacency has eigenvalues n-1 (once) and -1 (n-1 times).
    let n = 8;
    let mut trips = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                trips.push((i, j, 1.0));
            }
        }
    }
    let a = CsrMatrix::from_triplets(n, n, trips);
    let e = lanczos_topk(&a, 3, 5);
    assert!((e.values[0] - (n as f64 - 1.0)).abs() < 1e-8);
    assert!((e.values[1] + 1.0).abs() < 1e-8);
}

#[test]
fn gcn_normalized_spectrum_is_bounded_by_one() {
    // The symmetric GCN normalization has spectral radius exactly 1 with
    // eigenvector D^{1/2} 1.
    let mut trips = Vec::new();
    for i in 0..9usize {
        let j = (i + 1) % 9;
        trips.push((i, j, 1.0));
        trips.push((j, i, 1.0));
    }
    let a = CsrMatrix::from_triplets(9, 9, trips).gcn_normalize();
    let e = lanczos_topk(&a, 2, 3);
    assert!(
        (e.values[0] - 1.0).abs() < 1e-8,
        "top eigenvalue {}",
        e.values[0]
    );
    assert!(e.values[1] < 1.0);
}

#[test]
fn randomized_svd_respects_rank_argument() {
    let a = DenseMatrix::uniform(20, 20, 1.0, 4);
    let svd = randomized_svd(&a, 5, 4, 2, 9);
    assert_eq!(svd.sigma.len(), 5);
    assert_eq!(svd.u.shape(), (20, 5));
    assert_eq!(svd.v.shape(), (20, 5));
}

#[test]
fn low_rank_of_block_diagonal_recovers_blocks() {
    // Two disconnected cliques => adjacency is exactly rank 2 (plus sign
    // structure); rank-2 approximation should be near-exact.
    let n = 10;
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..5 {
        for j in 0..5 {
            a.set(i, j, 1.0);
            a.set(i + 5, j + 5, 1.0);
        }
    }
    let approx = low_rank_approximation(&a, 2, 3);
    assert!(approx.max_abs_diff(&a) < 1e-6);
}

#[test]
fn lanczos_handles_k_larger_than_n() {
    let a = CsrMatrix::from_triplets(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)]);
    let e = lanczos_topk(&a, 10, 1);
    assert!(e.values.len() <= 3);
}
