//! Graph neural network models and training loop.
//!
//! Implements the victim models of the paper:
//!
//! * [`gcn::Gcn`] — the Kipf–Welling graph convolutional network
//!   (Eq. 1–2 of the paper), configurable depth;
//! * [`gat::Gat`] — the graph attention network baseline with dense masked
//!   attention;
//! * [`linear_gcn::LinearGcn`] — the `A_nᴸ X W` linear surrogate used by
//!   the PEEGA derivation (Eq. 7) and by Metattack;
//! * [`train`] — the shared full-batch Adam training loop with
//!   early stopping on validation accuracy;
//! * [`eval`] — accuracy and repeated-run statistics (mean ± std, the
//!   format of the paper's tables).
//!
//! All models implement [`NodeClassifier`], the interface the attack,
//! defense, and bench crates program against.

#![deny(missing_docs)]

pub mod eval;
pub mod gat;
pub mod gcn;
pub mod linear_gcn;
pub mod sage;
pub mod train;

use bbgnn_graph::Graph;

pub use train::Mode;

/// A transductive node-classification model.
pub trait NodeClassifier {
    /// Trains on `g` (using `g.split.train` labels, early-stopping on
    /// `g.split.valid`).
    fn fit(&mut self, g: &Graph) -> train::TrainReport;

    /// Predicts a label for every node of `g`.
    fn predict(&self, g: &Graph) -> Vec<usize>;

    /// Convenience: accuracy over the test split of `g`.
    fn test_accuracy(&self, g: &Graph) -> f64 {
        eval::accuracy(&self.predict(g), &g.labels, &g.split.test)
    }
}
