//! Robustness metrics used by the paper's analysis figures.
//!
//! * [`edge_homophily`] — the proportion of edges whose endpoints share a
//!   label (Fig. 1);
//! * [`edge_diff_breakdown`] — the Add/Del × Same/Diff classification of
//!   topology modifications (Fig. 2);
//! * [`cross_label_similarity`] — the cross-label neighborhood similarity
//!   matrix of Ma et al. (Fig. 3).

use crate::Graph;
use bbgnn_linalg::dense::cosine_similarity;
use bbgnn_linalg::DenseMatrix;

/// Proportion of edges whose endpoints have the same label (Fig. 1).
/// Returns 0 on an edgeless graph.
pub fn edge_homophily(g: &Graph) -> f64 {
    let mut same = 0usize;
    let mut total = 0usize;
    for (u, v) in g.edges() {
        total += 1;
        if g.labels[u] == g.labels[v] {
            same += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

/// Edge-difference breakdown between a clean graph and a poisoned graph
/// (Fig. 2): additions/deletions split by whether the endpoints share a
/// label. Labels are taken from the clean graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeDiffBreakdown {
    /// Edges added between same-label endpoints.
    pub add_same: usize,
    /// Edges added between different-label endpoints.
    pub add_diff: usize,
    /// Edges deleted between same-label endpoints.
    pub del_same: usize,
    /// Edges deleted between different-label endpoints.
    pub del_diff: usize,
}

impl EdgeDiffBreakdown {
    /// Total modified edges.
    pub fn total(&self) -> usize {
        self.add_same + self.add_diff + self.del_same + self.del_diff
    }
}

/// Computes the Fig. 2 breakdown of `poisoned` relative to `clean`.
///
/// # Panics
/// Panics if the graphs have different node counts.
pub fn edge_diff_breakdown(clean: &Graph, poisoned: &Graph) -> EdgeDiffBreakdown {
    assert_eq!(
        clean.num_nodes(),
        poisoned.num_nodes(),
        "node count mismatch"
    );
    let mut out = EdgeDiffBreakdown::default();
    for (u, v) in poisoned.edges() {
        if !clean.has_edge(u, v) {
            if clean.labels[u] == clean.labels[v] {
                out.add_same += 1;
            } else {
                out.add_diff += 1;
            }
        }
    }
    for (u, v) in clean.edges() {
        if !poisoned.has_edge(u, v) {
            if clean.labels[u] == clean.labels[v] {
                out.del_same += 1;
            } else {
                out.del_diff += 1;
            }
        }
    }
    out
}

/// Cross-label neighborhood similarity (Fig. 3): entry `(y_i, y_j)` is the
/// mean cosine similarity between the normalized 1-hop neighbor label
/// histograms of nodes labeled `y_i` and nodes labeled `y_j`.
///
/// Nodes without neighbors contribute a zero histogram. The diagonal is the
/// intra-label similarity; off-diagonals are inter-label similarities.
pub fn cross_label_similarity(g: &Graph) -> DenseMatrix {
    let k = g.num_classes;
    let n = g.num_nodes();
    // Normalized label histogram of each node's neighborhood.
    let mut hist = DenseMatrix::zeros(n, k);
    for v in 0..n {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        for u in g.neighbors(v) {
            hist.add_at(v, g.labels[u], 1.0 / deg as f64);
        }
    }
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, &y) in g.labels.iter().enumerate() {
        by_class[y].push(v);
    }
    let mut sim = DenseMatrix::zeros(k, k);
    for yi in 0..k {
        for yj in yi..k {
            let mut acc = 0.0;
            let mut count = 0usize;
            for &v in &by_class[yi] {
                for &u in &by_class[yj] {
                    if yi == yj && v == u {
                        continue;
                    }
                    acc += cosine_similarity(hist.row(v), hist.row(u));
                    count += 1;
                }
            }
            let value = if count == 0 { 0.0 } else { acc / count as f64 };
            sim.set(yi, yj, value);
            sim.set(yj, yi, value);
        }
    }
    sim
}

/// Mean intra-label (diagonal) and inter-label (off-diagonal) similarity of
/// a [`cross_label_similarity`] matrix.
pub fn intra_inter_similarity(sim: &DenseMatrix) -> (f64, f64) {
    let k = sim.rows();
    let intra: f64 = (0..k).map(|i| sim.get(i, i)).sum::<f64>() / k as f64;
    if k < 2 {
        return (intra, 0.0);
    }
    let mut inter = 0.0;
    for i in 0..k {
        for j in 0..k {
            if i != j {
                inter += sim.get(i, j);
            }
        }
    }
    (intra, inter / (k * (k - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits::Split;
    use bbgnn_linalg::DenseMatrix;

    /// Two triangles joined by one cross edge; labels = triangle id.
    fn two_triangles() -> Graph {
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        Graph::new(
            6,
            &edges,
            DenseMatrix::identity(6),
            vec![0, 0, 0, 1, 1, 1],
            2,
            Split::trivial(6),
        )
    }

    #[test]
    fn homophily_of_two_triangles() {
        let g = two_triangles();
        // 6 intra edges, 1 inter edge.
        assert!((edge_homophily(&g) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn homophily_extremes() {
        let same = Graph::new(
            3,
            &[(0, 1), (1, 2)],
            DenseMatrix::identity(3),
            vec![0, 0, 0],
            1,
            Split::trivial(3),
        );
        assert_eq!(edge_homophily(&same), 1.0);
        let diff = Graph::new(
            2,
            &[(0, 1)],
            DenseMatrix::identity(2),
            vec![0, 1],
            2,
            Split::trivial(2),
        );
        assert_eq!(edge_homophily(&diff), 0.0);
    }

    #[test]
    fn edge_diff_classifies_all_four_cases() {
        let clean = two_triangles();
        let mut poison = clean.clone();
        poison.flip_edge(0, 3); // add diff
        poison.flip_edge(0, 4); // add diff
        poison.flip_edge(1, 2); // del same
        poison.flip_edge(2, 3); // del diff
        let d = edge_diff_breakdown(&clean, &poison);
        assert_eq!(
            d,
            EdgeDiffBreakdown {
                add_same: 0,
                add_diff: 2,
                del_same: 1,
                del_diff: 1
            }
        );
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn clean_graph_has_no_diff() {
        let g = two_triangles();
        assert_eq!(edge_diff_breakdown(&g, &g).total(), 0);
    }

    #[test]
    fn cross_label_similarity_is_high_intra_on_homophilous_graph() {
        let g = two_triangles();
        let sim = cross_label_similarity(&g);
        let (intra, inter) = intra_inter_similarity(&sim);
        assert!(intra > inter, "intra {intra} must exceed inter {inter}");
        assert_eq!(
            sim.get(0, 1),
            sim.get(1, 0),
            "similarity matrix is symmetric"
        );
    }

    #[test]
    fn adding_cross_label_edges_raises_inter_similarity() {
        let clean = two_triangles();
        let mut poison = clean.clone();
        // Blur the context: connect every cross pair.
        for u in 0..3 {
            for v in 3..6 {
                poison.add_edge(u, v);
            }
        }
        let (_, inter_clean) = intra_inter_similarity(&cross_label_similarity(&clean));
        let (_, inter_poison) = intra_inter_similarity(&cross_label_similarity(&poison));
        assert!(
            inter_poison > inter_clean,
            "cross-label additions must blur contexts: {inter_poison} <= {inter_clean}"
        );
    }

    #[test]
    fn isolated_nodes_contribute_zero_histograms() {
        let g = Graph::new(
            3,
            &[(0, 1)],
            DenseMatrix::identity(3),
            vec![0, 0, 1],
            2,
            Split::trivial(3),
        );
        let sim = cross_label_similarity(&g);
        // Class 1 has a single isolated node: zero histogram, similarity 0.
        assert_eq!(sim.get(1, 1), 0.0);
    }
}
