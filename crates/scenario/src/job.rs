//! Typed job specs and fault-isolated job execution.
//!
//! [`JobSpec`] is the declarative description of one experiment cell —
//! dataset, model/defense column, optional attack, evaluation mode, seed —
//! and doubles as the JSON wire format `bbgnn-serve` accepts on
//! `POST /jobs`. [`Job`] is its resolved, runnable form:
//! [`Job::run`] drives the cell with exactly the bench `FaultRunner`
//! semantics (DESIGN.md §12):
//!
//! * a [`catch_unwind`] panic boundary per attempt;
//! * deterministic seed-perturbed retries under the workspace
//!   [`RetryPolicy`];
//! * supervision check sites per attempt — a cancel (global or this job's
//!   [`CancelToken`]) skips the cell and discards partial values, a budget
//!   stop keeps them as `degraded` (the bounded run's intended output);
//! * store recording, so the returned [`CellResult::artifacts`] pin
//!   whatever content-addressed artifacts the cell touched;
//! * an obs `job/run` span per attempt.
//!
//! Checkpointing stays in the bench crate: the binaries wrap `Job::run`
//! with their `FaultRunner`, which adds the resume-from-checkpoint layer
//! on top of the outcome this module reports.

use crate::dataset;
use crate::eval::{evaluate_defender_checked, evaluate_defender_timed};
use crate::json::Json;
use crate::registry::{attacker_by_name, defender_by_name, AttackerKind, DefenderKind};
use bbgnn_errors::{BbgnnError, BbgnnResult, RetryPolicy};
use bbgnn_gnn::eval::MeanStd;
use bbgnn_graph::Graph;
use bbgnn_linalg::ExecContext;
use bbgnn_supervise::{CancelToken, RunBudget, Stop, SupervisionScope};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Placeholder rendered for a cell whose every attempt failed (or that a
/// stop skipped).
pub const FAILED_CELL: &str = "n/a";

/// What one cell evaluation produced: the formatted value plus whether a
/// degraded/fallback path was taken to get it.
#[derive(Clone, Debug, PartialEq)]
pub struct CellValue {
    /// Formatted cell text (goes into the table verbatim).
    pub text: String,
    /// True when the value came from a recovery path (e.g. training needed
    /// divergence rollbacks) and should be flagged in the outcome summary.
    pub degraded: bool,
}

impl CellValue {
    /// A clean (non-degraded) value.
    pub fn clean(text: impl Into<String>) -> Self {
        CellValue {
            text: text.into(),
            degraded: false,
        }
    }

    /// A value obtained via a fallback/recovery path.
    pub fn degraded(text: impl Into<String>) -> Self {
        CellValue {
            text: text.into(),
            degraded: true,
        }
    }
}

impl From<String> for CellValue {
    fn from(text: String) -> Self {
        CellValue::clean(text)
    }
}

/// How a job evaluates its cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalKind {
    /// Test accuracy mean ± std over the repeated runs (Tables IV–VI).
    Accuracy,
    /// Attack wall-clock seconds mean ± std (Table VII).
    AttackTime,
    /// Defender training seconds mean ± std (Table VIII).
    DefenseTime,
}

impl EvalKind {
    /// Wire name (`accuracy` / `attack_time` / `defense_time`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EvalKind::Accuracy => "accuracy",
            EvalKind::AttackTime => "attack_time",
            EvalKind::DefenseTime => "defense_time",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> BbgnnResult<EvalKind> {
        match s {
            "accuracy" => Ok(EvalKind::Accuracy),
            "attack_time" => Ok(EvalKind::AttackTime),
            "defense_time" => Ok(EvalKind::DefenseTime),
            other => Err(invalid(
                "eval.kind",
                format!("unknown eval kind {other:?}; use accuracy|attack_time|defense_time"),
            )),
        }
    }
}

/// Evaluation parameters of a [`JobSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct EvalSpec {
    /// Evaluation mode.
    pub kind: EvalKind,
    /// Repeated runs per cell.
    pub runs: usize,
    /// Dataset scale factor in `(0, 1]` (ignored for directory datasets).
    pub scale: f64,
    /// Perturbation rate for the attack, in `[0, 1]`.
    pub rate: f64,
}

impl Default for EvalSpec {
    fn default() -> Self {
        EvalSpec {
            kind: EvalKind::Accuracy,
            runs: 3,
            scale: 0.12,
            rate: 0.1,
        }
    }
}

/// One experiment cell, declaratively: the JSON wire format of
/// `POST /jobs` and the input to [`Job::new`]. See DESIGN.md §12 for the
/// field-by-field wire description.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Dataset name (`cora|citeseer|polblogs`) or dataset directory path.
    pub dataset: String,
    /// Raw model column (defaults to `"GCN"`); ignored when `defense` is
    /// set — models and defenders share the column namespace.
    pub model: Option<String>,
    /// Attacker name; `None` evaluates the clean graph.
    pub attack: Option<String>,
    /// Defender name; takes precedence over `model`.
    pub defense: Option<String>,
    /// Evaluation mode and parameters.
    pub eval: EvalSpec,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-job supervision budget spec (e.g. `epochs=500,queries=2M`);
    /// validated at resolution, installed by the executor.
    pub budget: Option<String>,
    /// Requested kernel worker threads (`0` = server/process default).
    /// Results are bitwise-identical for every value (DESIGN.md §7), so
    /// this only trades wall-clock.
    pub threads: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            dataset: "cora".to_string(),
            model: None,
            attack: None,
            defense: None,
            eval: EvalSpec::default(),
            seed: 7,
            budget: None,
            threads: 0,
        }
    }
}

fn invalid(what: &str, message: impl Into<String>) -> BbgnnError {
    BbgnnError::InvalidConfig {
        what: what.to_string(),
        message: message.into(),
    }
}

fn get_str(map: &std::collections::BTreeMap<String, Json>, key: &str) -> BbgnnResult<String> {
    match map.get(key) {
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| invalid(key, "expected a string")),
        None => Err(invalid(key, "missing required field")),
    }
}

fn get_opt_str(
    map: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> BbgnnResult<Option<String>> {
    match map.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(key, "expected a string or null")),
    }
}

impl JobSpec {
    /// Parses the JSON wire format. Every malformed field is an
    /// [`InvalidConfig`](BbgnnError::InvalidConfig) naming it.
    pub fn parse(text: &str) -> BbgnnResult<JobSpec> {
        let doc = Json::parse(text).map_err(|e| invalid("job spec", e))?;
        Self::from_json(&doc)
    }

    /// Builds a spec from a parsed JSON document.
    pub fn from_json(doc: &Json) -> BbgnnResult<JobSpec> {
        let map = doc
            .as_object()
            .ok_or_else(|| invalid("job spec", "expected a JSON object"))?;
        let defaults = JobSpec::default();
        let mut spec = JobSpec {
            dataset: get_str(map, "dataset")?,
            model: get_opt_str(map, "model")?,
            attack: get_opt_str(map, "attack")?,
            defense: get_opt_str(map, "defense")?,
            budget: get_opt_str(map, "budget")?,
            ..defaults
        };
        if let Some(v) = map.get("seed") {
            spec.seed = v
                .as_u64()
                .ok_or_else(|| invalid("seed", "expected an integer"))?;
        }
        if let Some(v) = map.get("threads") {
            spec.threads = v
                .as_usize()
                .ok_or_else(|| invalid("threads", "expected an integer (0 = auto)"))?;
        }
        if let Some(ev) = map.get("eval") {
            let emap = ev
                .as_object()
                .ok_or_else(|| invalid("eval", "expected an object"))?;
            if let Some(k) = emap.get("kind") {
                let k = k
                    .as_str()
                    .ok_or_else(|| invalid("eval.kind", "expected a string"))?;
                spec.eval.kind = EvalKind::parse(k)?;
            }
            if let Some(r) = emap.get("runs") {
                spec.eval.runs = r
                    .as_usize()
                    .ok_or_else(|| invalid("eval.runs", "expected an integer"))?;
            }
            if let Some(s) = emap.get("scale") {
                spec.eval.scale = s
                    .as_f64()
                    .ok_or_else(|| invalid("eval.scale", "expected a float"))?;
            }
            if let Some(r) = emap.get("rate") {
                spec.eval.rate = r
                    .as_f64()
                    .ok_or_else(|| invalid("eval.rate", "expected a float"))?;
            }
        }
        // Reject unknown top-level fields loudly: a typo'd "defence" must
        // not silently evaluate the raw model instead.
        for key in map.keys() {
            if !matches!(
                key.as_str(),
                "dataset" | "model" | "attack" | "defense" | "eval" | "seed" | "budget" | "threads"
            ) {
                return Err(invalid(key, "unknown job spec field"));
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Range-checks the numeric fields (same bounds as the CLI flags).
    pub fn validate(&self) -> BbgnnResult<()> {
        if !(self.eval.scale > 0.0 && self.eval.scale <= 1.0) {
            return Err(invalid(
                "eval.scale",
                format!("must be in (0, 1], got {}", self.eval.scale),
            ));
        }
        if self.eval.runs < 1 {
            return Err(invalid("eval.runs", "need at least one run"));
        }
        if !(self.eval.rate >= 0.0 && self.eval.rate <= 1.0) {
            return Err(invalid(
                "eval.rate",
                format!("must be in [0, 1], got {}", self.eval.rate),
            ));
        }
        if let Some(spec) = &self.budget {
            RunBudget::parse_spec(spec).map_err(|e| invalid("budget", e))?;
        }
        Ok(())
    }

    /// Serializes back to the wire format (round-trips through
    /// [`parse`](Self::parse)).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("dataset".to_string(), Json::string(&self.dataset)),
            (
                "eval".to_string(),
                Json::object([
                    ("kind".to_string(), Json::string(self.eval.kind.as_str())),
                    ("runs".to_string(), Json::number_usize(self.eval.runs)),
                    ("scale".to_string(), Json::number_f64(self.eval.scale)),
                    ("rate".to_string(), Json::number_f64(self.eval.rate)),
                ]),
            ),
            ("seed".to_string(), Json::number_u64(self.seed)),
            ("threads".to_string(), Json::number_usize(self.threads)),
        ];
        if let Some(m) = &self.model {
            pairs.push(("model".to_string(), Json::string(m)));
        }
        if let Some(a) = &self.attack {
            pairs.push(("attack".to_string(), Json::string(a)));
        }
        if let Some(d) = &self.defense {
            pairs.push(("defense".to_string(), Json::string(d)));
        }
        if let Some(b) = &self.budget {
            pairs.push(("budget".to_string(), Json::string(b)));
        }
        Json::object(pairs)
    }

    /// The column name this spec evaluates (`defense` over `model` over
    /// the `"GCN"` default).
    pub fn column_name(&self) -> &str {
        self.defense
            .as_deref()
            .or(self.model.as_deref())
            .unwrap_or("GCN")
    }

    /// Canonical cell key, matching the `tables_main` checkpoint format:
    /// `{dataset}/{attack-or-Clean}/{column}`.
    // lint: allow(key_fields) reason=table cell coordinate, not a result identity; the store key is fingerprint() below
    pub fn cell_key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.dataset,
            self.attack.as_deref().unwrap_or("Clean"),
            self.column_name()
        )
    }

    /// Identity of the *result* this spec computes: two specs with equal
    /// fingerprints produce bitwise-identical values, so an executor may
    /// serve one's result for the other. Excludes `threads` (bitwise
    /// determinism, DESIGN.md §7) and `budget` (changes how far a run
    /// gets, not what a completed run computes — but a *degraded* result
    /// must not be replayed for an unbounded spec, which the server checks
    /// via the recorded outcome).
    // lint: key_fields exclude(threads, budget) reason=threads is results-invariant (§7); budget bounds progress, not values — degraded replay is gated on the recorded outcome
    pub fn fingerprint(&self) -> String {
        format!(
            "dataset={}|attack={}|column={}|eval={}|runs={}|scale={}|rate={}|seed={}",
            self.dataset,
            self.attack.as_deref().unwrap_or("Clean"),
            self.column_name(),
            self.eval.kind.as_str(),
            self.eval.runs,
            self.eval.scale,
            self.eval.rate,
            self.seed
        )
    }
}

/// How one finished cell is reported (the `FaultRunner` outcome
/// vocabulary, DESIGN.md §11/§12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// First attempt succeeded.
    Ok,
    /// A later attempt succeeded after a panic or retryable error.
    Retried,
    /// A value was produced on a fallback path (divergence rollback,
    /// budget-truncated training).
    Degraded,
    /// Every attempt failed; the value renders as [`FAILED_CELL`].
    Failed,
    /// A supervision stop (cancel, or budget at the attempt boundary)
    /// skipped the cell; partial values were discarded and the cell must
    /// not be checkpointed — a resumed run recomputes it.
    Skipped,
}

impl CellOutcome {
    /// Checkpoint/wire name (`ok`, `retried`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Retried => "retried",
            CellOutcome::Degraded => "degraded",
            CellOutcome::Failed => "failed",
            CellOutcome::Skipped => "skipped",
        }
    }
}

/// What [`Job::run`] hands back: everything the bench checkpoint layer or
/// the server needs to persist and report one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell key the job ran under.
    pub key: String,
    /// Formatted value ([`FAILED_CELL`] for `Failed`/`Skipped`).
    pub value: String,
    /// Outcome classification.
    pub outcome: CellOutcome,
    /// Attempts consumed (including the successful one).
    pub attempts: usize,
    /// Terminal cause for `Failed` (and the observed stop for `Skipped`).
    pub detail: Option<String>,
    /// Content-addressed store keys this cell touched (hits and writes),
    /// for liveness pinning against `bbgnn-store gc`.
    pub artifacts: Vec<String>,
}

/// A resolved, runnable job: validated names, a private [`CancelToken`],
/// its own [`SupervisionScope`], and the retry policy its cell runs
/// under.
pub struct Job {
    key: String,
    spec: JobSpec,
    attack: Option<AttackerKind>,
    column: DefenderKind,
    cancel: CancelToken,
    scope: Arc<SupervisionScope>,
    policy: RetryPolicy,
    sleeper: fn(std::time::Duration),
}

impl Job {
    /// Resolves `spec` into a runnable job. Unknown attacker/defender
    /// names, out-of-range numerics, and malformed budget specs all
    /// surface here as [`InvalidConfig`](BbgnnError::InvalidConfig) — a
    /// job that constructs will not fail on its own configuration.
    pub fn new(spec: JobSpec) -> BbgnnResult<Job> {
        spec.validate()?;
        let attack = match spec.attack.as_deref() {
            None => None,
            Some(name) => Some(attacker_by_name(name, spec.eval.rate)?),
        };
        let identity = dataset::identity_features(&spec.dataset);
        let column = defender_by_name(spec.column_name(), identity)?;
        Ok(Job {
            key: spec.cell_key(),
            spec,
            attack,
            column,
            cancel: CancelToken::new(),
            scope: SupervisionScope::new(),
            policy: RetryPolicy::default(),
            sleeper: default_sleeper(),
        })
    }

    /// A job the binaries assemble directly from registry kinds — the
    /// row/column tuning of the tables (e.g. Pro-GNN's reduced Fig. 6
    /// budget) is not name-resolvable, and the checkpoint key formats
    /// predate [`JobSpec::cell_key`].
    pub fn from_parts(
        key: impl Into<String>,
        spec: JobSpec,
        attack: Option<AttackerKind>,
        column: DefenderKind,
    ) -> Job {
        Job {
            key: key.into(),
            spec,
            attack,
            column,
            cancel: CancelToken::new(),
            scope: SupervisionScope::new(),
            policy: RetryPolicy::default(),
            sleeper: default_sleeper(),
        }
    }

    /// Replaces the retry policy (tests, time-sensitive tables).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Job {
        self.policy = policy;
        self
    }

    /// Replaces the backoff sleeper (tests: a recording no-op instead of
    /// burning wall-clock time).
    pub fn with_sleeper(mut self, sleeper: fn(std::time::Duration)) -> Job {
        self.sleeper = sleeper;
        self
    }

    /// The cell key this job runs under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The spec this job was resolved from.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The per-job budget, parsed (`None` when the spec set none).
    pub fn budget(&self) -> Option<RunBudget> {
        let spec = self.spec.budget.as_deref()?;
        RunBudget::parse_spec(spec).ok()
    }

    /// A handle that cancels this job at the next attempt boundary.
    /// Unlike [`scope`](Self::scope)'s cancel, the token does not reach
    /// the supervised loops *inside* an attempt — prefer cancelling the
    /// scope.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// This job's own supervision scope. [`run`](Self::run) enters it for
    /// the duration of the cell, so every check site the cell reaches —
    /// training epochs, attacker scans, eigensolver sweeps — observes it.
    /// Cancelling it stops this job and only this job; its counters
    /// describe this job and only this job.
    pub fn scope(&self) -> Arc<SupervisionScope> {
        Arc::clone(&self.scope)
    }

    fn stop_now(&self) -> Option<Stop> {
        if self.cancel.is_cancelled() {
            return Some(Stop::Cancelled);
        }
        // The scoped check covers the process-default domain too (SIGINT,
        // `--deadline`/`--budget`), then this job's own cancel/budget.
        self.scope.stop_reason("job/run")
    }

    /// Runs the cell to completion: load (or reuse) the input graph,
    /// poison it if the job has an attacker, evaluate, all inside the
    /// panic/retry/supervision boundary described at module level.
    pub fn run(&self, ctx: &ExecContext) -> CellResult {
        self.run_with_graph(ctx, None)
    }

    /// [`run`](Self::run) over an already-prepared input graph — the
    /// binaries share one poisoned graph across a whole table row, so the
    /// per-cell job must not re-poison it. `prepared` is used as the
    /// evaluation input verbatim (the job's own attack, if any, is *not*
    /// re-applied), except for `attack_time` evaluations, which measure
    /// the attack against it.
    pub fn run_with_graph(&self, ctx: &ExecContext, prepared: Option<&Graph>) -> CellResult {
        // The cell runs inside this job's supervision scope: check sites
        // it reaches consult the scope (plus the process-default domain),
        // and the job's own budget — if the spec set one — bounds this
        // job alone. With an inactive scope and no spec budget (the CLI
        // path) this changes nothing observable.
        let _scope = bbgnn_supervise::enter(&self.scope);
        if let Some(budget) = self.budget() {
            self.scope.install_budget(&budget);
        }
        // Record which store artifacts this cell touches (hits and writes
        // alike) so the caller can pin them against `bbgnn-store gc`.
        // Recording is thread-local: the cell runs on this thread, pool
        // workers spawned inside are intentionally not captured.
        bbgnn_store::start_recording();
        let mut last_cause = String::new();
        for attempt in 0..=self.policy.max_retries {
            // Supervision stop at an attempt boundary: skip, discarding
            // partials. Checked per attempt, not just at entry — a stop
            // arriving mid-cell can surface as a panic from an infallible
            // numeric façade, and retrying it would burn the retry budget
            // into a `failed` outcome that a resume could never heal.
            if let Some(stop) = self.stop_now() {
                return self.skipped(format!("{stop:?}"));
            }
            let seed = RetryPolicy::seed_for_attempt(self.spec.seed, attempt);
            let _span = bbgnn_obs::span!(
                "job/run",
                key = self.key.as_str(),
                attempt = attempt,
                seed = seed,
                threads = ctx.threads()
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| self.attempt(prepared, seed)));
            let error = match outcome {
                Ok(Ok(value)) => {
                    // A cancel landing mid-cell surfaces as an Ok value
                    // truncated by the stop (training's best-so-far
                    // snapshot, flagged degraded). Returning it would let
                    // a checkpoint replay the truncated value verbatim,
                    // so under a cancel a degraded value is a skip, not a
                    // result. Budget stops keep it: a bounded run's
                    // partial cells are its intended output (§11).
                    if value.degraded && matches!(self.stop_now(), Some(Stop::Cancelled)) {
                        return self.skipped("cancelled mid-cell; partial value discarded");
                    }
                    let outcome = if value.degraded {
                        CellOutcome::Degraded
                    } else if attempt > 0 {
                        CellOutcome::Retried
                    } else {
                        CellOutcome::Ok
                    };
                    return CellResult {
                        key: self.key.clone(),
                        value: value.text,
                        outcome,
                        attempts: attempt + 1,
                        detail: None,
                        artifacts: bbgnn_store::take_recording(),
                    };
                }
                Ok(Err(e)) => e,
                // A panic is treated like a retryable fault: most panics
                // under adversarial perturbation are numerical blowups,
                // and the perturbed-seed retry is cheap and deterministic.
                Err(payload) => BbgnnError::ExperimentAborted {
                    cell: self.key.clone(),
                    cause: format!("panic: {}", panic_message(&payload)),
                },
            };
            // A supervision stop surfacing as an error is not a failure of
            // the cell: never retried, never persisted — the run is
            // winding down and a resume will recompute this cell.
            if error.is_supervision_stop() {
                return self.skipped(error.to_string());
            }
            last_cause = error.to_string();
            let retryable =
                error.is_retryable() || matches!(error, BbgnnError::ExperimentAborted { .. });
            if !retryable || attempt == self.policy.max_retries {
                break;
            }
            if error.wants_backoff() {
                (self.sleeper)(self.policy.backoff_for_attempt(attempt + 1));
            }
        }
        CellResult {
            key: self.key.clone(),
            value: FAILED_CELL.to_string(),
            outcome: CellOutcome::Failed,
            attempts: self.policy.max_retries + 1,
            detail: Some(last_cause),
            artifacts: bbgnn_store::take_recording(),
        }
    }

    fn skipped(&self, detail: impl Into<String>) -> CellResult {
        let _ = bbgnn_store::take_recording();
        CellResult {
            key: self.key.clone(),
            value: FAILED_CELL.to_string(),
            outcome: CellOutcome::Skipped,
            attempts: 0,
            detail: Some(detail.into()),
            artifacts: Vec::new(),
        }
    }

    /// One attempt: resolve the input graph, then evaluate.
    fn attempt(&self, prepared: Option<&Graph>, seed: u64) -> BbgnnResult<CellValue> {
        match self.spec.eval.kind {
            EvalKind::Accuracy => {
                let owned;
                let input = match prepared {
                    Some(g) => g,
                    None => {
                        let clean = dataset::load_dataset(
                            &self.spec.dataset,
                            self.spec.eval.scale,
                            self.spec.seed,
                        )?;
                        owned = match &self.attack {
                            Some(kind) => kind.build().attack(&clean).poisoned,
                            None => clean,
                        };
                        &owned
                    }
                };
                let (stats, health) =
                    evaluate_defender_checked(&self.column, input, self.spec.eval.runs, seed);
                let text = stats.to_string();
                Ok(if health.is_degraded() {
                    CellValue::degraded(text)
                } else {
                    CellValue::clean(text)
                })
            }
            EvalKind::AttackTime => {
                let kind = self.attack.as_ref().ok_or_else(|| {
                    invalid("attack", "attack_time evaluation requires an attacker")
                })?;
                let owned;
                let input = match prepared {
                    Some(g) => g,
                    None => {
                        owned = dataset::load_dataset(
                            &self.spec.dataset,
                            self.spec.eval.scale,
                            self.spec.seed,
                        )?;
                        &owned
                    }
                };
                let mut secs = Vec::with_capacity(self.spec.eval.runs);
                for _ in 0..self.spec.eval.runs {
                    let mut attacker = kind.build();
                    secs.push(attacker.attack(input).elapsed.as_secs_f64());
                }
                let stats = MeanStd::of(&secs);
                Ok(CellValue::clean(format!(
                    "{:.2}±{:.2}",
                    stats.mean, stats.std
                )))
            }
            EvalKind::DefenseTime => {
                let owned;
                let input = match prepared {
                    Some(g) => g,
                    None => {
                        owned = dataset::load_dataset(
                            &self.spec.dataset,
                            self.spec.eval.scale,
                            self.spec.seed,
                        )?;
                        &owned
                    }
                };
                let (_, secs) =
                    evaluate_defender_timed(&self.column, input, self.spec.eval.runs, seed);
                Ok(CellValue::clean(format!(
                    "{:.2}±{:.2}",
                    secs.mean, secs.std
                )))
            }
        }
    }
}

fn default_sleeper() -> fn(std::time::Duration) {
    // lint: allow(clock) reason=the one real backoff sleeper; tests inject a virtual clock via with_sleeper
    std::thread::sleep
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global supervision state.
    static SUPERVISE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = SUPERVISE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bbgnn_supervise::shutdown();
        guard
    }

    fn quiet_sleep(_d: std::time::Duration) {}

    fn small_spec() -> JobSpec {
        JobSpec {
            dataset: "cora".to_string(),
            eval: EvalSpec {
                runs: 1,
                scale: 0.05,
                ..EvalSpec::default()
            },
            ..JobSpec::default()
        }
    }

    #[test]
    fn wire_format_round_trips() {
        let spec = JobSpec {
            dataset: "citeseer".to_string(),
            attack: Some("PEEGA".to_string()),
            defense: Some("GNAT".to_string()),
            eval: EvalSpec {
                kind: EvalKind::Accuracy,
                runs: 2,
                scale: 0.1,
                rate: 0.15,
            },
            seed: 11,
            budget: Some("epochs=500".to_string()),
            threads: 2,
            ..JobSpec::default()
        };
        let text = spec.to_json().to_pretty();
        let back = JobSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.cell_key(), "citeseer/PEEGA/GNAT");
    }

    #[test]
    fn parse_rejects_malformed_fields_by_name() {
        for (body, what) in [
            (r#"[1,2]"#, "job spec"),
            (r#"{"eval": {}}"#, "dataset"),
            (r#"{"dataset": 5}"#, "dataset"),
            (r#"{"dataset": "cora", "seed": "x"}"#, "seed"),
            (
                r#"{"dataset": "cora", "eval": {"kind": "speed"}}"#,
                "eval.kind",
            ),
            (
                r#"{"dataset": "cora", "eval": {"scale": 2.0}}"#,
                "eval.scale",
            ),
            (r#"{"dataset": "cora", "budget": "steps=3"}"#, "budget"),
            (r#"{"dataset": "cora", "defence": "GNAT"}"#, "defence"),
        ] {
            match JobSpec::parse(body) {
                Err(BbgnnError::InvalidConfig { what: got, .. }) => {
                    assert_eq!(got, what, "for body {body}")
                }
                other => panic!("expected InvalidConfig({what}) for {body}, got {other:?}"),
            }
        }
    }

    #[test]
    fn job_resolution_rejects_unknown_names() {
        let mut spec = small_spec();
        spec.attack = Some("Nettack".to_string());
        assert!(matches!(
            Job::new(spec),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "attack"
        ));
        let mut spec = small_spec();
        spec.defense = Some("Vaccine".to_string());
        assert!(matches!(
            Job::new(spec),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "defense"
        ));
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_seed() {
        let a = JobSpec {
            threads: 1,
            ..small_spec()
        };
        let b = JobSpec {
            threads: 8,
            ..small_spec()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = JobSpec {
            seed: 8,
            ..small_spec()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn clean_accuracy_job_runs_and_is_deterministic() {
        let _guard = locked();
        let ctx = ExecContext::from_env();
        let job = Job::new(small_spec()).unwrap().with_sleeper(quiet_sleep);
        let first = job.run(&ctx);
        assert_eq!(first.outcome, CellOutcome::Ok, "detail: {:?}", first.detail);
        assert_eq!(first.key, "cora/Clean/GCN");
        assert_eq!(first.attempts, 1);
        let again = Job::new(small_spec())
            .unwrap()
            .with_sleeper(quiet_sleep)
            .run(&ctx);
        assert_eq!(again.value, first.value, "same spec, same bytes");
    }

    #[test]
    fn cancelled_token_skips_without_running() {
        let _guard = locked();
        let ctx = ExecContext::from_env();
        let job = Job::new(small_spec()).unwrap().with_sleeper(quiet_sleep);
        job.cancel_token().cancel();
        let res = job.run(&ctx);
        assert_eq!(res.outcome, CellOutcome::Skipped);
        assert_eq!(res.value, FAILED_CELL);
        assert_eq!(res.attempts, 0, "the cell body must not have run");
        bbgnn_supervise::shutdown();
    }

    #[test]
    fn global_cancel_skips_too() {
        let _guard = locked();
        let ctx = ExecContext::from_env();
        bbgnn_supervise::request_cancel();
        let res = Job::new(small_spec())
            .unwrap()
            .with_sleeper(quiet_sleep)
            .run(&ctx);
        assert_eq!(res.outcome, CellOutcome::Skipped);
        bbgnn_supervise::shutdown();
    }

    #[test]
    fn budget_spec_is_parsed_and_exposed() {
        let spec = JobSpec {
            budget: Some("epochs=5".to_string()),
            ..small_spec()
        };
        let job = Job::new(spec).unwrap();
        assert_eq!(job.budget().and_then(|b| b.epochs), Some(5));
    }

    #[test]
    fn attack_time_requires_an_attacker() {
        let _guard = locked();
        let ctx = ExecContext::from_env();
        let spec = JobSpec {
            eval: EvalSpec {
                kind: EvalKind::AttackTime,
                runs: 1,
                scale: 0.05,
                ..EvalSpec::default()
            },
            ..small_spec()
        };
        let res = Job::new(spec).unwrap().with_sleeper(quiet_sleep).run(&ctx);
        assert_eq!(res.outcome, CellOutcome::Failed);
        assert!(res.detail.unwrap_or_default().contains("attack_time"));
    }
}
