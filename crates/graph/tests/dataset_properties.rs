//! Dataset-generator and metric properties beyond the unit tests:
//! calibration stability across seeds, degenerate topologies, and the
//! structural invariants the attack/defense stack assumes.

use bbgnn_graph::datasets::{DatasetSpec, SbmParams};
use bbgnn_graph::metrics::{
    cross_label_similarity, edge_diff_breakdown, edge_homophily, intra_inter_similarity,
};
use bbgnn_graph::{Graph, Split};
use bbgnn_linalg::DenseMatrix;

#[test]
fn homophily_calibration_is_stable_across_seeds() {
    for seed in 0..5 {
        let g = DatasetSpec::CoraLike.generate(0.15, seed);
        let h = edge_homophily(&g);
        assert!(
            (h - 0.81).abs() < 0.06,
            "seed {seed}: homophily {h} off target"
        );
    }
}

#[test]
fn all_presets_have_connected_cores() {
    // Not full connectivity (real citation graphs aren't connected either),
    // but the largest component must dominate so that propagation works.
    for spec in DatasetSpec::paper_datasets() {
        let g = spec.generate(0.15, 3);
        let n = g.num_nodes();
        // BFS from the highest-degree node.
        let start = (0..n).max_by_key(|&v| g.degree(v)).unwrap();
        let mut seen = vec![false; n];
        seen[start] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        let comp = seen.iter().filter(|&&s| s).count();
        assert!(
            comp * 2 > n,
            "{}: largest component {comp}/{n} too small",
            spec.name()
        );
    }
}

#[test]
fn class_balance_is_roughly_uniform() {
    let g = DatasetSpec::CoraLike.generate(0.2, 4);
    let mut counts = vec![0usize; g.num_classes];
    for &y in &g.labels {
        counts[y] += 1;
    }
    let expected = g.num_nodes() / g.num_classes;
    for (c, &count) in counts.iter().enumerate() {
        assert!(
            count.abs_diff(expected) <= 1,
            "class {c} has {count} nodes, expected ~{expected}"
        );
    }
}

#[test]
fn splits_do_not_leak_between_sets() {
    let g = DatasetSpec::CiteseerLike.generate(0.1, 5);
    let train: std::collections::HashSet<_> = g.split.train.iter().collect();
    let valid: std::collections::HashSet<_> = g.split.valid.iter().collect();
    for v in &g.split.test {
        assert!(!train.contains(v) && !valid.contains(v));
    }
    for v in &g.split.valid {
        assert!(!train.contains(v));
    }
    assert_eq!(g.split.total(), g.num_nodes());
}

#[test]
fn homophily_generator_extreme_targets() {
    let base = SbmParams {
        nodes: 300,
        edges: 900,
        classes: 3,
        homophily: 0.0,
        feature_dim: 30,
        active_features: 4,
        feature_purity: 0.5,
        train_frac: 0.2,
        valid_frac: 0.2,
    };
    let hetero = base.generate(6);
    assert!(edge_homophily(&hetero) < 0.05, "homophily 0 target missed");
    let homo = SbmParams {
        homophily: 1.0,
        ..base
    }
    .generate(6);
    assert!(edge_homophily(&homo) > 0.95, "homophily 1 target missed");
}

#[test]
fn cross_label_similarity_detects_heterophily() {
    let base = SbmParams {
        nodes: 200,
        edges: 600,
        classes: 2,
        homophily: 0.05,
        feature_dim: 20,
        active_features: 4,
        feature_purity: 0.5,
        train_frac: 0.2,
        valid_frac: 0.2,
    };
    let hetero = base.generate(7);
    let (intra, inter) = intra_inter_similarity(&cross_label_similarity(&hetero));
    // In a heterophilous graph, neighbors of class-0 nodes are class-1 and
    // vice versa — histograms of SAME-class nodes still align (both point
    // at the other class), so intra stays high; the metric measures
    // context consistency, not homophily itself.
    assert!(
        intra > 0.5,
        "intra-label context consistency {intra} unexpectedly low"
    );
    assert!(inter >= 0.0);
}

#[test]
fn edge_diff_is_symmetric_in_total() {
    let a = DatasetSpec::CoraLike.generate(0.05, 8);
    let mut b = a.clone();
    b.flip_edge(0, 1);
    b.flip_edge(2, 3);
    let ab = edge_diff_breakdown(&a, &b);
    let ba = edge_diff_breakdown(&b, &a);
    assert_eq!(ab.total(), ba.total());
    assert_eq!(ab.add_same + ab.add_diff, ba.del_same + ba.del_diff);
}

#[test]
fn propagate_preserves_total_mass_on_regular_graphs() {
    // On a d-regular graph the normalized adjacency is doubly stochastic,
    // so propagation preserves column sums of the feature matrix.
    let n = 12;
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect(); // cycle
    let g = Graph::new(
        n,
        &edges,
        DenseMatrix::filled(n, 2, 1.0),
        vec![0; n],
        1,
        Split::trivial(n),
    );
    let h = g.propagate(3);
    for (a, b) in h.col_sums().iter().zip(g.features.col_sums()) {
        assert!((a - b).abs() < 1e-9, "mass not preserved: {a} vs {b}");
    }
}

#[test]
fn k_hop_neighbors_are_monotone_in_k() {
    let g = DatasetSpec::CoraLike.generate(0.05, 9);
    for v in 0..10 {
        let one = g.k_hop_neighbors(v, 1);
        let two = g.k_hop_neighbors(v, 2);
        let three = g.k_hop_neighbors(v, 3);
        assert!(one.len() <= two.len() && two.len() <= three.len());
        for u in &one {
            assert!(two.binary_search(u).is_ok(), "1-hop ⊄ 2-hop at {v}");
        }
    }
}

#[test]
fn identity_feature_graphs_have_unit_rows() {
    let g = DatasetSpec::PolblogsLike.generate(0.1, 10);
    for v in 0..g.num_nodes() {
        let row_sum: f64 = g.features.row(v).iter().sum();
        assert_eq!(
            row_sum, 1.0,
            "identity feature row {v} must have exactly one bit"
        );
    }
}
