// Fixture: span/event/counter/kernel-timer name literals absent from the
// DESIGN.md §8 taxonomy must fire `obs_name`.
pub fn badly_named(obs: &Obs) {
    let _g = span!("attack", nodes = 3);
    event!("train/unheard_of", epoch = 1);
    obs.counter("attack/bogus_counter", 1);
    obs.kernel_timer("kernel/bogus", 1, 2);
}
