//! Accuracy and repeated-run statistics.

/// Fraction of `nodes` where `preds` matches `labels`.
///
/// # Panics
/// Panics if `nodes` is empty or contains out-of-range indices.
pub fn accuracy(preds: &[usize], labels: &[usize], nodes: &[usize]) -> f64 {
    assert!(!nodes.is_empty(), "accuracy over an empty node set");
    let correct = nodes.iter().filter(|&&v| preds[v] == labels[v]).count();
    correct as f64 / nodes.len() as f64
}

/// Mean and (population) standard deviation of repeated-run results — the
/// `Accuracy±Std` format of the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Mean over runs.
    pub mean: f64,
    /// Population standard deviation over runs.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean ± std of `values`.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "MeanStd of an empty slice");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    /// Formats as percentage with two decimals, e.g. `83.36±0.19`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches_on_subset() {
        let preds = vec![0, 1, 2, 0];
        let labels = vec![0, 1, 0, 1];
        assert_eq!(accuracy(&preds, &labels, &[0, 1, 2, 3]), 0.5);
        assert_eq!(accuracy(&preds, &labels, &[0, 1]), 1.0);
        assert_eq!(accuracy(&preds, &labels, &[2, 3]), 0.0);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let s = MeanStd::of(&[0.5, 0.5, 0.5]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let s = MeanStd::of(&[0.0, 1.0]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std, 0.5);
    }

    #[test]
    fn display_matches_paper_format() {
        let s = MeanStd {
            mean: 0.8336,
            std: 0.0019,
        };
        assert_eq!(s.to_string(), "83.36±0.19");
    }

    #[test]
    #[should_panic(expected = "empty node set")]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[0], &[0], &[]);
    }
}
