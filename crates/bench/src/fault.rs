//! Fault-isolated execution of experiment cells.
//!
//! [`FaultRunner`] wraps every table/figure cell in a panic boundary
//! ([`std::panic::catch_unwind`]) and the workspace
//! [`RetryPolicy`]: a cell that panics or returns a retryable
//! [`BbgnnError`] is re-run with a deterministically perturbed seed; a cell
//! that exhausts its budget is recorded as `failed` with its cause and the
//! sweep continues — one pathological cell can no longer take down an
//! entire table run. Completed cells go straight into the
//! [`Checkpoint`], so a killed sweep resumes where it stopped.
//!
//! Outcome vocabulary (per cell, persisted in the checkpoint):
//!
//! * `ok` — first attempt succeeded;
//! * `retried` — a later attempt succeeded after panic/divergence;
//! * `degraded` — the cell produced a value but on a fallback path (e.g.
//!   training rolled back through divergence recoveries, or a budget
//!   stop truncated it to a partial value);
//! * `failed` — every attempt failed; the cell renders as `n/a`.
//!
//! Supervision stops (`Cancelled` / `BudgetExceeded`, DESIGN.md §11) are
//! deliberately outside that vocabulary: they are never retried, and a
//! cell skipped by a stop is **not** checkpointed — a resumed run
//! recomputes it. The two stop kinds diverge on *partial values*:
//!
//! * a **cancel** (SIGINT/SIGTERM, `request_cancel`) arriving mid-cell
//!   can surface as an `Ok` value truncated by the stop (training's
//!   best-so-far snapshot, flagged degraded). That value is discarded
//!   and the cell counted `skipped`, which is what keeps an
//!   interrupted-then-resumed sweep byte-identical to an uninterrupted
//!   one;
//! * a **budget** stop (deadline/epochs/queries/memory) keeps the
//!   partial value: a bounded run's degraded cells are its intended
//!   output, so they persist through the normal `degraded` path — and a
//!   budget-bounded checkpoint is consequently *not* resume-equivalent
//!   to an unbounded one.

use crate::checkpoint::{CellRecord, Checkpoint};
use crate::config::ExpConfig;
use bbgnn_errors::{BbgnnError, RetryPolicy};
use bbgnn_scenario::job::{CellOutcome, Job};
use std::panic::{catch_unwind, AssertUnwindSafe};

// The cell-value vocabulary moved to the scenario layer (PR 7) so jobs
// and the server share it; re-exported here to keep the historical paths.
pub use bbgnn_scenario::job::{CellValue, FAILED_CELL};

/// Running outcome counters for one sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellStats {
    /// Cells replayed from the checkpoint.
    pub cached: usize,
    /// Cells that succeeded first try.
    pub ok: usize,
    /// Cells that needed at least one retry.
    pub retried: usize,
    /// Cells that returned a degraded value.
    pub degraded: usize,
    /// Cells that exhausted their retry budget.
    pub failed: usize,
    /// Cells skipped by a supervision stop (not checkpointed; a resumed
    /// run recomputes them).
    pub skipped: usize,
}

impl CellStats {
    /// Total cells seen.
    pub fn total(&self) -> usize {
        self.cached + self.ok + self.retried + self.degraded + self.failed + self.skipped
    }
}

/// Fault-isolating, checkpointing cell executor for one experiment binary.
pub struct FaultRunner {
    checkpoint: Checkpoint,
    policy: RetryPolicy,
    stats: CellStats,
    sleeper: fn(std::time::Duration),
}

impl FaultRunner {
    /// Standard construction for an experiment binary: checkpoint under
    /// `cfg.out_dir`, fingerprinted by `cfg` + `experiment`, default retry
    /// policy.
    pub fn new(cfg: &ExpConfig, experiment: &str) -> Self {
        Self::with_policy(cfg, experiment, RetryPolicy::default())
    }

    /// Construction with an explicit retry policy (tests, time-sensitive
    /// tables).
    pub fn with_policy(cfg: &ExpConfig, experiment: &str, policy: RetryPolicy) -> Self {
        let checkpoint = Checkpoint::open(&cfg.out_dir, experiment, &cfg.fingerprint(experiment));
        if checkpoint.resumed_cells() > 0 {
            eprintln!(
                "resuming {} completed cell(s) from {}",
                checkpoint.resumed_cells(),
                checkpoint.path().display()
            );
        }
        FaultRunner {
            checkpoint,
            policy,
            stats: CellStats::default(),
            // lint: allow(clock) reason=the one real backoff sleeper; tests inject a virtual clock via with_sleeper
            sleeper: std::thread::sleep,
        }
    }

    /// Replaces the backoff sleeper (tests: a recording no-op instead of
    /// burning wall-clock time).
    pub fn with_sleeper(mut self, sleeper: fn(std::time::Duration)) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Whether `key` already completed (useful to skip expensive shared
    /// setup — e.g. re-poisoning a graph — when every dependent cell is
    /// already checkpointed).
    pub fn is_done(&self, key: &str) -> bool {
        self.checkpoint.contains(key)
    }

    /// Outcome counters so far.
    pub fn stats(&self) -> CellStats {
        self.stats
    }

    /// Runs one cell and returns its formatted value.
    ///
    /// If the cell is already checkpointed its stored value is returned
    /// verbatim (byte-identical resume). Otherwise `f` is invoked with the
    /// attempt's seed — attempt 0 uses `base_seed` unchanged, so an
    /// untroubled run is identical to one without the harness — inside a
    /// panic boundary. Panics and retryable errors consume retry budget;
    /// non-retryable errors and an exhausted budget record the cell as
    /// `failed` and return [`FAILED_CELL`].
    pub fn cell(
        &mut self,
        key: &str,
        base_seed: u64,
        mut f: impl FnMut(u64) -> Result<CellValue, BbgnnError>,
    ) -> String {
        if let Some(done) = self.checkpoint.get(key) {
            self.stats.cached += 1;
            return done.value.clone();
        }
        // Record which store artifacts this cell touches (hits and writes
        // alike) so the checkpoint pins them against `bbgnn-store gc`.
        // Recording is thread-local: cells run on the caller's thread, so
        // pool workers spawned inside `f` are intentionally not captured.
        bbgnn::store::start_recording();
        let mut last_cause = String::new();
        for attempt in 0..=self.policy.max_retries {
            // Supervision stop at an attempt boundary: skip without touching
            // the checkpoint, so a resumed run recomputes this cell. Checked
            // per attempt, not just at cell entry — a stop arriving mid-cell
            // can surface as a panic from an infallible numeric façade, and
            // retrying it would burn the retry budget into a persisted
            // `failed` cell that a resume could never heal.
            if bbgnn_supervise::stop_reason("bench/cell").is_some() {
                self.stats.skipped += 1;
                bbgnn::store::take_recording();
                return FAILED_CELL.to_string();
            }
            let seed = RetryPolicy::seed_for_attempt(base_seed, attempt);
            let _span = bbgnn_obs::span!("bench/cell", key = key, attempt = attempt, seed = seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| f(seed)));
            let error = match outcome {
                Ok(Ok(value)) => {
                    // A cancel landing mid-cell surfaces as an Ok value
                    // truncated by the stop (training's best-so-far
                    // snapshot, flagged degraded). Persisting it would make
                    // a resumed run replay the truncated value verbatim, so
                    // under a cancel a degraded value is a skip, not a
                    // result. Budget stops keep it: a bounded run's partial
                    // cells are its intended output (DESIGN.md §11).
                    if value.degraded
                        && matches!(
                            bbgnn_supervise::stop_reason("bench/cell"),
                            Some(bbgnn_supervise::Stop::Cancelled)
                        )
                    {
                        eprintln!(
                            "cell {key}: skipped (cancelled mid-cell; partial value discarded)"
                        );
                        self.stats.skipped += 1;
                        bbgnn::store::take_recording();
                        return FAILED_CELL.to_string();
                    }
                    let tag = if value.degraded {
                        self.stats.degraded += 1;
                        "degraded"
                    } else if attempt > 0 {
                        self.stats.retried += 1;
                        "retried"
                    } else {
                        self.stats.ok += 1;
                        "ok"
                    };
                    let artifacts = bbgnn::store::take_recording();
                    self.persist(key, &value.text, tag, attempt + 1, None, artifacts);
                    return value.text;
                }
                Ok(Err(e)) => e,
                // A panic is treated like a retryable fault: most panics
                // under adversarial perturbation are numerical blowups, and
                // the perturbed-seed retry is cheap and deterministic.
                Err(payload) => BbgnnError::ExperimentAborted {
                    cell: key.to_string(),
                    cause: format!("panic: {}", panic_message(&payload)),
                },
            };
            // A supervision stop surfacing as an error is not a failure of
            // the cell: never retried, never checkpointed — the run is
            // winding down and a resume will recompute this cell.
            if error.is_supervision_stop() {
                eprintln!("cell {key}: skipped ({error})");
                self.stats.skipped += 1;
                bbgnn::store::take_recording();
                return FAILED_CELL.to_string();
            }
            last_cause = error.to_string();
            let retryable =
                error.is_retryable() || matches!(error, BbgnnError::ExperimentAborted { .. });
            if !retryable || attempt == self.policy.max_retries {
                break;
            }
            if error.wants_backoff() {
                (self.sleeper)(self.policy.backoff_for_attempt(attempt + 1));
            }
            eprintln!(
                "cell {key}: attempt {} failed ({last_cause}); retrying",
                attempt + 1
            );
        }
        eprintln!("cell {key}: giving up ({last_cause})");
        self.stats.failed += 1;
        let artifacts = bbgnn::store::take_recording();
        self.persist(
            key,
            FAILED_CELL,
            "failed",
            self.policy.max_retries + 1,
            Some(&last_cause),
            artifacts,
        );
        FAILED_CELL.to_string()
    }

    /// Runs a scenario [`Job`] as one cell of this sweep: checkpoint
    /// replay first, then [`Job::run_with_graph`] under this runner's
    /// retry policy and sleeper, then the same outcome accounting and
    /// persistence as [`cell`](Self::cell) (`Skipped` is never
    /// persisted, so a resumed run recomputes it).
    ///
    /// The job's own key is overridden by `key`-bearing construction
    /// upstream; this method trusts [`Job::key`]. `prepared` carries a
    /// shared input graph (e.g. one poisoned graph reused across a whole
    /// table row).
    pub fn job(
        &mut self,
        job: Job,
        ctx: &bbgnn::linalg::ExecContext,
        prepared: Option<&bbgnn::graph::Graph>,
    ) -> String {
        if let Some(done) = self.checkpoint.get(job.key()) {
            self.stats.cached += 1;
            return done.value.clone();
        }
        let job = job
            .with_policy(self.policy.clone())
            .with_sleeper(self.sleeper);
        let res = job.run_with_graph(ctx, prepared);
        match res.outcome {
            CellOutcome::Skipped => {
                if let Some(detail) = &res.detail {
                    eprintln!("cell {}: skipped ({detail})", res.key);
                }
                self.stats.skipped += 1;
            }
            CellOutcome::Failed => {
                let cause = res.detail.as_deref().unwrap_or("unknown");
                eprintln!("cell {}: giving up ({cause})", res.key);
                self.stats.failed += 1;
                self.persist(
                    &res.key,
                    FAILED_CELL,
                    "failed",
                    res.attempts,
                    res.detail.as_deref(),
                    res.artifacts,
                );
            }
            outcome => {
                match outcome {
                    CellOutcome::Degraded => self.stats.degraded += 1,
                    CellOutcome::Retried => self.stats.retried += 1,
                    _ => self.stats.ok += 1,
                }
                self.persist(
                    &res.key,
                    &res.value,
                    outcome.as_str(),
                    res.attempts,
                    None,
                    res.artifacts,
                );
                return res.value;
            }
        }
        FAILED_CELL.to_string()
    }

    /// One-line outcome summary for the end of a sweep, e.g.
    /// `cells: 12 (3 cached, 8 ok, 1 retried, 0 degraded, 0 failed,
    /// 0 skipped)`.
    pub fn summary(&self) -> String {
        let s = self.stats;
        format!(
            "cells: {} ({} cached, {} ok, {} retried, {} degraded, {} failed, {} skipped)",
            s.total(),
            s.cached,
            s.ok,
            s.retried,
            s.degraded,
            s.failed,
            s.skipped
        )
    }

    fn persist(
        &mut self,
        key: &str,
        value: &str,
        outcome: &str,
        attempts: usize,
        detail: Option<&str>,
        // Drained from the cell's store recording; artifacts written on
        // failed attempts are still pinned, which lets a retry or a
        // resumed run warm-start from them.
        artifacts: Vec<String>,
    ) {
        let record = CellRecord {
            value: value.to_string(),
            outcome: outcome.to_string(),
            attempts,
            detail: detail.map(str::to_string),
            artifacts,
        };
        // Checkpointing is best-effort: an unwritable results dir should
        // not kill the sweep, only the ability to resume it.
        if let Err(e) = self.checkpoint.record(key, record) {
            eprintln!("warning: could not checkpoint cell {key}: {e}");
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Serializes every test in this module: `cell` consults the
    /// process-global supervision state, so a test that requests
    /// cancellation would otherwise skip a concurrently running test's
    /// cells.
    static SUPERVISE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = SUPERVISE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bbgnn_supervise::shutdown();
        guard
    }

    fn test_cfg(tag: &str) -> ExpConfig {
        let out = std::env::temp_dir().join(format!("bbgnn_fault_{tag}"));
        let _ = std::fs::remove_dir_all(&out);
        ExpConfig {
            out_dir: out.display().to_string(),
            ..ExpConfig::default()
        }
    }

    fn fast_policy(retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_retries: retries,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
        }
    }

    #[test]
    fn panicking_cell_is_retried_with_perturbed_seed() {
        let _guard = locked();
        let cfg = test_cfg("panic");
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(2));
        let mut seeds = Vec::new();
        let v = r.cell("cell", 7, |seed| {
            seeds.push(seed);
            if seeds.len() == 1 {
                panic!("synthetic numerical blowup");
            }
            Ok(CellValue::clean("42.0"))
        });
        assert_eq!(v, "42.0");
        assert_eq!(seeds[0], 7, "first attempt must use the base seed");
        assert_eq!(seeds[1], RetryPolicy::seed_for_attempt(7, 1));
        assert_eq!(r.stats().retried, 1);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn exhausted_budget_records_failed_and_continues() {
        let _guard = locked();
        let cfg = test_cfg("exhaust");
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(1));
        let v = r.cell("doomed", 0, |_| -> Result<CellValue, BbgnnError> {
            Err(BbgnnError::NumericalDivergence {
                what: "loss".into(),
                value: f64::NAN,
            })
        });
        assert_eq!(v, FAILED_CELL);
        assert_eq!(r.stats().failed, 1);
        // The sweep keeps going: a later cell still runs normally.
        let v2 = r.cell("fine", 0, |_| Ok(CellValue::clean("1.0")));
        assert_eq!(v2, "1.0");
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn non_retryable_error_fails_without_retry() {
        let _guard = locked();
        let cfg = test_cfg("nonretry");
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(5));
        let mut calls = 0;
        let v = r.cell("cfgbad", 0, |_| -> Result<CellValue, BbgnnError> {
            calls += 1;
            Err(BbgnnError::InvalidConfig {
                what: "--rate".into(),
                message: "negative".into(),
            })
        });
        assert_eq!(v, FAILED_CELL);
        assert_eq!(calls, 1, "caller errors must not burn retry budget");
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn resume_replays_checkpointed_cells_without_rerunning() {
        let _guard = locked();
        let cfg = test_cfg("resume");
        {
            let mut r = FaultRunner::new(&cfg, "t");
            r.cell("a", 1, |_| Ok(CellValue::clean("0.81±0.02")));
        }
        // Second process: same config, the closure must never run.
        let mut r = FaultRunner::new(&cfg, "t");
        assert!(r.is_done("a"));
        let v = r.cell("a", 1, |_| -> Result<CellValue, BbgnnError> {
            panic!("cached cell must not be re-evaluated")
        });
        assert_eq!(v, "0.81±0.02");
        assert_eq!(r.stats().cached, 1);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn degraded_values_are_tagged() {
        let _guard = locked();
        let cfg = test_cfg("degraded");
        let mut r = FaultRunner::new(&cfg, "t");
        let v = r.cell("d", 0, |_| Ok(CellValue::degraded("0.5")));
        assert_eq!(v, "0.5");
        assert_eq!(r.stats().degraded, 1);
        assert!(r.summary().contains("1 degraded"));
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn cancellation_skips_cells_without_checkpointing_them() {
        let _guard = locked();
        let cfg = test_cfg("cancel_skip");
        {
            let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(3));
            bbgnn_supervise::request_cancel();
            let mut calls = 0;
            let v = r.cell("late", 0, |_| {
                calls += 1;
                Ok(CellValue::clean("0.9"))
            });
            assert_eq!(v, FAILED_CELL, "skipped cells render as n/a");
            assert_eq!(calls, 0, "the closure must not run after a cancel");
            assert_eq!(r.stats().skipped, 1);
            assert!(r.summary().contains("1 skipped"));
        }
        bbgnn_supervise::shutdown();
        // Resume without the cancel: the cell was never checkpointed, so it
        // is recomputed — the resumed sweep matches an uninterrupted one.
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(3));
        assert!(!r.is_done("late"));
        let v = r.cell("late", 0, |_| Ok(CellValue::clean("0.9")));
        assert_eq!(v, "0.9");
        assert_eq!(r.stats().skipped, 0);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn cancel_mid_cell_discards_partial_value_and_resume_recomputes() {
        let _guard = locked();
        let cfg = test_cfg("cancel_mid");
        {
            let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(3));
            let v = r.cell("cut", 0, |_| {
                // The cancel lands while the cell is in flight: training
                // hands back its best-so-far snapshot flagged degraded.
                bbgnn_supervise::request_cancel();
                Ok(CellValue::degraded("0.4"))
            });
            assert_eq!(v, FAILED_CELL, "a truncated value must not be returned");
            assert_eq!(r.stats().skipped, 1);
            assert_eq!(r.stats().degraded, 0);
            assert!(!r.is_done("cut"), "truncated values are never checkpointed");
        }
        bbgnn_supervise::shutdown();
        // Resume without the cancel: the cell recomputes in full, so the
        // resumed sweep matches an uninterrupted one.
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(3));
        let v = r.cell("cut", 0, |_| Ok(CellValue::clean("0.9")));
        assert_eq!(v, "0.9");
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn budget_stop_mid_cell_keeps_the_degraded_value() {
        let _guard = locked();
        let cfg = test_cfg("budget_mid");
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(3));
        let v = r.cell("bounded", 0, |_| {
            // The epoch budget trips while the cell is in flight: the
            // partial value is the bounded run's intended output.
            bbgnn_supervise::install_budget(&bbgnn_supervise::RunBudget {
                epochs: Some(1),
                ..Default::default()
            });
            bbgnn_supervise::note_epochs(1);
            Ok(CellValue::degraded("0.4"))
        });
        assert_eq!(v, "0.4");
        assert_eq!(r.stats().degraded, 1);
        assert_eq!(r.stats().skipped, 0);
        assert!(
            r.is_done("bounded"),
            "budget-degraded cells are checkpointed"
        );
        bbgnn_supervise::shutdown();
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn supervision_stop_error_is_never_retried() {
        let _guard = locked();
        let cfg = test_cfg("stop_noretry");
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(5));
        let mut calls = 0;
        let v = r.cell("budgeted", 0, |_| -> Result<CellValue, BbgnnError> {
            calls += 1;
            Err(BbgnnError::BudgetExceeded {
                resource: "queries".into(),
                limit: 10,
                at: "attack/peega/perturb".into(),
            })
        });
        assert_eq!(v, FAILED_CELL);
        assert_eq!(calls, 1, "supervision stops must not burn retry budget");
        assert_eq!(r.stats().skipped, 1);
        assert_eq!(r.stats().failed, 0, "a stop is a skip, not a failure");
        assert!(!r.is_done("budgeted"), "skipped cells are not checkpointed");
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn job_cells_checkpoint_and_replay() {
        let _guard = locked();
        use bbgnn_scenario::job::{EvalSpec, JobSpec};
        let cfg = test_cfg("job_replay");
        let ctx = bbgnn::linalg::ExecContext::from_env();
        let spec = JobSpec {
            dataset: "cora".to_string(),
            eval: EvalSpec {
                runs: 1,
                scale: 0.05,
                ..EvalSpec::default()
            },
            ..JobSpec::default()
        };
        let first = {
            let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(1));
            let v = r.job(Job::new(spec.clone()).unwrap(), &ctx, None);
            assert_eq!(r.stats().ok, 1);
            v
        };
        assert_ne!(first, FAILED_CELL);
        // Second process: same config, the cell replays from the
        // checkpoint without recomputing.
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(1));
        assert!(r.is_done("cora/Clean/GCN"));
        let v = r.job(Job::new(spec).unwrap(), &ctx, None);
        assert_eq!(v, first);
        assert_eq!(r.stats().cached, 1);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn job_skipped_by_cancel_is_not_checkpointed() {
        let _guard = locked();
        use bbgnn_scenario::job::{EvalSpec, JobSpec};
        let cfg = test_cfg("job_cancel");
        let ctx = bbgnn::linalg::ExecContext::from_env();
        let spec = JobSpec {
            dataset: "cora".to_string(),
            eval: EvalSpec {
                runs: 1,
                scale: 0.05,
                ..EvalSpec::default()
            },
            ..JobSpec::default()
        };
        let mut r = FaultRunner::with_policy(&cfg, "t", fast_policy(1));
        bbgnn_supervise::request_cancel();
        let v = r.job(Job::new(spec).unwrap(), &ctx, None);
        assert_eq!(v, FAILED_CELL);
        assert_eq!(r.stats().skipped, 1);
        assert!(!r.is_done("cora/Clean/GCN"));
        bbgnn_supervise::shutdown();
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn injected_sleeper_replaces_wall_clock_backoff() {
        let _guard = locked();
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SLEEPS: AtomicUsize = AtomicUsize::new(0);
        fn counting_sleep(_d: Duration) {
            SLEEPS.fetch_add(1, Ordering::Relaxed);
        }
        let cfg = test_cfg("sleeper");
        let policy = RetryPolicy {
            max_retries: 1,
            backoff_base: Duration::from_secs(3600),
            backoff_max: Duration::from_secs(3600),
        };
        SLEEPS.store(0, Ordering::Relaxed);
        let mut r = FaultRunner::with_policy(&cfg, "t", policy).with_sleeper(counting_sleep);
        let mut calls = 0;
        let v = r.cell("flaky_io", 0, |_| -> Result<CellValue, BbgnnError> {
            calls += 1;
            if calls == 1 {
                Err(BbgnnError::DatasetIo {
                    path: "/tmp/x".into(),
                    message: "transient".into(),
                })
            } else {
                Ok(CellValue::clean("ok"))
            }
        });
        assert_eq!(v, "ok");
        assert_eq!(
            SLEEPS.load(Ordering::Relaxed),
            1,
            "the injected sleeper must absorb the hour-long backoff"
        );
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }
}
