//! Fixture: a key-construction fn that forgets a field of its config
//! struct — `key_fields` must name the missing `threads`.

pub struct SweepConfig {
    pub dataset: String,
    pub seed: u64,
    pub threads: usize,
}

impl SweepConfig {
    pub fn store_key(&self) -> String {
        format!("{}|{}", self.dataset, self.seed)
    }
}
