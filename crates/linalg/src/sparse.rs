//! Compressed-sparse-row matrices for graph propagation.
//!
//! Graph adjacency matrices in this workspace are symmetric 0/1 matrices,
//! but [`CsrMatrix`] is a general real CSR container so that normalized
//! adjacencies (`D^{-1/2}(A+I)D^{-1/2}`) and attention-weighted graphs can
//! reuse the same SpMM kernel.

use crate::DenseMatrix;

/// A compressed-sparse-row matrix.
///
/// Invariants: `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
/// `row_ptr[rows] == col_idx.len() == values.len()`, and column indices are
/// strictly increasing within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from unsorted COO triplets; duplicate entries are
    /// summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates in place.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        let mut current_row = 0;
        for (r, c, v) in merged {
            while current_row < r {
                current_row += 1;
                row_ptr[current_row] = col_idx.len();
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < rows {
            current_row += 1;
            row_ptr[current_row] = col_idx.len();
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts a dense matrix to CSR, keeping entries with `|v| > tol`.
    pub fn from_dense(m: &DenseMatrix, tol: f64) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v.abs() > tol {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out.set(i, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored values, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row-pointer array (`rows + 1` entries, see the struct invariants).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices of every stored entry, row-major.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Builds a CSR matrix directly from its raw arrays, validating the
    /// struct invariants (monotone `row_ptr`, strictly increasing in-bounds
    /// columns per row). The artifact store uses this to reconstruct a
    /// matrix bitwise from its serialized parts.
    pub fn try_from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
            return Err(format!("row_ptr length {} != rows+1", row_ptr.len()));
        }
        if row_ptr.last() != Some(&col_idx.len()) || col_idx.len() != values.len() {
            return Err("row_ptr/col_idx/values lengths disagree".to_string());
        }
        for i in 0..rows {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            if lo > hi || hi > col_idx.len() {
                return Err(format!("row_ptr not monotone at row {i}"));
            }
            let mut prev: Option<usize> = None;
            for &c in &col_idx[lo..hi] {
                if c >= cols || prev.is_some_and(|p| p >= c) {
                    return Err(format!("bad column order in row {i}"));
                }
                prev = Some(c);
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// FNV-1a fingerprint of the full CSR structure and value bits (see
    /// [`crate::content_hash`]). A single moved edge or reweighted entry
    /// changes the hash — the store's anti-aliasing guarantee.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::content_hash::Fnv1a::new();
        h.bytes(b"csr");
        h.usize(self.rows);
        h.usize(self.cols);
        h.usizes(&self.row_ptr);
        h.usizes(&self.col_idx);
        h.f64s(&self.values);
        h.finish()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Value at `(i, j)`, or 0 if not stored (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse × dense product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        let pool = crate::kernels::ThreadPool::default();
        crate::kernels::spmm_into(self, rhs, &mut out, &pool);
        out
    }

    /// Sparse × dense product with the transpose of `self`: `self^T * rhs`.
    ///
    /// Sequential by design — the scatter by column index cannot be
    /// row-partitioned without breaking the bitwise determinism contract
    /// (see [`crate::kernels::spmm_t_into`]).
    pub fn spmm_t(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows(), "spmm_t dimension mismatch");
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.cols, n);
        for i in 0..self.rows {
            let b_row = rhs.row(i);
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let c = self.col_idx[k];
                let out_row = &mut out.as_mut_slice()[c * n..(c + 1) * n];
                for j in 0..n {
                    out_row[j] += v * b_row[j];
                }
            }
        }
        out
    }

    /// Sparse × dense vector product.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "spmv dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *o = acc;
        }
        out
    }

    /// Per-row sums (weighted degrees for adjacency matrices).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
                    .iter()
                    .sum()
            })
            .collect()
    }

    /// Returns `D^{-1/2} (self + I) D^{-1/2}`, the GCN symmetric
    /// normalization of Kipf & Welling, where `D` is the degree matrix of
    /// `self + I`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn gcn_normalize(&self) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "gcn_normalize requires a square matrix"
        );
        let with_loops = self.add_identity(1.0);
        let deg = with_loops.row_sums();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = with_loops;
        for i in 0..out.rows {
            for k in out.row_ptr[i]..out.row_ptr[i + 1] {
                out.values[k] *= inv_sqrt[i] * inv_sqrt[out.col_idx[k]];
            }
        }
        out
    }

    /// Returns `self + alpha * I`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn add_identity(&self, alpha: f64) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "add_identity requires a square matrix"
        );
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + self.rows);
        for i in 0..self.rows {
            let mut has_diag = false;
            for (j, v) in self.row_iter(i) {
                let v = if j == i {
                    has_diag = true;
                    v + alpha
                } else {
                    v
                };
                triplets.push((i, j, v));
            }
            if !has_diag {
                triplets.push((i, i, alpha));
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, triplets)
    }

    /// Transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = (0..self.rows)
            .flat_map(|i| self.row_iter(i).map(move |(j, v)| (j, i, v)))
            .collect();
        CsrMatrix::from_triplets(self.cols, self.rows, triplets)
    }

    /// Maximum absolute asymmetry `max |A[i][j] - A[j][i]|` (0 for symmetric).
    pub fn asymmetry(&self) -> f64 {
        let t = self.transpose();
        let mut m = 0.0_f64;
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m = m.max((v - t.get(i, j)).abs());
            }
            for (j, v) in t.row_iter(i) {
                m = m.max((v - self.get(i, j)).abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // 0 - 1, 1 - 2 undirected path graph.
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        )
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m, back);
    }

    #[test]
    fn get_and_row_iter() {
        let m = small();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
        let row1: Vec<_> = m.row_iter(1).collect();
        assert_eq!(row1, vec![(0, 1.0), (2, 1.0)]);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DenseMatrix::uniform(3, 4, 1.0, 3);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn spmm_t_matches_dense_transpose() {
        let m = CsrMatrix::from_triplets(2, 3, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0)]);
        let x = DenseMatrix::uniform(2, 4, 1.0, 5);
        assert!(
            m.spmm_t(&x)
                .max_abs_diff(&m.to_dense().transpose().matmul(&x))
                < 1e-12
        );
    }

    #[test]
    fn spmv_matches_spmm() {
        let m = small();
        let x = vec![1.0, 2.0, 3.0];
        let via_mm = m.spmm(&DenseMatrix::from_vec(3, 1, x.clone()));
        assert_eq!(m.spmv(&x), via_mm.as_slice().to_vec());
    }

    #[test]
    fn gcn_normalize_rows_of_regular_graph() {
        // Triangle: every node has degree 2, +1 self loop => d = 3.
        let tri = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 1.0),
                (2, 0, 1.0),
            ],
        );
        let n = tri.gcn_normalize();
        for i in 0..3 {
            for j in 0..3 {
                assert!((n.get(i, j) - 1.0 / 3.0).abs() < 1e-12);
            }
        }
        // Row sums of a normalized regular graph are 1.
        for s in n.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gcn_normalize_handles_isolated_nodes() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 0.0)]);
        let n = m.gcn_normalize();
        // Isolated node with self-loop: d=1, normalized self-loop weight 1.
        assert!((n.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((n.get(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_identity_merges_diagonal() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let p = m.add_identity(2.0);
        assert_eq!(p.get(0, 0), 3.0);
        assert_eq!(p.get(1, 1), 2.0);
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = small();
        assert_eq!(m.transpose(), m);
        assert_eq!(m.asymmetry(), 0.0);
        let asym = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0)]);
        assert_eq!(asym.asymmetry(), 1.0);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, vec![(3, 0, 1.0)]);
        assert_eq!(m.row_cols(0), &[] as &[usize]);
        assert_eq!(m.row_cols(3), &[0]);
        assert_eq!(m.row_sums(), vec![0.0, 0.0, 0.0, 1.0]);
    }
}
