//! Reverse-mode automatic differentiation over dense matrices.
//!
//! The design is a classic define-by-run tape: a [`Tape`] owns a growing
//! list of nodes; each operation appends a node holding its forward value
//! and enough information to push gradients back to its inputs. Model
//! parameters live *outside* the tape as plain
//! [`DenseMatrix`](bbgnn_linalg::DenseMatrix) values — every training step
//! builds a fresh tape, registers the parameters with [`Tape::var`], runs
//! the forward computation, calls [`Tape::backward`] on a scalar output,
//! and reads gradients back with [`Tape::grad`].
//!
//! The operation set is exactly what the paper reproduction needs:
//!
//! * GCN / linear-GCN forward passes (`matmul`, `spmm`, `relu`, bias,
//!   dropout, softmax cross-entropy);
//! * GAT attention (`add_outer`, `leaky_relu`, masked row softmax,
//!   `concat_cols`);
//! * attack objectives differentiated with respect to a **dense adjacency
//!   variable** — the GCN normalization chain (`add_const`, `row_sum`,
//!   `pow_scalar`, `scale_rows` / `scale_cols`) and the PEEGA
//!   representation-difference objective (`row_lp_norm_sum`,
//!   `neighbor_lp_norm_sum`);
//! * RGCN's Gaussian machinery (`exp`, `ln`, elementwise ops).
//!
//! Gradient correctness is enforced by finite-difference checks in
//! [`gradcheck`] which every op must pass.

#![deny(missing_docs)]

pub mod gradcheck;
pub mod optim;
pub mod tape;

pub use tape::{Tape, TensorId};
