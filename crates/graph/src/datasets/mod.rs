//! Dataset substrate.
//!
//! The paper evaluates on Cora, Citeseer, and Polblogs as packaged by
//! DeepRobust. Those binary artifacts cannot be shipped here, so this
//! module provides:
//!
//! * [`synthetic`] — a class-conditional stochastic-block-model generator
//!   with class-correlated binary features, plus [`DatasetSpec`] presets
//!   calibrated to Table III (node/edge/class counts, feature dims,
//!   10/10/80 splits) and Fig. 1 (homophily levels);
//! * [`io`] — a plain-text loader/saver so user-provided real datasets can
//!   be swapped in without code changes.

// Dataset IO must diagnose, never crash: every failure path goes through
// `BbgnnError` (tests are exempt — unwrap there is the assertion).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod io;
pub mod synthetic;

pub use synthetic::{DatasetSpec, SbmParams};
