//! Offline stand-in for the `criterion` crate.
//!
//! Provides the minimal harness surface the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`BenchmarkGroup::bench_function`] /
//! [`Bencher::iter`] plus the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple median-of-samples wall-clock measurement
//! printed to stdout — no HTML reports, statistics, or comparisons.

#![deny(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.into(), self.sample_size.max(10), f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(name: String, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(samples),
        budget: samples,
    };
    f(&mut b);
    let mut ns = b.samples_ns;
    if ns.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    println!(
        "  {name}: median {} mean {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        ns.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Per-benchmark measurement context.
pub struct Bencher {
    samples_ns: Vec<u128>,
    budget: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one warmup
    /// call) and records wall-clock nanoseconds per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

/// Prevents the compiler from optimizing away a value (upstream-compatible
/// re-export location).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
