//! Supervision-layer regression tests for the iterative solvers.
//!
//! Own integration-test binary (one process) because these install the
//! process-global cancel flag; inside the unit-test harness they would
//! interrupt unrelated solver tests on sibling threads. Within this
//! binary the tests serialize on `LOCK`.

use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    bbgnn_supervise::shutdown();
    guard
}

fn ring_adjacency(n: usize) -> CsrMatrix {
    let mut dense = DenseMatrix::zeros(n, n);
    for i in 0..n {
        let j = (i + 1) % n;
        dense.set(i, j, 1.0);
        dense.set(j, i, 1.0);
    }
    CsrMatrix::from_dense(&dense, 0.0)
}

/// A cancelled Lanczos run must surface as a supervision-stop *error*,
/// never a panic: the GF-Attack poisoning path calls it outside any panic
/// boundary, where a panicking infallible façade would crash the whole
/// sweep instead of degrading it (the SIGINT-mid-poison regression).
#[test]
fn cancelled_lanczos_is_a_stop_error_not_a_panic() {
    let _g = locked();
    let a = ring_adjacency(24);
    bbgnn_supervise::request_cancel();
    let err = bbgnn_linalg::eigen::try_lanczos_topk(&a, 4, 7).unwrap_err();
    assert!(err.is_supervision_stop(), "got: {err}");
    bbgnn_supervise::shutdown();
    // Zero-cost-off: the same call succeeds once supervision is reset.
    let eig = bbgnn_linalg::eigen::try_lanczos_topk(&a, 4, 7).unwrap();
    assert_eq!(eig.values.len(), 4);
}

/// A supervision stop inside the randomized-SVD sketch must propagate
/// directly — escalating to the exact Jacobi fallback would spend *more*
/// work after the run was told to wind down.
#[test]
fn cancelled_randomized_svd_stops_without_exact_fallback() {
    let _g = locked();
    let a = DenseMatrix::gaussian(20, 12, 1.0, 3);
    bbgnn_supervise::request_cancel();
    let err = bbgnn_linalg::svd::try_randomized_svd(&a, 4, 8, 2, 7).unwrap_err();
    assert!(err.is_supervision_stop(), "got: {err}");
    assert!(
        !err.to_string().contains("exact fallback"),
        "stop must not be routed through the exact-solver fallback: {err}"
    );
    bbgnn_supervise::shutdown();
    let svd = bbgnn_linalg::svd::try_randomized_svd(&a, 4, 8, 2, 7).unwrap();
    assert_eq!(svd.sigma.len(), 4);
}
