//! # bbgnn — Black-box Adversarial Attack and Defense on Graph Neural Networks
//!
//! A from-scratch Rust reproduction of *Black-box Adversarial Attack and
//! Defense on Graph Neural Networks* (Li, Di, Li, Chen, Cao — ICDE 2022):
//! the **PEEGA** black-box attacker, the **GNAT** graph-augmentation
//! defender, every attacker/defender baseline of the paper's evaluation,
//! and the substrates they need (dense/sparse linear algebra, reverse-mode
//! autodiff, GNN training, calibrated synthetic datasets).
//!
//! ## Quickstart
//!
//! ```
//! use bbgnn::prelude::*;
//!
//! // A Cora-calibrated synthetic citation graph (10% of full size).
//! let graph = DatasetSpec::CoraLike.generate(0.1, 42);
//!
//! // Black-box attack: PEEGA reads only A and X.
//! let mut attacker = Peega::new(PeegaConfig { rate: 0.1, ..Default::default() });
//! let poisoned = attacker.attack(&graph).poisoned;
//!
//! // Victim: the paper's 2-layer GCN.
//! let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
//! gcn.fit(&poisoned);
//! let attacked_acc = gcn.test_accuracy(&poisoned);
//!
//! // Defense: GNAT's three augmented views.
//! let mut gnat = Gnat::new(GnatConfig { train: TrainConfig::fast_test(), ..Default::default() });
//! gnat.fit(&poisoned);
//! let defended_acc = gnat.test_accuracy(&poisoned);
//! assert!(defended_acc >= attacked_acc - 0.05);
//! ```
//!
//! ## Crate map
//!
//! * [`bbgnn_errors`] — structured error taxonomy and retry policies
//!   shared by every layer;
//! * [`bbgnn_obs`] — zero-dependency tracing: spans, events, counters
//!   drained to a JSONL trace (`BBGNN_TRACE=trace.jsonl`, see DESIGN.md §8);
//! * [`bbgnn_linalg`] — dense/sparse matrices, SVD, eigendecomposition;
//! * [`bbgnn_autodiff`] — the reverse-mode tape every model trains on;
//! * [`bbgnn_graph`] — graph container, metrics, dataset generators;
//! * [`bbgnn_gnn`] — GCN / GAT / linear surrogate and the training loop;
//! * [`bbgnn_attack`] — PEEGA + PGD, MinMax, Metattack, GF-Attack;
//! * [`bbgnn_defense`] — GNAT + GCN-Jaccard, GCN-SVD, RGCN, Pro-GNN,
//!   SimPGCN;
//! * [`bbgnn_store`] — content-addressed artifact cache persisting
//!   trained surrogates and factor bundles across runs
//!   (`BBGNN_STORE=<dir>`, see DESIGN.md §10);
//! * [`bbgnn_supervise`] — cooperative cancellation, deadlines, resource
//!   budgets, and the deterministic fault-injection harness
//!   (`--deadline`/`--budget`/`BBGNN_FAULTS`, see DESIGN.md §11);
//! * [`bbgnn_scenario`] — the typed scenario layer: attacker/defender
//!   registry, shared dataset resolution, job specs and the fault-isolated
//!   [`Job`](bbgnn_scenario::job::Job) executor that binaries and
//!   `bbgnn-serve` both drive (DESIGN.md §12).

#![deny(missing_docs)]

pub use bbgnn_attack as attack;
pub use bbgnn_autodiff as autodiff;
pub use bbgnn_defense as defense;
pub use bbgnn_errors as error;
pub use bbgnn_gnn as gnn;
pub use bbgnn_graph as graph;
pub use bbgnn_linalg as linalg;
pub use bbgnn_obs as obs;
pub use bbgnn_scenario as scenario;
pub use bbgnn_scenario::registry;
pub use bbgnn_store as store;
pub use bbgnn_supervise as supervise;

pub mod exec;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::registry::{AttackerKind, DefenderKind};
    pub use bbgnn_attack::dice::{Dice, DiceConfig};
    pub use bbgnn_attack::gfattack::{GfAttack, GfAttackConfig, GfScoring};
    pub use bbgnn_attack::metattack::{Metattack, MetattackConfig};
    pub use bbgnn_attack::minmax::{MinMaxAttack, MinMaxConfig};
    pub use bbgnn_attack::peega::{AttackSpace, ObjectiveNodes, Peega, PeegaConfig};
    pub use bbgnn_attack::peega_parallel::{PeegaParallel, PeegaParallelConfig};
    pub use bbgnn_attack::pgd::{PgdAttack, PgdConfig};
    pub use bbgnn_attack::random::{RandomAttack, RandomAttackConfig};
    pub use bbgnn_attack::targeted::{target_success_rate, TargetedPeega, TargetedPeegaConfig};
    pub use bbgnn_attack::{budget_for, AttackResult, Attacker, AttackerNodes};
    pub use bbgnn_defense::gnat::{Gnat, GnatConfig, View};
    pub use bbgnn_defense::jaccard::{GcnJaccard, GcnJaccardConfig};
    pub use bbgnn_defense::prognn::{ProGnn, ProGnnConfig};
    pub use bbgnn_defense::rgcn::{Rgcn, RgcnConfig};
    pub use bbgnn_defense::simpgcn::{SimPGcn, SimPGcnConfig};
    pub use bbgnn_defense::svd_defense::{GcnSvd, GcnSvdConfig};
    pub use bbgnn_defense::Defender;
    pub use bbgnn_errors::{BbgnnError, BbgnnResult, ErrorContext, RetryPolicy};
    pub use bbgnn_gnn::eval::{accuracy, MeanStd};
    pub use bbgnn_gnn::gat::Gat;
    pub use bbgnn_gnn::gcn::Gcn;
    pub use bbgnn_gnn::linear_gcn::LinearGcn;
    pub use bbgnn_gnn::sage::GraphSage;
    pub use bbgnn_gnn::train::{Mode, TrainConfig, TrainReport};
    pub use bbgnn_gnn::NodeClassifier;
    pub use bbgnn_graph::datasets::{DatasetSpec, SbmParams};
    pub use bbgnn_graph::metrics::{
        cross_label_similarity, edge_diff_breakdown, edge_homophily, intra_inter_similarity,
        EdgeDiffBreakdown,
    };
    pub use bbgnn_graph::metrics_utility::{
        average_clustering, graph_stats, utility_drift, GraphStats,
    };
    pub use bbgnn_graph::{Graph, Split};
    pub use bbgnn_linalg::kernels::env_threads;
    pub use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext, ThreadPool, Workspace};
    pub use bbgnn_supervise::{CancelToken, RunBudget};
}
