//! Fixture: cataloged site literals pass; dynamic sites are skipped
//! (validated at fault::install time instead).

pub fn load(site: &str) -> bool {
    let a = bbgnn_supervise::fault_at("fault/dataset_io").is_some();
    let b = bbgnn_supervise::fault_at("fault/store_corrupt").is_some();
    let c = bbgnn_supervise::fault_at(site).is_some();
    a || b || c
}
