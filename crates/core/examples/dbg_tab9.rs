use bbgnn::prelude::*;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let purity: f64 = args[1].parse().unwrap();
    let active: usize = args[2].parse().unwrap();
    let mut p = DatasetSpec::CoraLike.scaled_params(0.12);
    p.feature_purity = purity;
    p.active_features = active;
    let g = DatasetSpec::Custom(p).generate(1.0, 7);
    let mut atk = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let gp = atk.attack(&g).poisoned;
    let acc = |views: Vec<View>, merged: bool, gr: &Graph| {
        let mut m = Gnat::new(GnatConfig {
            views,
            merged,
            ..Default::default()
        });
        m.fit(gr);
        m.test_accuracy(gr)
    };
    let mut gcn = Gcn::paper_default(TrainConfig::default());
    gcn.fit(&g);
    let clean = gcn.test_accuracy(&g);
    let mut gcnp = Gcn::paper_default(TrainConfig::default());
    gcnp.fit(&gp);
    use View::*;
    println!("purity {purity} active {active}: GCNclean {clean:.3} GCNpois {:.3} | t {:.3} f {:.3} e {:.3} tfe {:.3} merged-tfe {:.3}",
        gcnp.test_accuracy(&gp),
        acc(vec![Topology], false, &gp), acc(vec![Feature], false, &gp), acc(vec![Ego], false, &gp),
        acc(vec![Topology, Feature, Ego], false, &gp), acc(vec![Topology, Feature, Ego], true, &gp));
}
