//! `bbgnn-lint` — the workspace invariant checker (DESIGN.md §9).
//!
//! Walks every governed `.rs` file and enforces the determinism, unsafe-
//! hygiene, panic-path, obs-taxonomy, and flow-contract rules. Report
//! mode only (no `--fix`): output is `file:line: [rule] message`, one
//! finding per line (or a JSON array with `--format json`), and the exit
//! code is the contract CI consumes.
//!
//! ```text
//! cargo run -p bbgnn_analysis --bin bbgnn-lint            # lint the cwd workspace
//! cargo run -p bbgnn_analysis --bin bbgnn-lint -- --root /path/to/checkout
//! cargo run -p bbgnn_analysis --bin bbgnn-lint -- --files crates/gnn/src/gcn.rs
//! cargo run -p bbgnn_analysis --bin bbgnn-lint -- --format json
//! ```
//!
//! `--files` restricts the *report* to the listed paths; the analysis
//! still covers the whole workspace so cross-file rules (`check_site`,
//! `key_fields`) see the full call graph. `--format json` emits an array
//! of `{"file","line","rule","msg"}` records on stdout (the human
//! summary moves to stderr) for CI artifacts and editor integrations.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use bbgnn_analysis::rules::Violation;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

/// Minimal JSON string escaping — the report vocabulary is ASCII paths
/// and rule prose, but quotes and backslashes in messages must not
/// corrupt the records.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_record(v: &Violation) -> String {
    format!(
        "{{\"file\":{},\"line\":{},\"rule\":{},\"msg\":{}}}",
        json_str(&v.file),
        v.line,
        json_str(v.rule.name()),
        json_str(&v.msg)
    )
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut only_files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--format" => {
                let f = args
                    .next()
                    .ok_or_else(|| "--format requires text or json".to_string())?;
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (text or json)")),
                };
            }
            "--files" => {
                // Consume every following path up to the next flag.
                while let Some(next) = args.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    only_files.push(args.next().expect("peeked"));
                }
                if only_files.is_empty() {
                    return Err("--files requires at least one path".to_string());
                }
            }
            "--help" | "-h" => {
                println!(
                    "bbgnn-lint: workspace invariant checker (DESIGN.md \u{a7}9)\n\
                     usage: bbgnn-lint [--root DIR] [--files PATH...] [--format text|json]\n\
                     rules: fma, hash_iter, clock, unsafe, panic, obs_name, fault_site,\n\
                     \x20       check_site, key_fields, dead_taxonomy, hot_alloc\n\
                     waiver: // lint: allow(<rule>) reason=<why>\n\
                     \x20       // lint: key_fields exclude(<fields...>) reason=<why>"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let tax = bbgnn_analysis::taxonomy::builtin()?;
    let report = if only_files.is_empty() {
        bbgnn_analysis::lint_workspace(&root, &tax)?
    } else {
        bbgnn_analysis::walk::lint_files(&root, &tax, &only_files)?
    };
    match format {
        Format::Text => {
            for v in &report.violations {
                println!("{}", v.render());
            }
            if report.violations.is_empty() {
                println!(
                    "bbgnn-lint: clean — {} files scanned, {} allow directive(s) in effect",
                    report.files_scanned, report.allows_used
                );
            } else {
                println!(
                    "bbgnn-lint: {} violation(s) across {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
            }
        }
        Format::Json => {
            // Stdout is pure JSON (one record per line inside the array,
            // so reports diff cleanly); the human summary goes to stderr.
            println!("[");
            for (i, v) in report.violations.iter().enumerate() {
                let comma = if i + 1 < report.violations.len() {
                    ","
                } else {
                    ""
                };
                println!("  {}{}", json_record(v), comma);
            }
            println!("]");
            eprintln!(
                "bbgnn-lint: {} violation(s), {} files scanned, {} allow directive(s) in effect",
                report.violations.len(),
                report.files_scanned,
                report.allows_used
            );
        }
    }
    Ok(report.violations.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bbgnn-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
