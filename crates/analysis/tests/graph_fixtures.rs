//! Integration tests for the v2 graph rules: a fixture mini-workspace
//! with known call edges, one workspace-stays-clean test per rule, and
//! the `lint_files` focused-report mode against a real on-disk tree.
//!
//! Fixtures live under `tests/fixtures/graph/` (skipped by the walker)
//! and are linted in-memory under synthetic workspace paths that select
//! the scope under test — the same pattern as `rule_fixtures.rs`, one
//! level up: whole mini-workspaces instead of single files.

use bbgnn_analysis::lexer::{lex, Lexed};
use bbgnn_analysis::{analyze, FlowReport, Model, Taxonomy};
use std::path::Path;

const KERNELS: &str = "crates/linalg/src/kernels.rs";
const DRIVER: &str = "crates/attack/src/driver.rs";

fn workspace(files: &[(&str, &str)]) -> (Model, Vec<(String, Lexed)>) {
    let files: Vec<(String, Lexed)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), lex(src)))
        .collect();
    (Model::build(&files), files)
}

fn flow(files: &[(&str, &str)]) -> FlowReport {
    let (model, files) = workspace(files);
    // An empty taxonomy keeps `dead_taxonomy` inert: fixture workspaces
    // legitimately emit none of the real DESIGN.md §8 names.
    analyze(&model, &files, &Taxonomy::default())
}

fn rules_of(r: &FlowReport) -> Vec<&'static str> {
    r.violations.iter().map(|v| v.rule.name()).collect()
}

// --- the symbol graph recovers the known call edges -----------------------

#[test]
fn symbol_graph_recovers_known_call_edges() {
    let (m, _) = workspace(&[
        (KERNELS, include_str!("fixtures/graph/kernels.rs")),
        (DRIVER, include_str!("fixtures/graph/driver_bad.rs")),
    ]);

    // sweep --(method, in-loop)--> Driver::step
    let sweep = m.fns_named("sweep")[0];
    let step_call = m.fns[sweep]
        .item
        .calls
        .iter()
        .find(|c| c.name == "step")
        .expect("sweep calls step");
    assert!(step_call.in_loop, "the step call sits inside sweep's loop");
    let step_edge = m.resolve(sweep, step_call);
    assert_eq!(step_edge.len(), 1);
    assert_eq!(m.fns[step_edge[0]].item.qual, "Driver::step");

    // Driver::step --(bare)--> the kernels.rs free fn, and nothing else.
    let step = step_edge[0];
    let mm_call = m.fns[step]
        .item
        .calls
        .iter()
        .find(|c| c.name == "matmul_into")
        .expect("step calls matmul_into");
    let mm_edge = m.resolve(step, mm_call);
    assert_eq!(mm_edge.len(), 1);
    assert_eq!(
        (
            m.files[m.fns[mm_edge[0]].file].rel.as_str(),
            m.fns[mm_edge[0]].item.has_loop,
        ),
        (KERNELS, true),
        "the sink edge lands on the looping kernels fn"
    );

    // `idle` touches only its own field — no workspace call edges at all.
    let idle = m.fns_named("idle")[0];
    assert!(
        m.fns[idle]
            .item
            .calls
            .iter()
            .all(|c| m.resolve(idle, c).is_empty()),
        "idle has no resolvable calls"
    );
}

#[test]
fn strict_resolution_demands_visible_types() {
    // `w.threads()` from a file that never names `Ws`: the permissive
    // resolver offers the accessor, the strict one refuses the edge.
    let (m, _) = workspace(&[
        (KERNELS, include_str!("fixtures/graph/kernels.rs")),
        (
            "crates/bench/src/report.rs",
            "pub fn width(w: &Unrelated) -> usize { w.threads() }",
        ),
    ]);
    let width = m.fns_named("width")[0];
    let call = &m.fns[width].item.calls[0];
    assert_eq!(
        m.resolve(width, call).len(),
        1,
        "permissive: offers Ws::threads"
    );
    assert!(
        m.resolve_strict(width, call).is_empty(),
        "strict: Ws is not visible at the caller, so no edge"
    );
}

// --- the flow rules over the fixture mini-workspace -----------------------

#[test]
fn check_site_fires_across_fixture_files_and_checked_variant_is_clean() {
    let r = flow(&[
        (KERNELS, include_str!("fixtures/graph/kernels.rs")),
        (DRIVER, include_str!("fixtures/graph/driver_bad.rs")),
    ]);
    assert_eq!(rules_of(&r), ["check_site"], "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.file, DRIVER);
    assert!(v.msg.contains("Driver::sweep"), "{}", v.msg);
    assert!(v.msg.contains("step"), "{}", v.msg);

    let r = flow(&[
        (KERNELS, include_str!("fixtures/graph/kernels.rs")),
        (DRIVER, include_str!("fixtures/graph/driver_ok.rs")),
    ]);
    assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn key_fields_fires_on_fixture_and_exclusion_clears_it() {
    let path = "crates/bench/src/config.rs";
    let r = flow(&[(path, include_str!("fixtures/graph/keys_bad.rs"))]);
    assert_eq!(rules_of(&r), ["key_fields"], "{:?}", r.violations);
    assert!(
        r.violations[0].msg.contains("`threads`"),
        "{}",
        r.violations[0].msg
    );

    let r = flow(&[(path, include_str!("fixtures/graph/keys_ok.rs"))]);
    assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
}

#[test]
fn hot_alloc_fires_in_band_closure_fixture() {
    // The band-iterator contract holds outside kernels.rs too.
    let r = flow(&[(
        "crates/linalg/src/dense.rs",
        include_str!("fixtures/graph/hot_band.rs"),
    )]);
    assert_eq!(rules_of(&r), ["hot_alloc"], "{:?}", r.violations);
    assert!(
        r.violations[0].msg.contains("to_vec"),
        "{}",
        r.violations[0].msg
    );
}

// --- the workspace itself stays clean, per rule ---------------------------

fn workspace_violations_of(rule: &str) -> Vec<String> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let tax = bbgnn_analysis::taxonomy::builtin().expect("DESIGN.md §8 taxonomy parses");
    let report =
        bbgnn_analysis::lint_workspace(Path::new(root), &tax).expect("workspace walk succeeds");
    report
        .violations
        .iter()
        .filter(|v| v.rule.name() == rule)
        .map(|v| v.render())
        .collect()
}

#[test]
fn workspace_is_check_site_clean() {
    let vs = workspace_violations_of("check_site");
    assert!(vs.is_empty(), "{}", vs.join("\n"));
}

#[test]
fn workspace_is_key_fields_clean() {
    let vs = workspace_violations_of("key_fields");
    assert!(vs.is_empty(), "{}", vs.join("\n"));
}

#[test]
fn workspace_is_dead_taxonomy_clean() {
    let vs = workspace_violations_of("dead_taxonomy");
    assert!(vs.is_empty(), "{}", vs.join("\n"));
}

#[test]
fn workspace_is_hot_alloc_clean() {
    let vs = workspace_violations_of("hot_alloc");
    assert!(vs.is_empty(), "{}", vs.join("\n"));
}

// --- lint_files: focused reports over a real tree -------------------------

#[test]
fn lint_files_focuses_the_report_and_rejects_unknown_paths() {
    // A throwaway on-disk workspace: one dirty kernels.rs, one clean file.
    let root = std::env::temp_dir().join(format!("bbgnn_lint_files_{}", std::process::id()));
    let src_dir = root.join("crates/linalg/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        src_dir.join("kernels.rs"),
        "pub fn f(n: usize) { for _ in 0..n { let v = vec![0u8; 4]; drop(v); } }\n",
    )
    .unwrap();
    std::fs::write(src_dir.join("dense.rs"), "pub fn g() {}\n").unwrap();

    let tax = Taxonomy::default();
    // Focusing on the clean file filters the kernels finding out…
    let r =
        bbgnn_analysis::walk::lint_files(&root, &tax, &["crates/linalg/src/dense.rs".to_string()])
            .unwrap();
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.files_scanned, 2, "the analysis still covers the tree");
    // …while focusing on kernels.rs keeps it.
    let r = bbgnn_analysis::walk::lint_files(
        &root,
        &tax,
        &["crates/linalg/src/kernels.rs".to_string()],
    )
    .unwrap();
    assert_eq!(rules_of_ws(&r), ["hot_alloc"], "{:?}", r.violations);

    // A typo'd path is a loud error, not a silently-clean report.
    let err = bbgnn_analysis::walk::lint_files(&root, &tax, &["crates/nope.rs".to_string()]);
    assert!(err.is_err(), "{err:?}");

    std::fs::remove_dir_all(&root).ok();
}

fn rules_of_ws(r: &bbgnn_analysis::WorkspaceReport) -> Vec<&'static str> {
    r.violations.iter().map(|v| v.rule.name()).collect()
}
