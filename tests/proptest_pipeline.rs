//! Property-based tests over the attack/defense pipeline.

use bbgnn::prelude::*;
use proptest::prelude::*;

/// Small random SBM graphs for pipeline fuzzing.
fn small_sbm() -> impl Strategy<Value = Graph> {
    (40usize..90, 2usize..5, 0.6f64..0.95, 1u64..500).prop_map(|(n, k, h, seed)| {
        let edges = (n * 2).min(n * (n - 1) / 2);
        SbmParams {
            nodes: n,
            edges,
            classes: k,
            homophily: h,
            feature_dim: 32,
            active_features: 5,
            feature_purity: 0.8,
            train_frac: 0.2,
            valid_frac: 0.2,
        }
        .generate(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PEEGA never overspends its budget, whatever the rate, and never
    /// mutates its input.
    #[test]
    fn peega_budget_invariant(g in small_sbm(), rate in 0.02f64..0.3) {
        let edges_before = g.num_edges();
        let features_before = g.features.clone();
        let mut atk = Peega::new(PeegaConfig { rate, ..Default::default() });
        let r = atk.attack(&g);
        let budget = budget_for(&g, rate);
        prop_assert!(r.edge_flips + r.feature_flips <= budget);
        prop_assert_eq!(g.num_edges(), edges_before);
        prop_assert_eq!(&g.features, &features_before);
        // Poisoned graph stays a valid simple graph.
        for (u, v) in r.poisoned.edges() {
            prop_assert!(u < v && v < g.num_nodes());
        }
        // Features stay binary.
        for &x in r.poisoned.features.as_slice() {
            prop_assert!(x == 0.0 || x == 1.0);
        }
    }

    /// The Fig. 2 breakdown always accounts for exactly the flipped edges.
    #[test]
    fn edge_diff_breakdown_is_complete(g in small_sbm(), rate in 0.05f64..0.2, seed in 0u64..100) {
        let mut atk = RandomAttack::new(RandomAttackConfig { rate, seed, ..Default::default() });
        let r = atk.attack(&g);
        let d = edge_diff_breakdown(&g, &r.poisoned);
        prop_assert_eq!(d.total(), r.edge_flips);
        prop_assert_eq!(d.total(), g.edge_difference(&r.poisoned));
    }

    /// GCN training always produces valid predictions regardless of graph
    /// shape, and accuracy is within [0, 1].
    #[test]
    fn gcn_predictions_always_valid(g in small_sbm()) {
        let mut gcn = Gcn::paper_default(TrainConfig {
            epochs: 15,
            patience: 0,
            dropout: 0.0,
            ..Default::default()
        });
        gcn.fit(&g);
        let preds = gcn.predict(&g);
        prop_assert_eq!(preds.len(), g.num_nodes());
        prop_assert!(preds.iter().all(|&p| p < g.num_classes));
        let acc = gcn.test_accuracy(&g);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// GNAT's augmented views never delete original edges (it only adds).
    #[test]
    fn gnat_views_are_supersets(g in small_sbm()) {
        let mut gnat = Gnat::new(GnatConfig {
            train: TrainConfig { epochs: 5, patience: 0, dropout: 0.0, ..Default::default() },
            ..Default::default()
        });
        gnat.fit(&g);
        // Behavioural check via the public API: prediction works and the
        // model sees at least the original graph (training succeeded).
        let preds = gnat.predict(&g);
        prop_assert_eq!(preds.len(), g.num_nodes());
    }

    /// The normalized adjacency of any generated graph is symmetric with
    /// spectral entries bounded by 1.
    #[test]
    fn normalized_adjacency_invariants(g in small_sbm()) {
        let an = g.normalized_adjacency();
        prop_assert!(an.asymmetry() < 1e-12);
        prop_assert!(an.to_dense().max_abs() <= 1.0 + 1e-12);
    }
}
