//! Table VII — wall-clock poison-graph generation time (seconds) of every
//! attacker on the three datasets at perturbation rate 0.1.
//!
//! Each cell is a scenario [`Job`] with an `attack_time` evaluation —
//! the same job `bbgnn-serve` runs for `"eval": {"kind": "attack_time"}`
//! submissions. Timings are machine-dependent, so this table is not
//! checkpointed (a re-run re-times).
//!
//! Reproduction targets: PEEGA is the fastest (or near-fastest) effective
//! attacker; GF-Attack and Metattack are the slowest; absolute numbers
//! differ from the paper's GPU testbed.

use bbgnn::prelude::*;
use bbgnn::scenario::dataset::paper_specs;
use bbgnn::scenario::job::{EvalKind, EvalSpec, Job, JobSpec};
use bbgnn_bench::{config::ExpConfig, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("table7_attack_time"));

    let specs = match paper_specs(cfg.dataset.as_deref()) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut headers = vec!["Attacker".to_string()];
    headers.extend(specs.iter().map(|s| format!("{} (s)", s.name())));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let ctx = ExecContext::from_env();
    let graphs: Vec<Graph> = specs
        .iter()
        .map(|s| s.generate(cfg.scale, cfg.seed))
        .collect();
    for kind in AttackerKind::paper_rows(cfg.rate) {
        let mut cells = vec![kind.name().to_string()];
        for (spec, g) in specs.iter().zip(&graphs) {
            let job_spec = JobSpec {
                dataset: spec.name().to_string(),
                eval: EvalSpec {
                    kind: EvalKind::AttackTime,
                    runs: cfg.runs,
                    scale: cfg.scale,
                    rate: cfg.rate,
                },
                seed: cfg.seed,
                ..JobSpec::default()
            };
            let job = Job::from_parts(
                format!("{}/{}", spec.name(), kind.name()),
                job_spec,
                Some(kind.clone()),
                DefenderKind::Gcn,
            );
            let res = job.run_with_graph(&ctx, Some(g));
            cells.push(res.value);
        }
        table.push_row(cells);
    }
    table.emit(&cfg.out_dir, "table7_attack_time");
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("\npaper ordering: PEEGA < PGD < MinMax << Metattack, GF-Attack.");
}
