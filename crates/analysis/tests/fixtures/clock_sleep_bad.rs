//! Fixture: thread::sleep fires everywhere — library code AND tests.

pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

#[cfg(test)]
mod tests {
    #[test]
    fn waits_for_the_flush() {
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}
