//! Experiment harness for the paper reproduction.
//!
//! Every table and figure of the evaluation section has a dedicated binary
//! in `src/bin/` (see `DESIGN.md` §2 for the full index). The harness
//! provides the shared pieces:
//!
//! * [`cli`] — the shared infrastructure flag parser (`--threads --trace
//!   --store --deadline --budget --faults`) and the one init-time
//!   side-effect sequence every entry point runs;
//! * [`config::ExpConfig`] — scale / runs / rate / seed, from CLI flags or
//!   `BBGNN_*` environment variables (malformed input surfaces as
//!   [`InvalidConfig`](bbgnn_errors::BbgnnError::InvalidConfig) naming the
//!   offending flag);
//! * [`runner`] — attack generation and repeated-run defender evaluation
//!   (now a shim over [`bbgnn_scenario::eval`]);
//! * [`fault`] — per-cell panic isolation, deterministic seed-perturbed
//!   retries, and ok/retried/degraded/failed outcome accounting, plus the
//!   checkpointing adapter for [`bbgnn_scenario::job::Job`] cells;
//! * [`checkpoint`] — crash-safe `results/*.checkpoint.json` cell stores so
//!   a killed sweep resumes byte-identically;
//! * [`report`] — fixed-width table printing plus CSV/JSON dumps under
//!   `results/`;
//! * [`compare`] — the CI perf gate: compares a fresh `BENCH_kernels.json`
//!   against the committed baseline on naive-relative median speedups.
//!
//! All binaries print the same rows/series the paper reports and write a
//! machine-readable copy next to them.

#![deny(missing_docs)]
// The harness is the fault boundary for every experiment: it must report
// and checkpoint failures, never crash on them (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod cli;
pub mod compare;
pub mod config;
pub mod fault;
pub mod json;
pub mod report;
pub mod runner;
pub mod trace;
