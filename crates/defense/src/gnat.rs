//! GNAT — the paper's graph-augmentation defender (Sec. IV-B).
//!
//! GNAT counteracts the dominant attack pattern (adding edges between
//! nodes with different labels, Sec. IV-A) by training a GCN jointly on
//! three augmented views of the poisoned graph `Ĝ(V, Â, X̂)`:
//!
//! * **topology graph** `Ĝᵗ` — connects every node with its `k_t`-hop
//!   neighborhood (`Âᵗ[v][u] = 1` if `u` is reachable within `k_t` hops);
//! * **feature graph** `Ĝᶠ` — connects every node with its top-`k_f`
//!   cosine-similar nodes (features are rarely attacked, Sec. V-D1);
//! * **ego graph** `Ĝᵉ` — emphasizes each node's own features with
//!   weighted self-loops, `Âᵉ = Â + k_e·I`.
//!
//! One shared GCN runs on each view; the output representations are
//! averaged, `Z = (Zᵗ + Zᶠ + Zᵉ)/3`, and trained with the usual
//! cross-entropy (Eq. 2). Averaging happens in logit space here (the
//! paper averages the final representations; with a shared softmax head
//! the two coincide up to a monotone reparameterization).
//!
//! The Table IX ablation variants — single views, subsets of views, and
//! *merged* graphs (all edges folded into one graph) — are expressed with
//! [`GnatConfig::views`] and [`GnatConfig::merged`].

use crate::Defender;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_gnn::train::{train_node_classifier_keyed, Mode, TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

/// One augmented view of the poisoned graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum View {
    /// `k_t`-hop topology graph.
    Topology,
    /// Top-`k_f` cosine feature graph.
    Feature,
    /// `Â + k_e·I` ego graph.
    Ego,
}

impl View {
    /// One-letter tag used in variant names (`t`, `f`, `e`).
    fn tag(self) -> char {
        match self {
            View::Topology => 't',
            View::Feature => 'f',
            View::Ego => 'e',
        }
    }
}

/// GNAT configuration. Defaults are the paper's tuned values on Citeseer:
/// `k_t = 2`, `k_f = 15`, `k_e = 10`, all three views, multi-view (not
/// merged) training.
#[derive(Clone, Debug)]
pub struct GnatConfig {
    /// Topology-view hop count (`0` falls back to the original adjacency).
    pub k_t: usize,
    /// Feature-view neighbor count (`0` falls back to the original
    /// adjacency).
    pub k_f: usize,
    /// Ego-view self-loop weight.
    pub k_e: f64,
    /// Which views participate.
    pub views: Vec<View>,
    /// Fold all views into one merged graph instead of joint multi-view
    /// training (the `GNAT-tfe`-style Table IX variants).
    pub merged: bool,
    /// Optional Sec. VI extension: before building the augmented views,
    /// delete poisoned-graph edges whose endpoint features have Jaccard
    /// similarity below this threshold. The paper leaves "leveraging the
    /// knowledge of adding AND removing" to future work; this implements
    /// it. `None` (default) reproduces the published GNAT exactly.
    pub prune_threshold: Option<f64>,
    /// Hidden width of the shared GCN.
    pub hidden: usize,
    /// Training configuration.
    pub train: TrainConfig,
}

impl Default for GnatConfig {
    fn default() -> Self {
        Self {
            k_t: 2,
            k_f: 15,
            k_e: 10.0,
            views: vec![View::Topology, View::Feature, View::Ego],
            merged: false,
            prune_threshold: None,
            hidden: 16,
            train: TrainConfig::default(),
        }
    }
}

impl GnatConfig {
    /// Default configuration without the feature view — used on datasets
    /// with identity features (Polblogs), where cosine similarity is
    /// uninformative (Table VI's `GNAT\f`).
    pub fn without_feature_view() -> Self {
        Self {
            views: vec![View::Topology, View::Ego],
            ..Self::default()
        }
    }
}

/// The GNAT defender.
pub struct Gnat {
    /// Configuration.
    pub config: GnatConfig,
    weights: Vec<DenseMatrix>,
    view_adjacencies: Vec<Rc<CsrMatrix>>,
}

impl Gnat {
    /// Creates an untrained GNAT defender.
    pub fn new(config: GnatConfig) -> Self {
        assert!(!config.views.is_empty(), "GNAT needs at least one view");
        Self {
            config,
            weights: Vec::new(),
            view_adjacencies: Vec::new(),
        }
    }

    /// Builds the raw (unnormalized) adjacency of one view.
    fn view_adjacency(&self, g: &Graph, view: View) -> CsrMatrix {
        let n = g.num_nodes();
        match view {
            View::Topology => {
                if self.config.k_t <= 1 {
                    return g.adjacency_csr();
                }
                // Saturation guard: on dense graphs the k-hop reachability
                // approaches the complete graph, which washes out every
                // neighborhood distinction (the failure mode of k_t = 2 on
                // the small dense Polblogs). Reduce the hop count until the
                // view stays below half of all pairs.
                let mut k_t = self.config.k_t;
                let mut m = loop {
                    let mut triplets = Vec::new();
                    for v in 0..n {
                        for u in g.k_hop_neighbors(v, k_t) {
                            triplets.push((v, u, 1.0));
                            triplets.push((u, v, 1.0));
                        }
                    }
                    let m = CsrMatrix::from_triplets(n, n, triplets).to_dense();
                    if k_t == 1 || (m.nnz() as f64) < 0.5 * (n * n) as f64 {
                        break m;
                    }
                    k_t -= 1;
                };
                m.map_inplace(|x| if x > 0.0 { 1.0 } else { 0.0 });
                CsrMatrix::from_dense(&m, 0.5)
            }
            View::Feature => {
                if self.config.k_f == 0 {
                    return g.adjacency_csr();
                }
                let knn = crate::knn_feature_edges(&g.features, self.config.k_f);
                let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
                for (u, v) in g.edges() {
                    triplets.push((u, v, 1.0));
                    triplets.push((v, u, 1.0));
                }
                for (u, v) in knn {
                    if !g.has_edge(u, v) {
                        triplets.push((u, v, 1.0));
                        triplets.push((v, u, 1.0));
                    }
                }
                CsrMatrix::from_triplets(n, n, triplets)
            }
            View::Ego => g.adjacency_csr().add_identity(self.config.k_e),
        }
    }

    /// Builds the normalized adjacencies the model will propagate over:
    /// one per view, or a single merged graph.
    fn build_views(&self, g: &Graph) -> Vec<Rc<CsrMatrix>> {
        let raw: Vec<CsrMatrix> = self
            .config
            .views
            .iter()
            .map(|&v| self.view_adjacency(g, v))
            .collect();
        if self.config.merged {
            let n = g.num_nodes();
            let mut merged = DenseMatrix::zeros(n, n);
            for m in &raw {
                merged = merged.add(&m.to_dense());
            }
            // Union semantics off the diagonal; keep accumulated self-loop
            // weight (the ego view's contribution).
            for i in 0..n {
                for j in 0..n {
                    if i != j && merged.get(i, j) > 0.0 {
                        merged.set(i, j, 1.0);
                    }
                }
            }
            vec![Rc::new(
                CsrMatrix::from_dense(&merged, 1e-12).gcn_normalize(),
            )]
        } else {
            raw.into_iter()
                .map(|m| Rc::new(m.gcn_normalize()))
                .collect()
        }
    }

    /// Multi-view forward pass with shared weights; returns averaged logits.
    fn forward(
        &self,
        tape: &mut Tape,
        weights: &[DenseMatrix],
        views: &[Rc<CsrMatrix>],
        x: &DenseMatrix,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>) {
        let ids: Vec<TensorId> = weights.iter().map(|w| tape.var(w.clone())).collect();
        let dropout = self.config.train.dropout;
        let mut view_logits = Vec::with_capacity(views.len());
        for (vi, an) in views.iter().enumerate() {
            let mut h = tape.constant(x.clone());
            let last = ids.len() - 1;
            for (l, &w) in ids.iter().enumerate() {
                if let (true, Some(epoch)) = (dropout > 0.0, mode.train_epoch()) {
                    let seed = self
                        .config
                        .train
                        .seed
                        .wrapping_add(5000)
                        .wrapping_add((epoch as u64) * 97 + (vi * 13 + l) as u64);
                    h = tape.dropout(h, dropout, seed);
                }
                // lint: allow(check_site) reason=forward builds one epoch's graph; the §11 check sits at the epoch boundary in the train loop
                let hw = tape.matmul(h, w);
                h = tape.spmm(Rc::clone(an), hw);
                if l < last {
                    h = tape.relu(h);
                }
            }
            view_logits.push(h);
        }
        let mut sum = view_logits[0];
        for &z in &view_logits[1..] {
            sum = tape.add(sum, z);
        }
        let avg = tape.scalar_mul(sum, 1.0 / view_logits.len() as f64);
        (avg, ids)
    }

    /// Averaged logits with the trained weights.
    pub fn logits(&self, g: &Graph) -> DenseMatrix {
        assert!(!self.weights.is_empty(), "model is not trained");
        let mut tape = Tape::new();
        let (out, _) = self.forward(
            &mut tape,
            &self.weights,
            &self.view_adjacencies,
            &g.features,
            Mode::Eval,
        );
        tape.value(out).clone()
    }
}

impl NodeClassifier for Gnat {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/gnat/fit", nodes = g.num_nodes());
        let pruned;
        let g = match self.config.prune_threshold {
            Some(threshold) => {
                pruned = prune_dissimilar_edges(g, threshold);
                &pruned
            }
            None => g,
        };
        let views = self.build_views(g);
        self.view_adjacencies = views.clone();
        let seed = self.config.train.seed;
        let mut weights = vec![
            DenseMatrix::glorot(g.feature_dim(), self.config.hidden, seed),
            DenseMatrix::glorot(self.config.hidden, g.num_classes, seed.wrapping_add(1)),
        ];
        let x = g.features.clone();
        let cfg = self.config.train.clone();
        // `g` is the pruned graph when prune_threshold is set, so the graph
        // hash inside the keyed loop already reflects pruning; the knobs
        // below cover everything else that shapes the views and weights.
        let salt = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("model/gnat")
                .field("k_t", self.config.k_t)
                .field("k_f", self.config.k_f)
                .field("k_e", self.config.k_e)
                .field("views", format!("{:?}", self.config.views))
                .field("merged", self.config.merged)
                .field("prune", format!("{:?}", self.config.prune_threshold))
                .field("hidden", self.config.hidden)
        });
        let this = &*self;
        let report =
            train_node_classifier_keyed(&mut weights, g, &cfg, salt, |tape, params, mode| {
                this.forward(tape, params, &views, &x, mode)
            });
        self.weights = weights;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        self.logits(g).row_argmax()
    }
}

impl Defender for Gnat {
    fn name(&self) -> String {
        let base = if self.config.views.len() == 3 && !self.config.merged {
            "GNAT".to_string()
        } else {
            let tags: String = self.config.views.iter().map(|v| v.tag()).collect();
            if self.config.merged {
                format!("GNAT-{tags}")
            } else {
                let joined: Vec<String> = tags.chars().map(|c| c.to_string()).collect();
                format!("GNAT-{}", joined.join("+"))
            }
        };
        if self.config.prune_threshold.is_some() {
            format!("{base}+prune")
        } else {
            base
        }
    }
}

/// Removes edges whose endpoint features have Jaccard similarity below
/// `threshold` — the edge-removal half of the Sec. VI extension. Exposed
/// so the ablation bench can measure it in isolation.
pub fn prune_dissimilar_edges(g: &Graph, threshold: f64) -> Graph {
    let mut out = g.clone();
    let doomed: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(u, v)| {
            crate::jaccard::GcnJaccard::jaccard(g.features.row(u), g.features.row(v)) < threshold
        })
        .collect();
    for (u, v) in doomed {
        out.remove_edge(u, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_attack::peega::{Peega, PeegaConfig};
    use bbgnn_attack::Attacker;
    use bbgnn_gnn::gcn::Gcn;
    use bbgnn_graph::datasets::DatasetSpec;

    fn fast() -> TrainConfig {
        TrainConfig::fast_test()
    }

    #[test]
    fn variant_names_match_table_ix() {
        let full = Gnat::new(GnatConfig {
            train: fast(),
            ..Default::default()
        });
        assert_eq!(full.name(), "GNAT");
        let t = Gnat::new(GnatConfig {
            views: vec![View::Topology],
            train: fast(),
            ..Default::default()
        });
        assert_eq!(t.name(), "GNAT-t");
        let te = Gnat::new(GnatConfig {
            views: vec![View::Topology, View::Ego],
            train: fast(),
            ..Default::default()
        });
        assert_eq!(te.name(), "GNAT-t+e");
        let merged = Gnat::new(GnatConfig {
            views: vec![View::Topology, View::Feature, View::Ego],
            merged: true,
            train: fast(),
            ..Default::default()
        });
        assert_eq!(merged.name(), "GNAT-tfe");
    }

    #[test]
    fn views_only_add_edges() {
        // Each augmented view must contain every original edge (GNAT only
        // adds, Sec. VI future work notes removal is not attempted).
        let g = DatasetSpec::CoraLike.generate(0.05, 101);
        let gnat = Gnat::new(GnatConfig {
            train: fast(),
            ..Default::default()
        });
        for &view in &[View::Topology, View::Feature] {
            let adj = gnat.view_adjacency(&g, view);
            for (u, v) in g.edges() {
                assert!(adj.get(u, v) > 0.0, "{view:?} view dropped edge ({u},{v})");
            }
        }
        let ego = gnat.view_adjacency(&g, View::Ego);
        for v in 0..g.num_nodes() {
            assert_eq!(ego.get(v, v), 10.0, "ego view must carry k_e self-loops");
        }
    }

    #[test]
    fn topology_view_matches_k_hop_reachability() {
        let g = DatasetSpec::CoraLike.generate(0.04, 102);
        let gnat = Gnat::new(GnatConfig {
            k_t: 2,
            train: fast(),
            ..Default::default()
        });
        let adj = gnat.view_adjacency(&g, View::Topology);
        for v in 0..g.num_nodes().min(20) {
            let reach = g.k_hop_neighbors(v, 2);
            for u in reach {
                assert!(adj.get(v, u) > 0.0, "2-hop neighbor {u} of {v} missing");
            }
        }
    }

    #[test]
    fn learns_clean_graph() {
        let g = DatasetSpec::CoraLike.generate(0.06, 103);
        let mut gnat = Gnat::new(GnatConfig {
            train: fast(),
            ..Default::default()
        });
        gnat.fit(&g);
        let acc = gnat.test_accuracy(&g);
        assert!(acc > 0.6, "GNAT clean accuracy {acc} too low");
    }

    #[test]
    fn defends_against_peega_better_than_gcn() {
        let g = DatasetSpec::CoraLike.generate(0.08, 104);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;

        let mut gcn = Gcn::paper_default(fast());
        gcn.fit(&poisoned);
        let gcn_acc = gcn.test_accuracy(&poisoned);

        let mut gnat = Gnat::new(GnatConfig {
            train: fast(),
            ..Default::default()
        });
        gnat.fit(&poisoned);
        let gnat_acc = gnat.test_accuracy(&poisoned);
        assert!(
            gnat_acc > gcn_acc,
            "GNAT ({gnat_acc}) must beat raw GCN ({gcn_acc}) on the poisoned graph"
        );
    }

    #[test]
    fn merged_variant_trains() {
        let g = DatasetSpec::CoraLike.generate(0.05, 105);
        let mut gnat = Gnat::new(GnatConfig {
            merged: true,
            train: fast(),
            ..Default::default()
        });
        gnat.fit(&g);
        assert!(gnat.test_accuracy(&g) > 0.4);
    }

    #[test]
    fn prune_extension_removes_only_dissimilar_edges() {
        let g = DatasetSpec::CoraLike.generate(0.05, 107);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let pruned = prune_dissimilar_edges(&poisoned, 0.02);
        assert!(
            pruned.num_edges() < poisoned.num_edges(),
            "pruning must remove something"
        );
        // Every surviving edge was present in the poisoned graph.
        for (u, v) in pruned.edges() {
            assert!(poisoned.has_edge(u, v));
        }
    }

    #[test]
    fn prune_variant_name_and_training() {
        let g = DatasetSpec::CoraLike.generate(0.05, 108);
        let mut gnat = Gnat::new(GnatConfig {
            prune_threshold: Some(0.02),
            train: fast(),
            ..Default::default()
        });
        assert_eq!(gnat.name(), "GNAT+prune");
        gnat.fit(&g);
        assert!(gnat.test_accuracy(&g) > 0.5);
    }

    #[test]
    fn without_feature_view_works_on_identity_features() {
        let g = DatasetSpec::PolblogsLike.generate(0.1, 106);
        let mut gnat = Gnat::new(GnatConfig {
            train: fast(),
            ..GnatConfig::without_feature_view()
        });
        gnat.fit(&g);
        assert!(gnat.test_accuracy(&g) > 0.75);
    }
}
