//! Symmetric eigendecomposition.
//!
//! * [`jacobi_eigen`] — cyclic Jacobi rotations; exact, cubic cost, used for
//!   small/medium symmetric matrices.
//! * [`lanczos_topk`] — Lanczos iteration with full reorthogonalization for
//!   the extremal eigenpairs of large sparse symmetric matrices; used by
//!   GF-Attack, which scores edge flips with the top of the normalized
//!   adjacency spectrum.
//!
//! Both have fallible `try_*` forms returning
//! [`BbgnnResult`](bbgnn_errors::BbgnnResult). [`try_jacobi_eigen`] turns
//! the sweep budget into a runtime
//! [`ConvergenceFailure`](bbgnn_errors::BbgnnError::ConvergenceFailure)
//! check; [`try_lanczos_topk`] validates the Ritz residuals
//! `‖A v − λ v‖ / max(|λ|, 1)` and restarts with a fresh start vector and a
//! larger Krylov space (full reorthogonalization throughout) before
//! erroring. The original panicking names are kept as thin wrappers.

use crate::qr::thin_qr;
use crate::svd::check_finite_input;
use crate::{CsrMatrix, DenseMatrix};
use bbgnn_errors::{first_non_finite, BbgnnError, BbgnnResult};

/// Eigendecomposition `A = Q Λ Q^T` of a symmetric matrix, eigenvalues
/// sorted descending.
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: DenseMatrix,
}

impl Eigen {
    /// Reconstructs `Q Λ Q^T`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let qs = self.vectors.scale_cols(&self.values);
        qs.matmul_nt(&self.vectors)
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix, with runtime
/// convergence checking.
///
/// Errors with [`BbgnnError::ConvergenceFailure`] when the off-diagonal
/// mass is still above threshold after the sweep budget, and
/// [`BbgnnError::NumericalDivergence`] on non-finite input.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed, not checked (the upper
/// triangle is used).
pub fn try_jacobi_eigen(a: &DenseMatrix) -> BbgnnResult<Eigen> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eigen requires a square matrix");
    check_finite_input(a, "jacobi_eigen")?;
    let mut m = a.clone();
    let mut q = DenseMatrix::identity(n);
    let max_sweeps = 60;
    let eps = 1e-12;
    let scale = a.frobenius_norm().max(1e-300);
    let mut converged = false;
    let mut last_off = 0.0_f64;
    for _sweep in 0..max_sweeps {
        // Cooperative stop site (DESIGN.md §11): a sweep boundary is safe
        // because no sweep has been partially applied here.
        bbgnn_supervise::check("jacobi_eigen/sweep")?;
        let mut off = 0.0_f64;
        for p in 0..n {
            for r in (p + 1)..n {
                off += m.get(p, r) * m.get(p, r);
            }
        }
        last_off = off.sqrt() / scale;
        if off.sqrt() <= eps * scale {
            converged = true;
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = m.get(p, r);
                if apr == 0.0 {
                    continue;
                }
                let app = m.get(p, p);
                let arr = m.get(r, r);
                let tau = (arr - app) / (2.0 * apr);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // M <- J^T M J where J rotates plane (p, r).
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkr = m.get(k, r);
                    m.set(k, p, c * mkp - s * mkr);
                    m.set(k, r, s * mkp + c * mkr);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mrk = m.get(r, k);
                    m.set(p, k, c * mpk - s * mrk);
                    m.set(r, k, s * mpk + c * mrk);
                }
                for k in 0..n {
                    let qkp = q.get(k, p);
                    let qkr = q.get(k, r);
                    q.set(k, p, c * qkp - s * qkr);
                    q.set(k, r, s * qkp + c * qkr);
                }
            }
        }
    }
    if !converged {
        return Err(BbgnnError::ConvergenceFailure {
            method: "jacobi_eigen".to_string(),
            iters: max_sweeps,
            residual: last_off,
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(j, j).total_cmp(&m.get(i, i)));
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    let mut qcol = vec![0.0; n];
    for (out_col, &i) in order.iter().enumerate() {
        q.col_into(i, &mut qcol);
        vectors.set_col(out_col, &qcol);
    }
    Ok(Eigen { values, vectors })
}

/// Infallible façade over [`try_jacobi_eigen`].
///
/// # Panics
/// Panics if `a` is not square, contains non-finite entries, or the sweep
/// budget runs out; use the `try_` form where recovery is possible.
pub fn jacobi_eigen(a: &DenseMatrix) -> Eigen {
    // lint: allow(panic) reason=documented infallible facade — try_jacobi_eigen is the recoverable path
    try_jacobi_eigen(a).unwrap_or_else(|e| panic!("jacobi_eigen: {e}"))
}

/// Relative Ritz residual tolerance accepted by [`try_lanczos_topk`].
const LANCZOS_RESIDUAL_TOL: f64 = 1e-6;
/// Restart attempts (fresh start vector, larger Krylov space) before a
/// [`BbgnnError::ConvergenceFailure`] is raised.
const LANCZOS_MAX_ATTEMPTS: usize = 3;

/// Lanczos iteration with full reorthogonalization and restart-on-failure:
/// returns the `k` algebraically largest eigenpairs of the symmetric sparse
/// matrix `a`.
///
/// `k` is clamped to `n`. The base Krylov dimension is
/// `min(n, max(3k, k + 30))`. After each run the Ritz residuals
/// `‖A v − λ v‖ / max(|λ|, 1)` are validated; a failing run is restarted
/// with a perturbed start vector and a doubled Krylov space (up to
/// [`LANCZOS_MAX_ATTEMPTS`] attempts) before
/// [`BbgnnError::ConvergenceFailure`] reports the best residual reached.
/// Deterministic given `seed` (restart seeds are derived from it).
///
/// # Panics
/// Panics if `a` is not square.
pub fn try_lanczos_topk(a: &CsrMatrix, k: usize, seed: u64) -> BbgnnResult<Eigen> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lanczos_topk requires a square matrix");
    if let Some((idx, value)) = first_non_finite(a.values()) {
        return Err(BbgnnError::NumericalDivergence {
            what: format!("lanczos_topk: stored entry #{idx}"),
            value,
        });
    }
    let k = k.min(n);
    if k == 0 || n == 0 {
        return Ok(Eigen {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(n, 0),
        });
    }
    let base_dim = n.min((3 * k).max(k + 30));
    let mut best_residual = f64::INFINITY;
    let mut best: Option<Eigen> = None;
    for attempt in 0..LANCZOS_MAX_ATTEMPTS {
        // Cooperative stop site (DESIGN.md §11): restart boundaries only —
        // a Krylov build runs to completion once started.
        bbgnn_supervise::check("lanczos/restart")?;
        // Deterministic restart schedule: new start vector, larger space.
        let attempt_seed = seed.wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dim = n.min(base_dim << attempt);
        let eig = lanczos_once(a, k, attempt_seed, dim)?;
        let residual = max_ritz_residual(a, &eig);
        if residual <= LANCZOS_RESIDUAL_TOL {
            return Ok(eig);
        }
        if residual < best_residual {
            best_residual = residual;
            best = Some(eig);
        }
    }
    drop(best);
    Err(BbgnnError::ConvergenceFailure {
        method: format!("lanczos_topk(k={k}, restarts={LANCZOS_MAX_ATTEMPTS})"),
        iters: n.min(base_dim << (LANCZOS_MAX_ATTEMPTS - 1)),
        residual: best_residual,
    })
}

/// Worst relative Ritz residual `‖A v − λ v‖ / max(|λ|, 1)` over the
/// returned eigenpairs (NaN-propagating: non-finite → `inf`).
fn max_ritz_residual(a: &CsrMatrix, eig: &Eigen) -> f64 {
    let n = a.rows();
    let mut worst = 0.0_f64;
    let mut v = vec![0.0; n];
    for (c, &lambda) in eig.values.iter().enumerate() {
        if !lambda.is_finite() {
            return f64::INFINITY;
        }
        eig.vectors.col_into(c, &mut v);
        let av = a.spmv(&v);
        let mut err = 0.0;
        for i in 0..n {
            let d = av[i] - lambda * v[i];
            err += d * d;
        }
        let rel = err.sqrt() / lambda.abs().max(1.0);
        if !rel.is_finite() {
            return f64::INFINITY;
        }
        worst = worst.max(rel);
    }
    worst
}

/// One Lanczos run with Krylov dimension `dim` (no residual validation).
///
/// Fallible only through the tridiagonal solve: a supervision stop (or a
/// convergence failure) inside [`try_jacobi_eigen`] must propagate as an
/// error — the Lanczos caller may sit outside any panic boundary (e.g. the
/// GF-Attack poisoning path), where the infallible façade would turn a
/// cooperative stop into a crash.
fn lanczos_once(a: &CsrMatrix, k: usize, seed: u64, dim: usize) -> BbgnnResult<Eigen> {
    let n = a.rows();
    // Build Krylov basis.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(dim);
    let mut alphas = Vec::with_capacity(dim);
    let mut betas = Vec::with_capacity(dim);
    let v0 = DenseMatrix::gaussian(n, 1, 1.0, seed).into_vec();
    let norm0 = v0.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut v: Vec<f64> = v0.iter().map(|x| x / norm0).collect();
    let mut v_prev = vec![0.0; n];
    let mut beta_prev = 0.0;
    for _j in 0..dim {
        basis.push(v.clone());
        let mut w = a.spmv(&v);
        let alpha: f64 = w.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        for i in 0..n {
            w[i] -= alpha * v[i] + beta_prev * v_prev[i];
        }
        // Full reorthogonalization (twice for stability).
        for _ in 0..2 {
            for b in &basis {
                let proj: f64 = w.iter().zip(b).map(|(&x, &y)| x * y).sum();
                for i in 0..n {
                    w[i] -= proj * b[i];
                }
            }
        }
        alphas.push(alpha);
        let beta = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        betas.push(beta);
        if beta < 1e-12 {
            break;
        }
        v_prev = std::mem::replace(&mut v, w.iter().map(|x| x / beta).collect());
        beta_prev = beta;
    }
    let m = basis.len();
    // Tridiagonal matrix in the Krylov basis.
    let mut t = DenseMatrix::zeros(m, m);
    for j in 0..m {
        t.set(j, j, alphas[j]);
        if j + 1 < m {
            t.set(j, j + 1, betas[j]);
            t.set(j + 1, j, betas[j]);
        }
    }
    let tri = try_jacobi_eigen(&t)?;
    let kk = k.min(m);
    let mut vectors = DenseMatrix::zeros(n, kk);
    // Accumulate each Ritz vector in a contiguous scratch column, then
    // store it with one strided write instead of n strided `add_at` calls.
    let mut ritz = vec![0.0; n];
    for c in 0..kk {
        ritz.fill(0.0);
        for (j, b) in basis.iter().enumerate() {
            let w = tri.vectors.get(j, c);
            if w != 0.0 {
                for (o, &bi) in ritz.iter_mut().zip(b) {
                    *o += w * bi;
                }
            }
        }
        vectors.set_col(c, &ritz);
    }
    // Re-orthonormalize the Ritz vectors (cheap, kk columns).
    let vectors = thin_qr(&vectors).q;
    Ok(Eigen {
        values: tri.values[..kk].to_vec(),
        vectors,
    })
}

/// Infallible façade over [`try_lanczos_topk`].
///
/// # Panics
/// Panics if `a` is not square, contains non-finite entries, or every
/// restart fails its residual check.
pub fn lanczos_topk(a: &CsrMatrix, k: usize, seed: u64) -> Eigen {
    // lint: allow(panic) reason=documented infallible facade — try_lanczos_topk is the recoverable path
    try_lanczos_topk(a, k, seed).unwrap_or_else(|e| panic!("lanczos_topk: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut a = DenseMatrix::uniform(n, n, 1.0, seed);
        a.symmetrize();
        a
    }

    #[test]
    fn jacobi_eigen_reconstructs() {
        let a = random_symmetric(10, 41);
        let e = jacobi_eigen(&a);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn jacobi_eigen_orthonormal_and_sorted() {
        let a = random_symmetric(8, 42);
        let e = jacobi_eigen(&a);
        let gram = e.vectors.matmul_tn(&e.vectors);
        assert!(gram.max_abs_diff(&DenseMatrix::identity(8)) < 1e-9);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn jacobi_eigen_known_spectrum() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let a = random_symmetric(12, 43);
        let e = jacobi_eigen(&a);
        let trace: f64 = (0..12).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn lanczos_matches_jacobi_on_top_eigenpairs() {
        let dense = random_symmetric(30, 44);
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        let full = jacobi_eigen(&dense);
        let top = lanczos_topk(&sparse, 5, 7);
        for i in 0..5 {
            assert!(
                (full.values[i] - top.values[i]).abs() < 1e-6,
                "eigenvalue {i}: {} vs {}",
                full.values[i],
                top.values[i]
            );
        }
        // Eigenvectors match up to sign.
        for c in 0..5 {
            let dot: f64 = (0..30)
                .map(|i| full.vectors.get(i, c) * top.vectors.get(i, c))
                .sum();
            assert!(
                dot.abs() > 1.0 - 1e-5,
                "eigenvector {c} mismatch, |dot| = {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn lanczos_on_path_graph_spectrum() {
        // Path graph adjacency eigenvalues are 2cos(k*pi/(n+1)).
        let n = 20;
        let mut trips = Vec::new();
        for i in 0..n - 1 {
            trips.push((i, i + 1, 1.0));
            trips.push((i + 1, i, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, trips);
        let e = lanczos_topk(&a, 3, 2);
        let pi = std::f64::consts::PI;
        for (i, &val) in e.values.iter().enumerate() {
            let expected = 2.0 * ((i + 1) as f64 * pi / (n + 1) as f64).cos();
            assert!((val - expected).abs() < 1e-8, "{val} vs {expected}");
        }
    }

    #[test]
    fn try_jacobi_eigen_rejects_nan() {
        let mut a = random_symmetric(6, 45);
        a.set(1, 3, f64::NAN);
        assert!(matches!(
            try_jacobi_eigen(&a),
            Err(BbgnnError::NumericalDivergence { .. })
        ));
    }

    #[test]
    fn try_lanczos_rejects_nan_entries() {
        let a = CsrMatrix::from_triplets(3, 3, [(0, 1, f64::NAN), (1, 0, f64::NAN)]);
        match try_lanczos_topk(&a, 2, 1) {
            Err(BbgnnError::NumericalDivergence { value, .. }) => assert!(value.is_nan()),
            other => panic!("expected NumericalDivergence, got {other:?}"),
        }
    }

    #[test]
    fn try_lanczos_handles_near_degenerate_spectrum() {
        // A near-multiple top eigenvalue (two dominant, nearly equal) plus
        // near-zero bulk: Ritz residual validation must still pass, via
        // restart if the first Krylov space is unlucky.
        let n = 40;
        let mut trips = Vec::new();
        for i in 0..n {
            // Two clusters: λ ≈ 5 (twice, split by 1e-10) and a near-zero tail.
            let val = match i {
                0 => 5.0,
                1 => 5.0 - 1e-10,
                _ => 1e-9 * (i as f64),
            };
            trips.push((i, i, val));
        }
        let a = CsrMatrix::from_triplets(n, n, trips);
        let e = try_lanczos_topk(&a, 2, 11).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-8);
        assert!((e.values[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn try_lanczos_zero_k_is_empty() {
        let a = CsrMatrix::from_triplets(4, 4, [(0, 1, 1.0), (1, 0, 1.0)]);
        let e = try_lanczos_topk(&a, 0, 3).unwrap();
        assert!(e.values.is_empty());
    }
}
