//! Experiment configuration from CLI flags and environment variables.

/// Shared experiment knobs.
///
/// Resolution order per field: CLI flag (`--scale 0.2`) > environment
/// variable (`BBGNN_SCALE=0.2`) > default. The defaults are sized so each
/// experiment binary finishes on a laptop CPU in minutes; pass a larger
/// `--scale` to approach the paper's full dataset sizes.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Dataset scale factor in `(0, 1]` (fraction of Table III sizes).
    pub scale: f64,
    /// Repeated runs per cell (the paper uses 10).
    pub runs: usize,
    /// Perturbation rate `r` (the paper's headline tables use 0.1).
    pub rate: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional dataset filter (`--dataset cora|citeseer|polblogs`).
    pub dataset: Option<String>,
    /// Directory for CSV/JSON result dumps.
    pub out_dir: String,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 0.12,
            runs: 3,
            rate: 0.1,
            seed: 7,
            dataset: None,
            out_dir: "results".to_string(),
        }
    }
}

impl ExpConfig {
    /// Parses the process arguments and environment.
    ///
    /// # Panics
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("BBGNN_SCALE") {
            cfg.scale = v.parse().expect("BBGNN_SCALE must be a float");
        }
        if let Ok(v) = std::env::var("BBGNN_RUNS") {
            cfg.runs = v.parse().expect("BBGNN_RUNS must be an integer");
        }
        if let Ok(v) = std::env::var("BBGNN_RATE") {
            cfg.rate = v.parse().expect("BBGNN_RATE must be a float");
        }
        if let Ok(v) = std::env::var("BBGNN_SEED") {
            cfg.seed = v.parse().expect("BBGNN_SEED must be an integer");
        }
        if let Ok(v) = std::env::var("BBGNN_OUT") {
            cfg.out_dir = v;
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut next = |what: &str| -> &str {
                it.next().unwrap_or_else(|| panic!("{flag} requires a value ({what})"))
            };
            match flag.as_str() {
                "--scale" => cfg.scale = next("float").parse().expect("bad --scale"),
                "--runs" => cfg.runs = next("int").parse().expect("bad --runs"),
                "--rate" => cfg.rate = next("float").parse().expect("bad --rate"),
                "--seed" => cfg.seed = next("int").parse().expect("bad --seed"),
                "--dataset" => cfg.dataset = Some(next("name").to_string()),
                "--out" => cfg.out_dir = next("dir").to_string(),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale F --runs N --rate F --seed N --dataset NAME --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; see --help"),
            }
        }
        assert!(cfg.scale > 0.0 && cfg.scale <= 1.0, "scale must be in (0, 1]");
        assert!(cfg.runs >= 1, "need at least one run");
        cfg
    }

    /// Banner line echoed at the top of every experiment's output.
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "== {experiment} | scale {} | runs {} | rate {} | seed {} ==",
            self.scale, self.runs, self.rate, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExpConfig::default();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.runs >= 1);
        assert!(c.rate > 0.0);
    }

    #[test]
    fn banner_mentions_experiment() {
        let c = ExpConfig::default();
        assert!(c.banner("table4").contains("table4"));
    }
}
