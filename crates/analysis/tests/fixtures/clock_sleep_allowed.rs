//! Fixture: the one real sleeper seam carries a waiver; tests use the
//! injectable clock and never sleep.

pub fn run(mut sleep: impl FnMut(std::time::Duration)) {
    sleep(std::time::Duration::from_millis(10));
}

pub fn run_real() {
    // lint: allow(clock) reason=the one real backoff sleeper; tests inject via run
    run(std::thread::sleep)
}
