//! Fig. 7 — (a) sensitivity to the rate of accessible attacker nodes;
//! (b) sensitivity to the surrogate depth of PEEGA vs. the victim depth.
//!
//! Part (a)'s cells each contain their own attack run, so the whole
//! attack+evaluate unit is fault-isolated and checkpointed
//! (`results/fig7_sensitivity.checkpoint.json`); part (b) shares one
//! poison set across victim depths and skips re-poisoning once every
//! dependent cell is checkpointed.
//!
//! Reproduction targets: (a) GCN accuracy falls as the attacker controls
//! more nodes, and PEEGA ≤ Metattack at equal access; (b) PEEGA_2 is the
//! strongest surrogate depth, PEEGA_1 clearly weaker, and PEEGA_{2,3,4}
//! are competitive with Metattack/MinMax across victim depths.

use bbgnn::prelude::*;
use bbgnn_bench::{
    config::ExpConfig,
    fault::{CellValue, FaultRunner},
    report::Table,
};

fn gcn_acc_with_layers(g: &Graph, layers: usize, runs: usize, seed: u64) -> MeanStd {
    let accs: Vec<f64> = (0..runs)
        .map(|r| {
            let cfg = TrainConfig {
                seed: seed + r as u64,
                ..Default::default()
            };
            let mut gcn = Gcn::new(vec![16; layers.saturating_sub(1)], cfg);
            gcn.fit(g);
            gcn.test_accuracy(g)
        })
        .collect();
    MeanStd::of(&accs)
}

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig7_sensitivity"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);
    let mut harness = FaultRunner::new(&cfg, "fig7_sensitivity");

    // ---- (a) attacker-node rate sweep ------------------------------------
    println!("\n--- Fig 7(a): accessible-node rate sweep (GCN victim) ---\n");
    let mut table_a = Table::new(&["node rate", "GCN+P", "GCN+M"]);
    for &node_rate in &[0.1, 0.25, 0.5, 0.75, 1.0] {
        let subset = if node_rate >= 1.0 {
            AttackerNodes::All
        } else {
            AttackerNodes::random_subset(g.num_nodes(), node_rate, cfg.seed)
        };
        let acc_p = harness.cell(&format!("a/nodes{node_rate}/PEEGA"), cfg.seed, |seed| {
            let mut peega = Peega::new(PeegaConfig {
                rate: cfg.rate,
                attacker_nodes: subset.clone(),
                ..Default::default()
            });
            let acc = gcn_acc_with_layers(&peega.attack(&g).poisoned, 2, cfg.runs, seed);
            Ok(CellValue::clean(acc.to_string()))
        });
        let acc_m = harness.cell(&format!("a/nodes{node_rate}/Metattack"), cfg.seed, |seed| {
            let mut meta = Metattack::new(MetattackConfig {
                rate: cfg.rate,
                retrain_every: 5,
                attacker_nodes: subset.clone(),
                ..Default::default()
            });
            let acc = gcn_acc_with_layers(&meta.attack(&g).poisoned, 2, cfg.runs, seed);
            Ok(CellValue::clean(acc.to_string()))
        });
        table_a.push_row(vec![format!("{node_rate}"), acc_p, acc_m]);
        eprintln!("[node rate {node_rate} done]");
    }
    table_a.emit(&cfg.out_dir, "fig7a_attacker_nodes");

    // ---- (b) surrogate depth vs victim depth ------------------------------
    println!("\n--- Fig 7(b): PEEGA_l surrogate depth vs GCN victim depth ---\n");
    let attacker_names: Vec<String> = (1..=4)
        .map(|l| format!("PEEGA_{l}"))
        .chain(["Metattack".to_string(), "MinMax".to_string()])
        .collect();
    let mut headers = vec!["victim layers".to_string()];
    headers.extend(attacker_names.iter().cloned());
    let mut table_b = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let part_b_done = (2..=4).all(|layers| {
        attacker_names
            .iter()
            .all(|n| harness.is_done(&format!("b/layers{layers}/{n}")))
    });
    // Poison once per attacker variant (skipped entirely on a completed
    // resume — the clean graph stands in and no cell evaluates it).
    let poisons: Vec<(String, Graph)> = if part_b_done {
        attacker_names
            .iter()
            .map(|n| (n.clone(), g.clone()))
            .collect()
    } else {
        let mut poisons: Vec<(String, Graph)> = (1..=4)
            .map(|l| {
                let mut atk = Peega::new(PeegaConfig {
                    rate: cfg.rate,
                    hops: l,
                    ..Default::default()
                });
                (format!("PEEGA_{l}"), atk.attack(&g).poisoned)
            })
            .collect();
        let mut meta = Metattack::new(MetattackConfig {
            rate: cfg.rate,
            retrain_every: 5,
            ..Default::default()
        });
        poisons.push(("Metattack".to_string(), meta.attack(&g).poisoned));
        let mut minmax = MinMaxAttack::new(MinMaxConfig {
            rate: cfg.rate,
            ..Default::default()
        });
        poisons.push(("MinMax".to_string(), minmax.attack(&g).poisoned));
        poisons
    };

    for victim_layers in 2..=4 {
        let mut cells = vec![victim_layers.to_string()];
        for (name, poisoned) in &poisons {
            cells.push(harness.cell(
                &format!("b/layers{victim_layers}/{name}"),
                cfg.seed,
                |seed| {
                    let acc = gcn_acc_with_layers(poisoned, victim_layers, cfg.runs, seed);
                    Ok(CellValue::clean(acc.to_string()))
                },
            ));
        }
        table_b.push_row(cells);
        eprintln!("[victim depth {victim_layers} done]");
    }
    table_b.emit(&cfg.out_dir, "fig7b_layer_sweep");
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper: more accessible nodes = stronger attack; PEEGA_2 is the best depth.");
}
