//! Synthetic dataset generator calibrated to the paper's datasets.
//!
//! The generator is a degree-free stochastic block model driven by a target
//! edge count and a target homophily level, with class-conditional binary
//! features: each class owns a block of "topic" dimensions and each node
//! activates a fixed number of bits, mostly from its own class block. This
//! reproduces the two structural properties every mechanism in the paper
//! depends on — label homophily of the topology (Fig. 1) and
//! label-feature correlation (the basis of GNAT's feature graph and
//! GCN-Jaccard) — without shipping the original binary datasets.

use crate::splits::Split;
use crate::Graph;
use bbgnn_errors::{BbgnnError, BbgnnResult};
use bbgnn_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the class-conditional SBM + feature generator.
#[derive(Clone, Debug, PartialEq)]
pub struct SbmParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of undirected edges.
    pub edges: usize,
    /// Number of classes.
    pub classes: usize,
    /// Target edge homophily (fraction of same-label edges), in `[0, 1]`.
    pub homophily: f64,
    /// Feature dimensionality; `0` means identity features (Polblogs).
    pub feature_dim: usize,
    /// Active feature bits per node (ignored for identity features).
    pub active_features: usize,
    /// Probability that an active bit is drawn from the node's own class
    /// block rather than uniformly (feature-label correlation strength).
    pub feature_purity: f64,
    /// Train fraction of the split.
    pub train_frac: f64,
    /// Valid fraction of the split.
    pub valid_frac: f64,
}

impl SbmParams {
    /// Generates a graph, deterministic in `seed`.
    ///
    /// # Panics
    /// Panics on degenerate parameters (no nodes, more edges than pairs,
    /// fractions outside `(0, 1)`); [`SbmParams::try_generate`] reports
    /// them as errors instead.
    pub fn generate(&self, seed: u64) -> Graph {
        self.try_generate(seed)
            // lint: allow(panic) reason=documented infallible facade — try_generate is the recoverable path
            .unwrap_or_else(|e| panic!("SbmParams::generate: {e}"))
    }

    /// Fallible [`SbmParams::generate`]: degenerate parameters come back as
    /// [`BbgnnError::InvalidConfig`] naming the parameter, and the generated
    /// graph passes the [`validation`](crate::validate) contract before it
    /// is returned.
    pub fn try_generate(&self, seed: u64) -> BbgnnResult<Graph> {
        let invalid = |what: &str, message: String| BbgnnError::InvalidConfig {
            what: format!("SbmParams.{what}"),
            message,
        };
        if self.nodes < 2 {
            return Err(invalid(
                "nodes",
                format!("need at least two nodes, got {}", self.nodes),
            ));
        }
        if self.classes < 1 {
            return Err(invalid("classes", "need at least one class".to_string()));
        }
        if self.edges > self.nodes * (self.nodes - 1) / 2 {
            return Err(invalid(
                "edges",
                format!(
                    "{} edges exceed the {}-node pair count",
                    self.edges, self.nodes
                ),
            ));
        }
        if !(0.0..=1.0).contains(&self.homophily) {
            return Err(invalid(
                "homophily",
                format!("must be in [0, 1], got {}", self.homophily),
            ));
        }
        if !(self.train_frac > 0.0 && self.valid_frac > 0.0)
            || self.train_frac + self.valid_frac >= 1.0
        {
            return Err(invalid(
                "train_frac/valid_frac",
                format!(
                    "fractions ({}, {}) must be positive and leave room for test",
                    self.train_frac, self.valid_frac
                ),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.nodes;
        let k = self.classes;

        // Balanced label assignment, then shuffled so class id is not
        // correlated with node id.
        let mut labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            labels.swap(i, j);
        }
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (v, &y) in labels.iter().enumerate() {
            by_class[y].push(v);
        }

        // Edge sampling: with probability `homophily` pick a same-label
        // pair, otherwise a cross-label pair. Rejection-sample duplicates.
        let mut g_edges: Vec<(usize, usize)> = Vec::with_capacity(self.edges);
        let mut seen = std::collections::HashSet::with_capacity(self.edges * 2);
        let mut guard = 0usize;
        let max_attempts = self.edges * 200 + 10_000;
        while g_edges.len() < self.edges && guard < max_attempts {
            guard += 1;
            let (u, v) = if k > 1 && rng.gen::<f64>() >= self.homophily {
                // Cross-label pair.
                let cu = rng.gen_range(0..k);
                let mut cv = rng.gen_range(0..k - 1);
                if cv >= cu {
                    cv += 1;
                }
                let u = by_class[cu][rng.gen_range(0..by_class[cu].len())];
                let v = by_class[cv][rng.gen_range(0..by_class[cv].len())];
                (u, v)
            } else {
                // Same-label pair.
                let c = rng.gen_range(0..k);
                let members = &by_class[c];
                if members.len() < 2 {
                    continue;
                }
                let a = rng.gen_range(0..members.len());
                let mut b = rng.gen_range(0..members.len() - 1);
                if b >= a {
                    b += 1;
                }
                (members[a], members[b])
            };
            let key = (u.min(v), u.max(v));
            if key.0 == key.1 || !seen.insert(key) {
                continue;
            }
            g_edges.push(key);
        }

        let features = self.generate_features(&labels, &mut rng);
        let split = Split::random(n, self.train_frac, self.valid_frac, seed.wrapping_add(1));
        Graph::try_new(n, &g_edges, features, labels, k, split)
    }

    fn generate_features(&self, labels: &[usize], rng: &mut StdRng) -> DenseMatrix {
        let n = labels.len();
        if self.feature_dim == 0 {
            // Polblogs-style identity features.
            return DenseMatrix::identity(n);
        }
        let d = self.feature_dim;
        let k = self.classes;
        let block = (d / k).max(1);
        let mut x = DenseMatrix::zeros(n, d);
        for (v, &y) in labels.iter().enumerate() {
            let lo = (y * block).min(d - 1);
            let hi = ((y + 1) * block).min(d).max(lo + 1);
            let mut active = 0usize;
            let mut attempts = 0usize;
            while active < self.active_features.min(d) && attempts < 50 * self.active_features + 100
            {
                attempts += 1;
                let j = if rng.gen::<f64>() < self.feature_purity {
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen_range(0..d)
                };
                if x.get(v, j) == 0.0 {
                    x.set(v, j, 1.0);
                    active += 1;
                }
            }
        }
        x
    }
}

/// Presets calibrated to the paper's Table III statistics, plus the generic
/// custom variant. `scale(f)` shrinks node/edge/feature counts uniformly so
/// the full experiment suite runs quickly on one CPU.
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetSpec {
    /// Cora-like: 2485 nodes, 5069 edges, 7 classes, d_x = 1433,
    /// homophily ≈ 0.81.
    CoraLike,
    /// Citeseer-like: 2110 nodes, 3668 edges, 6 classes, d_x = 3703,
    /// homophily ≈ 0.74.
    CiteseerLike,
    /// Polblogs-like: 1222 nodes, 16714 edges, 2 classes, identity
    /// features, homophily ≈ 0.91.
    PolblogsLike,
    /// Fully custom parameters.
    Custom(SbmParams),
}

impl DatasetSpec {
    /// Canonical experiment datasets in paper order.
    pub fn paper_datasets() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::CoraLike,
            DatasetSpec::CiteseerLike,
            DatasetSpec::PolblogsLike,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::CoraLike => "cora",
            DatasetSpec::CiteseerLike => "citeseer",
            DatasetSpec::PolblogsLike => "polblogs",
            DatasetSpec::Custom(_) => "custom",
        }
    }

    /// Whether the dataset's features are an identity matrix — in that case
    /// feature-similarity defenses (GCN-Jaccard, GNAT's feature graph) are
    /// inapplicable, exactly as the paper notes for Polblogs.
    pub fn identity_features(&self) -> bool {
        matches!(self, DatasetSpec::PolblogsLike)
            || matches!(self, DatasetSpec::Custom(p) if p.feature_dim == 0)
    }

    /// Full-size parameters matching Table III.
    pub fn params(&self) -> SbmParams {
        match self {
            DatasetSpec::CoraLike => SbmParams {
                nodes: 2485,
                edges: 5069,
                classes: 7,
                homophily: 0.81,
                feature_dim: 1433,
                active_features: 14,
                // Calibrated so feature-only accuracy lands near the real
                // Cora's (~55-60%): higher purities make the feature kNN
                // graph a near-perfect class oracle, which real bag-of-
                // words features are not.
                feature_purity: 0.34,
                train_frac: 0.1,
                valid_frac: 0.1,
            },
            DatasetSpec::CiteseerLike => SbmParams {
                nodes: 2110,
                edges: 3668,
                classes: 6,
                homophily: 0.74,
                feature_dim: 3703,
                active_features: 28,
                // Citeseer needs slightly stronger features than Cora: at
                // lower purity its very sparse topology (440 scaled edges)
                // flips the attack's sign entirely (added edges help
                // propagation more than cross-label noise hurts).
                feature_purity: 0.42,
                train_frac: 0.1,
                valid_frac: 0.1,
            },
            DatasetSpec::PolblogsLike => SbmParams {
                nodes: 1222,
                edges: 16714,
                classes: 2,
                homophily: 0.91,
                feature_dim: 0,
                active_features: 0,
                feature_purity: 1.0,
                train_frac: 0.1,
                valid_frac: 0.1,
            },
            DatasetSpec::Custom(p) => p.clone(),
        }
    }

    /// Parameters shrunk by `factor ∈ (0, 1]`: node, edge, and feature
    /// counts scale linearly (with sane floors) while class count,
    /// homophily, and split fractions are preserved.
    pub fn scaled_params(&self, factor: f64) -> SbmParams {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let p = self.params();
        let nodes = ((p.nodes as f64 * factor) as usize).max(p.classes * 8);
        let max_edges = nodes * (nodes - 1) / 2;
        let edges = ((p.edges as f64 * factor) as usize).clamp(nodes, max_edges);
        let feature_dim = if p.feature_dim == 0 {
            0
        } else {
            ((p.feature_dim as f64 * factor) as usize).max(p.classes * 8)
        };
        let active_features = if feature_dim == 0 {
            0
        } else {
            p.active_features.min(feature_dim / p.classes).max(4)
        };
        SbmParams {
            nodes,
            edges,
            feature_dim,
            active_features,
            ..p
        }
    }

    /// Generates the dataset at the given scale, deterministic in `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Graph {
        self.scaled_params(scale).generate(seed)
    }

    /// Fallible [`DatasetSpec::generate`]: a bad scale factor or degenerate
    /// derived parameters come back as
    /// [`BbgnnError::InvalidConfig`] instead of a panic.
    pub fn try_generate(&self, scale: f64, seed: u64) -> BbgnnResult<Graph> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(BbgnnError::InvalidConfig {
                what: "DatasetSpec scale".to_string(),
                message: format!("scale factor must be in (0, 1], got {scale}"),
            });
        }
        self.scaled_params(scale).try_generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::edge_homophily;

    #[test]
    fn generator_hits_target_sizes() {
        let p = SbmParams {
            nodes: 300,
            edges: 900,
            classes: 5,
            homophily: 0.8,
            feature_dim: 100,
            active_features: 8,
            feature_purity: 0.8,
            train_frac: 0.1,
            valid_frac: 0.1,
        };
        let g = p.generate(1);
        assert_eq!(g.num_nodes(), 300);
        assert_eq!(g.num_edges(), 900);
        assert_eq!(g.num_classes, 5);
        assert_eq!(g.feature_dim(), 100);
    }

    #[test]
    fn generator_hits_target_homophily() {
        for &h in &[0.6, 0.8, 0.95] {
            let p = SbmParams {
                nodes: 400,
                edges: 1600,
                classes: 4,
                homophily: h,
                feature_dim: 64,
                active_features: 6,
                feature_purity: 0.8,
                train_frac: 0.1,
                valid_frac: 0.1,
            };
            let g = p.generate(2);
            let observed = edge_homophily(&g);
            assert!(
                (observed - h).abs() < 0.06,
                "homophily target {h}, observed {observed}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let p = DatasetSpec::CoraLike.scaled_params(0.1);
        let g1 = p.generate(5);
        let g2 = p.generate(5);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.labels, g2.labels);
        assert_eq!(g1.features, g2.features);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn features_are_binary_and_class_correlated() {
        let p = DatasetSpec::CoraLike.scaled_params(0.15);
        let g = p.generate(3);
        for &v in g.features.as_slice() {
            assert!(v == 0.0 || v == 1.0, "features must be binary");
        }
        // Same-class nodes share more feature bits than cross-class nodes.
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for u in 0..40 {
            for v in (u + 1)..40 {
                let overlap: f64 = g
                    .features
                    .row(u)
                    .iter()
                    .zip(g.features.row(v))
                    .map(|(&a, &b)| a * b)
                    .sum();
                if g.labels[u] == g.labels[v] {
                    same = (same.0 + overlap, same.1 + 1);
                } else {
                    diff = (diff.0 + overlap, diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1 as f64;
        let diff_avg = diff.0 / diff.1 as f64;
        // The purity calibration deliberately keeps features noisy (real
        // bag-of-words features are weak); a modest margin is the contract.
        assert!(
            same_avg > 1.25 * diff_avg,
            "intra-class feature overlap {same_avg} must dominate inter-class {diff_avg}"
        );
    }

    #[test]
    fn polblogs_like_has_identity_features() {
        let g = DatasetSpec::PolblogsLike.generate(0.1, 4);
        assert_eq!(g.feature_dim(), g.num_nodes());
        for i in 0..g.num_nodes() {
            assert_eq!(g.features.get(i, i), 1.0);
        }
        assert_eq!(g.num_classes, 2);
        assert!(edge_homophily(&g) > 0.85);
    }

    #[test]
    fn paper_presets_match_table_iii_at_full_scale() {
        let cora = DatasetSpec::CoraLike.params();
        assert_eq!(
            (cora.nodes, cora.edges, cora.classes, cora.feature_dim),
            (2485, 5069, 7, 1433)
        );
        let citeseer = DatasetSpec::CiteseerLike.params();
        assert_eq!(
            (
                citeseer.nodes,
                citeseer.edges,
                citeseer.classes,
                citeseer.feature_dim
            ),
            (2110, 3668, 6, 3703)
        );
        let pol = DatasetSpec::PolblogsLike.params();
        assert_eq!(
            (pol.nodes, pol.edges, pol.classes, pol.feature_dim),
            (1222, 16714, 2, 0)
        );
    }

    #[test]
    fn try_generate_rejects_degenerate_params() {
        let mut p = DatasetSpec::CoraLike.scaled_params(0.05);
        p.edges = p.nodes * p.nodes; // more edges than pairs
        match p.try_generate(1) {
            Err(bbgnn_errors::BbgnnError::InvalidConfig { what, .. }) => {
                assert_eq!(what, "SbmParams.edges");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert!(DatasetSpec::CoraLike.try_generate(0.0, 1).is_err());
        assert!(DatasetSpec::CoraLike.try_generate(0.05, 1).is_ok());
    }

    #[test]
    fn scaled_split_follows_10_10_80() {
        let g = DatasetSpec::CiteseerLike.generate(0.2, 6);
        let n = g.num_nodes() as f64;
        assert!((g.split.train.len() as f64 / n - 0.1).abs() < 0.02);
        assert!((g.split.valid.len() as f64 / n - 0.1).abs() < 0.02);
        assert!((g.split.test.len() as f64 / n - 0.8).abs() < 0.02);
    }
}
