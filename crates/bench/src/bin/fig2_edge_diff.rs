//! Fig. 2 — edge difference between the poisoned and the original graph
//! under perturbation rate 0.1, broken into Add/Del × Same/Diff.
//!
//! Reproduction target: for every effective attacker, Add+Diff (adding
//! edges between nodes with different labels) dominates the other three
//! bars — the context-blurring insight of Sec. IV-A.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::AttackRow};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig2_edge_diff"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);
    println!(
        "cora-like graph: {} nodes, {} edges, budget δ = {}\n",
        g.num_nodes(),
        g.num_edges(),
        budget_for(&g, cfg.rate)
    );

    let mut table = Table::new(&[
        "attacker",
        "Add+Same",
        "Add+Diff",
        "Del+Same",
        "Del+Diff",
        "feature flips",
    ]);
    for row in AttackRow::paper_rows(cfg.rate).into_iter().skip(1) {
        let (poisoned, result) = row.poison(&g);
        let d = edge_diff_breakdown(&g, &poisoned);
        table.push_row(vec![
            row.name(),
            d.add_same.to_string(),
            d.add_diff.to_string(),
            d.del_same.to_string(),
            d.del_diff.to_string(),
            result.map_or(0, |r| r.feature_flips).to_string(),
        ]);
    }
    // Reference row: the label-aware DICE heuristic produces the Add+Diff /
    // Del+Same pattern by construction.
    let mut dice = Dice::new(DiceConfig {
        rate: cfg.rate,
        ..Default::default()
    });
    let d = edge_diff_breakdown(&g, &dice.attack(&g).poisoned);
    table.push_row(vec![
        "DICE (ref)".to_string(),
        d.add_same.to_string(),
        d.add_diff.to_string(),
        d.del_same.to_string(),
        d.del_diff.to_string(),
        "0".to_string(),
    ]);
    table.emit(&cfg.out_dir, "fig2_edge_diff");
    println!("\npaper: attackers tend to ADD edges between nodes with DIFFERENT labels.");
}
