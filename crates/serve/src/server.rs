//! The `bbgnn-serve` server proper: accept loop, request routing, and the
//! single sequential worker that runs jobs on the scenario stack.
//!
//! ## Threading model
//!
//! Two threads, by design:
//!
//! * the **accept** thread handles one connection at a time — every
//!   endpoint is a table lookup or an enqueue, so request handling is
//!   microseconds and needs no per-connection threads;
//! * the **worker** thread pops the FIFO queue and runs one [`Job`] at a
//!   time. Sequential execution is a feature, not a limitation: jobs
//!   own the process-global supervision state (budgets, cancellation,
//!   fault plans) while they run, and the kernels already spread each
//!   job across all cores — two concurrent jobs would fight over both.
//!
//! ## Per-job supervision
//!
//! The worker gives every job a fresh supervision slate
//! ([`bbgnn_supervise::shutdown`]), installs the job's own budget, and
//! runs it. `DELETE /jobs/:id` on the running job cancels its token *and*
//! raises the process-global cancel (the in-flight training loop only
//! watches global check sites); after the job winds down the worker
//! consumes the delete marker and clears the global flag, so a mid-run
//! cancellation never leaks into the next tenant — and a global cancel
//! that *wasn't* a delete (SIGINT/SIGTERM via the shared handler) drains
//! the server instead.

use crate::http::{self, ReadError, Request};
use crate::state::{JobRecord, Popped, Refused, ServerState};
use bbgnn_linalg::ExecContext;
use bbgnn_scenario::job::{CellResult, Job, JobSpec};
use bbgnn_scenario::json::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the worker waits on the queue before re-checking for
/// drain/cancel conditions.
const WORKER_WAIT: Duration = Duration::from_millis(200);
/// Per-connection read timeout: a stalled client is dropped, the accept
/// loop moves on.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A running server: owns the accept and worker threads.
///
/// Dropping the handle drains and joins both threads ([`shutdown`]
/// semantics), so a test that panics still tears the server down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8787`; port `0` picks a free port —
    /// read it back from [`addr`](Self::addr)) and starts the accept and
    /// worker threads. The queue admits at most `capacity` pending jobs.
    pub fn start(addr: &str, capacity: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(capacity));
        // Progress snapshots read the obs live mirror; the mirror works
        // with or without a trace sink.
        bbgnn_obs::live::enable();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        let worker_state = Arc::clone(&state);
        let worker = std::thread::spawn(move || worker_loop(&worker_state));
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            worker: Some(worker),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains and joins: no new submissions, the running job finishes
    /// (shutdown is graceful, not lossy), queued jobs stay queued forever.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own (`POST /shutdown`, or a
    /// SIGINT/SIGTERM routed through the supervision layer), then joins.
    pub fn wait(mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.stop();
        // The accept thread may be parked in `accept`; a throwaway
        // connection wakes it so it can observe the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        bbgnn_obs::live::disable();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        let Ok(mut stream) = conn else { continue };
        if state.stopping() {
            break; // woken by the shutdown self-connect
        }
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        handle(&mut stream, state);
        if state.stopping() {
            break; // the request just served was POST /shutdown
        }
    }
}

fn handle(stream: &mut TcpStream, state: &Arc<ServerState>) {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        Err(ReadError::TooLarge) => {
            let e = ReadError::TooLarge.to_string();
            return http::write_response(stream, 413, &error_body(&e));
        }
        Err(e) => return http::write_response(stream, 400, &error_body(&e.to_string())),
    };
    let _span = bbgnn_obs::span!(
        "serve/request",
        method = request.method.as_str(),
        path = request.path.as_str()
    );
    let (status, body) = route(state, &request);
    http::write_response(stream, status, &body);
}

fn error_body(message: &str) -> String {
    Json::object([("error".to_string(), Json::string(message))]).to_pretty()
}

/// Routes one request to its handler; returns `(status, json body)`.
fn route(state: &Arc<ServerState>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (
            200,
            Json::object([
                ("ok".to_string(), Json::Bool(true)),
                (
                    "queue_depth".to_string(),
                    Json::number_usize(state.queue_depth()),
                ),
                ("capacity".to_string(), Json::number_usize(state.capacity())),
            ])
            .to_pretty(),
        ),
        ("GET", "/jobs") => (200, state.jobs_json().to_pretty()),
        ("POST", "/jobs") => submit(state, &request.body),
        ("POST", "/shutdown") => {
            state.stop();
            (
                200,
                Json::object([("ok".to_string(), Json::Bool(true))]).to_pretty(),
            )
        }
        (method, path) => match (method, path.strip_prefix("/jobs/")) {
            (_, None) => (404, error_body(&format!("no such endpoint {path}"))),
            (method, Some(tail)) => match tail.parse::<u64>() {
                Err(_) => (404, error_body(&format!("bad job id {tail:?}"))),
                Ok(id) => match method {
                    "GET" => match state.job_json(id) {
                        Some(doc) => (200, doc.to_pretty()),
                        None => (404, error_body(&format!("no job {id}"))),
                    },
                    "DELETE" => match state.cancel(id) {
                        Some(new_state) => (
                            200,
                            Json::object([
                                ("id".to_string(), Json::number_u64(id)),
                                ("state".to_string(), Json::string(new_state)),
                            ])
                            .to_pretty(),
                        ),
                        None => (404, error_body(&format!("no job {id}"))),
                    },
                    _ => (405, error_body("use GET or DELETE on /jobs/:id")),
                },
            },
        },
    }
}

fn submit(state: &Arc<ServerState>, body: &str) -> (u16, String) {
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    match state.submit(spec.clone()) {
        Ok(id) => (
            200,
            Json::object([
                ("id".to_string(), Json::number_u64(id)),
                ("key".to_string(), Json::string(spec.cell_key())),
                ("fingerprint".to_string(), Json::string(spec.fingerprint())),
            ])
            .to_pretty(),
        ),
        Err(Refused::Invalid(message)) => (400, error_body(&message)),
        Err(Refused::QueueFull) => {
            bbgnn_obs::counter("serve/jobs_rejected", 1);
            (
                429,
                error_body(&format!(
                    "queue full ({} pending); retry after a job finishes",
                    state.capacity()
                )),
            )
        }
        Err(Refused::Stopping) => {
            bbgnn_obs::counter("serve/jobs_rejected", 1);
            (503, error_body("server is draining"))
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        // A process-global cancel that survives between jobs was not a
        // DELETE (those are consumed in `run_one`): it is the shared
        // SIGINT/SIGTERM handler, so drain the server.
        if bbgnn_supervise::cancel_requested() {
            state.stop();
        }
        match state.next_job(WORKER_WAIT) {
            Popped::Stop => break,
            Popped::Idle => continue,
            Popped::Work(id, job) => run_one(state, id, *job),
        }
    }
}

/// Runs one job: fresh supervision slate, store-warm replay when an
/// identical completed spec is recorded, otherwise a full [`Job::run`]
/// with the job's own budget installed.
fn run_one(state: &ServerState, id: u64, job: Job) {
    bbgnn_supervise::shutdown();
    let spec = job.spec().clone();
    let warm = replay(&spec, &job);
    let (result, warm) = match warm {
        Some(result) => (result, true),
        None => {
            if let Some(budget) = job.budget() {
                bbgnn_supervise::install_budget(&budget);
            }
            let ctx = ExecContext::with_threads(spec.threads);
            let result = job.run(&ctx);
            if let Some(record) = JobRecord::from_result(&result) {
                bbgnn_store::publish(&JobRecord::key_for(&spec), &record);
            }
            (result, false)
        }
    };
    state.finish(id, result, warm);
    if state.take_delete_request(id) {
        // The global cancel belonged to this job's DELETE; a fresh slate
        // keeps it from draining the server or leaking into the next job.
        bbgnn_supervise::shutdown();
    }
    // Push span/counter aggregates to the trace sink (CI greps it) and
    // fold them into the live mirror for progress snapshots.
    bbgnn_obs::flush();
}

/// Store-warm path: a recorded result for this exact fingerprint, if the
/// replay rules admit it (see [`JobRecord::replayable_for`]).
fn replay(spec: &JobSpec, job: &Job) -> Option<CellResult> {
    let record: JobRecord = bbgnn_store::lookup(&JobRecord::key_for(spec))?;
    if !record.replayable_for(spec) {
        return None;
    }
    Some(CellResult {
        key: job.key().to_string(),
        value: record.value.clone(),
        outcome: record.outcome_enum(),
        attempts: record.attempts as usize,
        detail: None,
        artifacts: record.artifacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// These tests mutate process-global state (supervision slates, the
    /// store, the obs live mirror); serialize them.
    static SERVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = SERVE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bbgnn_supervise::shutdown();
        guard
    }

    /// Minimal HTTP client: one request, one response.
    fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {raw:?}"));
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get_field<'a>(body: &'a str, field: &str) -> &'a str {
        let marker = format!("\"{field}\": ");
        let start = body
            .find(&marker)
            .unwrap_or_else(|| panic!("no {field} in {body}"))
            + marker.len();
        let rest = &body[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '\n']).unwrap_or(rest.len());
        &rest[..end]
    }

    fn poll_until(addr: SocketAddr, id: &str, states: &[&str]) -> String {
        for _ in 0..2400 {
            let (status, body) = call(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "{body}");
            if states.contains(&get_field(&body, "state")) {
                return body;
            }
            // lint: allow(clock) reason=test poll interval against a live server, not experiment code
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never reached {states:?}");
    }

    const SMALL: &str =
        r#"{"dataset": "cora", "eval": {"kind": "accuracy", "runs": 1, "scale": 0.05}}"#;

    #[test]
    fn end_to_end_submit_poll_warm_replay_and_errors() {
        let _guard = locked();
        let store_dir = std::env::temp_dir().join("bbgnn_serve_test_store");
        let _ = std::fs::remove_dir_all(&store_dir);
        bbgnn_store::init_to_path(store_dir.to_str().unwrap()).unwrap();
        let server = Server::start("127.0.0.1:0", 4).unwrap();
        let addr = server.addr();

        // The CLI-equivalent expected value, computed in-process.
        let expected = Job::new(JobSpec::parse(SMALL).unwrap())
            .unwrap()
            .run(&ExecContext::from_env());
        assert_eq!(expected.key, "cora/Clean/GCN");

        // Malformed and invalid submissions bounce with named errors.
        let (status, body) = call(addr, "POST", "/jobs", "{not json");
        assert_eq!(status, 400, "{body}");
        let (status, body) = call(
            addr,
            "POST",
            "/jobs",
            r#"{"dataset": "cora", "defense": "Vaccine"}"#,
        );
        assert_eq!(status, 400);
        assert!(body.contains("defense"), "{body}");
        let (status, _) = call(addr, "GET", "/jobs/999", "");
        assert_eq!(status, 404);
        let (status, _) = call(addr, "PUT", "/jobs/1", "");
        assert_eq!(status, 405);

        // Cold run over HTTP matches the in-process run byte for byte.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let id = get_field(&body, "id").to_string();
        let done = poll_until(addr, &id, &["done"]);
        assert_eq!(get_field(&done, "value"), expected.value);
        assert_eq!(get_field(&done, "warm"), "false");

        // Identical resubmission replays from the store: no training run.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let id2 = get_field(&body, "id").to_string();
        assert_ne!(id2, id);
        let done2 = poll_until(addr, &id2, &["done"]);
        assert_eq!(get_field(&done2, "value"), expected.value);
        assert_eq!(get_field(&done2, "warm"), "true", "{done2}");

        let (status, body) = call(addr, "GET", "/health", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\": true"), "{body}");
        server.shutdown();
        bbgnn_store::shutdown();
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn delete_cancels_a_running_job_and_the_server_survives() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 1).unwrap();
        let addr = server.addr();

        // A deliberately heavy job so the DELETE lands mid-run.
        let heavy =
            r#"{"dataset": "cora", "defense": "Pro-GNN", "eval": {"runs": 3, "scale": 0.3}}"#;
        let (status, body) = call(addr, "POST", "/jobs", heavy);
        assert_eq!(status, 200, "{body}");
        let heavy_id = get_field(&body, "id").to_string();
        poll_until(addr, &heavy_id, &["running"]);

        // With the worker busy and capacity 1, a second job queues and a
        // third is refused.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let queued_id = get_field(&body, "id").to_string();
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 429, "{body}");

        // DELETE the running job: acknowledged as `cancelling`, resolves
        // to `cancelled`, and the queued job still runs to completion —
        // the global cancel the DELETE raised must not leak.
        let (status, body) = call(addr, "DELETE", &format!("/jobs/{heavy_id}"), "");
        assert_eq!(status, 200);
        assert_eq!(get_field(&body, "state"), "cancelling", "{body}");
        let gone = poll_until(addr, &heavy_id, &["cancelled"]);
        assert_eq!(get_field(&gone, "value"), bbgnn_scenario::job::FAILED_CELL);
        let done = poll_until(addr, &queued_id, &["done"]);
        assert_eq!(get_field(&done, "outcome"), "ok", "{done}");
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let (status, _) = call(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        server.wait();
    }
}
