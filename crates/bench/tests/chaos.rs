//! Chaos suite (DESIGN.md §11): every fault site lands in its intended
//! error-taxonomy variant, injected failures never hang or corrupt state,
//! and an interrupted-then-resumed sweep is byte-identical to an
//! uninterrupted one.
//!
//! Fault plans and cancellation are process-global, so every test holds
//! one lock and resets supervision on entry and exit.

use bbgnn::prelude::*;
use bbgnn_bench::config::ExpConfig;
use bbgnn_bench::fault::{CellValue, FaultRunner, FAILED_CELL};
use bbgnn_supervise::fault;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    bbgnn_supervise::shutdown();
    bbgnn::store::shutdown();
    guard
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bbgnn-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_cfg(out: &std::path::Path) -> ExpConfig {
    ExpConfig {
        out_dir: out.display().to_string(),
        ..ExpConfig::default()
    }
}

fn fast_policy(retries: usize) -> RetryPolicy {
    RetryPolicy {
        max_retries: retries,
        backoff_base: std::time::Duration::ZERO,
        backoff_max: std::time::Duration::ZERO,
    }
}

// --- fault/dataset_io ----------------------------------------------------

#[test]
fn dataset_io_fault_is_a_retryable_io_error_and_backoff_recovers() {
    let _g = locked();
    let dir = tmp_dir("dataset-io");
    let g = DatasetSpec::CoraLike.generate(0.03, 1);
    bbgnn::graph::datasets::io::save(&g, &dir).unwrap();

    fault::install("7:fault/dataset_io").unwrap();
    let err = bbgnn::graph::datasets::io::load(&dir).unwrap_err();
    assert!(
        matches!(err, BbgnnError::DatasetIo { .. }),
        "injected IO fault must land as DatasetIo, got {err}"
    );
    assert!(err.is_retryable() && !err.is_supervision_stop());

    // The one-shot plan is spent, so the retry policy recovers on attempt
    // 2 — through the injectable sleeper, never a real sleep.
    fault::install("7:fault/dataset_io").unwrap();
    let mut slept = Vec::new();
    let (loaded, attempts) = RetryPolicy::default()
        .run_with_sleep(
            0,
            |_, _| bbgnn::graph::datasets::io::load(&dir),
            |d| slept.push(d),
        )
        .unwrap();
    assert_eq!(attempts, 2);
    assert_eq!(slept.len(), 1, "DatasetIo retries back off once per retry");
    assert_eq!(loaded.num_nodes(), g.num_nodes());
    bbgnn_supervise::shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// --- fault/kernel_nan ----------------------------------------------------

#[test]
fn kernel_nan_fault_poisons_the_same_entry_on_every_replay() {
    let _g = locked();
    let pool = ThreadPool::new(2);
    let a = DenseMatrix::filled(128, 128, 0.25);
    let b = DenseMatrix::filled(128, 128, 0.5);

    let nan_positions = |plan: Option<&str>| -> Vec<usize> {
        if let Some(spec) = plan {
            fault::install(spec).unwrap();
        }
        let mut out = DenseMatrix::zeros(128, 128);
        bbgnn::linalg::kernels::matmul_into(&a, &b, &mut out, &pool);
        bbgnn_supervise::shutdown();
        out.as_slice()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_nan())
            .map(|(i, _)| i)
            .collect()
    };

    let first = nan_positions(Some("42:fault/kernel_nan"));
    assert_eq!(first.len(), 1, "exactly one poisoned entry");
    let replay = nan_positions(Some("42:fault/kernel_nan"));
    assert_eq!(first, replay, "the shot seed pins the poisoned entry");
    assert!(nan_positions(None).is_empty(), "no plan, no poison");
}

// --- fault/pool_panic ----------------------------------------------------

#[test]
fn pool_worker_panic_surfaces_as_a_caught_panic_never_a_hang() {
    let _g = locked();
    fault::install("3:fault/pool_panic").unwrap();
    let pool = ThreadPool::new(2);
    let a = DenseMatrix::filled(128, 128, 1.0);
    let b = DenseMatrix::filled(128, 128, 1.0);
    let mut out = DenseMatrix::zeros(128, 128);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        bbgnn::linalg::kernels::matmul_into(&a, &b, &mut out, &pool);
    }))
    .expect_err("the injected worker panic must propagate to the caller");
    // `thread::scope` may re-wrap the worker's payload ("a scoped thread
    // panicked"); the contract is propagation-not-hang, so accept either
    // the original message or the scope wrapper.
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("pool worker panic") || msg.contains("scoped thread panicked"),
        "payload: {msg:?}"
    );
    bbgnn_supervise::shutdown();
}

#[test]
fn pool_worker_panic_lands_as_experiment_aborted_and_the_cell_retries() {
    let _g = locked();
    let dir = tmp_dir("pool-panic-cell");
    let cfg = test_cfg(&dir);
    fault::install("3:fault/pool_panic").unwrap();
    let mut r = FaultRunner::with_policy(&cfg, "chaos", fast_policy(2));
    let pool = ThreadPool::new(2);
    let v = r.cell("mm", 0, |_| {
        let a = DenseMatrix::filled(128, 128, 1.0);
        let b = DenseMatrix::filled(128, 128, 1.0);
        let mut out = DenseMatrix::zeros(128, 128);
        bbgnn::linalg::kernels::matmul_into(&a, &b, &mut out, &pool);
        Ok(CellValue::clean(format!("{}", out.get(0, 0))))
    });
    // Attempt 1 hits the one-shot panic plan (caught at the cell boundary
    // as ExperimentAborted); attempt 2 runs clean.
    assert_eq!(v, "128");
    assert_eq!(r.stats().retried, 1);
    assert_eq!(r.stats().failed, 0);
    bbgnn_supervise::shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// --- fault/store_corrupt, fault/store_short_write ------------------------

#[test]
fn corrupt_and_short_store_writes_degrade_to_misses_never_wrong_data() {
    let _g = locked();
    for (site, tag) in [
        ("fault/store_corrupt", "corrupt"),
        ("fault/store_short_write", "short"),
    ] {
        let root = tmp_dir(&format!("store-{tag}"));
        let store = bbgnn::store::Store::open(&root).unwrap();
        let key = bbgnn::store::Key::new("dense").field("seed", 7);
        let value = DenseMatrix::filled(4, 4, 3.5);

        fault::install(&format!("11:{site}")).unwrap();
        store.put(&key, &value).unwrap();
        // The damaged image must read back as a miss (with a warning), not
        // as data and not as a panic.
        assert!(
            store.get::<DenseMatrix>(&key).is_none(),
            "{site}: damaged artifact must miss"
        );
        bbgnn_supervise::shutdown();

        // Recompute-and-re-put heals the slot.
        store.put(&key, &value).unwrap();
        let back: DenseMatrix = store.get(&key).expect("clean re-put must hit");
        assert_eq!(back.as_slice(), value.as_slice());
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn crashed_writer_tmp_litter_is_swept_by_gc_and_never_read_as_valid() {
    let _g = locked();
    let root = tmp_dir("store-litter");
    let store = bbgnn::store::Store::open(&root).unwrap();
    let key = bbgnn::store::Key::new("dense").field("seed", 1);
    store.put(&key, &DenseMatrix::filled(2, 2, 1.0)).unwrap();

    // A SIGKILLed writer leaves exactly its staging file behind: the
    // rename never happened, so no final-named artifact was touched.
    let litter = root.join(".tmp-99999-0");
    std::fs::write(&litter, b"partial artifact image from a dead writer").unwrap();

    // The litter is invisible to reads and to verify.
    assert!(store.get::<DenseMatrix>(&key).is_some());
    let report = bbgnn::store::verify(&root).unwrap();
    assert_eq!(report.ok, 1);
    assert!(report.corrupt.is_empty(), "tmp litter is not an artifact");

    // gc requires a liveness root, keeps the referenced artifact, and
    // sweeps the litter.
    let live_dir = tmp_dir("store-litter-live");
    std::fs::write(
        live_dir.join("cells.json"),
        format!("{{\"artifacts\":[\"{}\"]}}", key.filename()),
    )
    .unwrap();
    assert!(
        bbgnn::store::gc(&root, &[], false).is_err(),
        "gc never runs blind"
    );
    let gc = bbgnn::store::gc(&root, std::slice::from_ref(&live_dir), false).unwrap();
    assert_eq!(gc.live, vec![key.filename()]);
    assert!(!litter.exists(), "gc sweeps .tmp-* staging litter");
    assert!(
        store.get::<DenseMatrix>(&key).is_some(),
        "live artifact survives gc"
    );
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&live_dir);
}

// --- budgets degrade training to best-so-far ------------------------------

#[test]
fn epoch_budget_interrupts_training_into_a_degraded_cell_value() {
    let _g = locked();
    let g = DatasetSpec::CoraLike.generate(0.03, 2);
    bbgnn_supervise::install_budget(&RunBudget {
        epochs: Some(3),
        ..Default::default()
    });
    let (stats, health) = bbgnn_bench::runner::evaluate_defender_checked(
        &bbgnn::registry::DefenderKind::Gcn,
        &g,
        2,
        0,
    );
    assert!(health.interrupted_runs > 0, "epoch budget must interrupt");
    assert!(
        health.is_degraded(),
        "interrupted runs tag the cell degraded"
    );
    assert!(
        stats.mean.is_finite(),
        "best-so-far snapshot still evaluates"
    );
    bbgnn_supervise::shutdown();
}

// --- interrupted sweep resumes byte-identical ------------------------------

#[test]
fn cancelled_sweep_resumed_without_the_stop_is_byte_identical() {
    let _g = locked();
    let keys = ["a", "b", "c", "d"];
    let run_sweep = |cfg: &ExpConfig, cancel_after: Option<usize>| -> Vec<String> {
        let mut r = FaultRunner::with_policy(cfg, "sweep", fast_policy(1));
        let mut values = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            values.push(r.cell(key, 9, |seed| Ok(CellValue::clean(format!("{key}:{seed}")))));
            if cancel_after == Some(i + 1) {
                bbgnn_supervise::request_cancel();
            }
        }
        values
    };

    // Reference: one uninterrupted run.
    let dir_a = tmp_dir("sweep-ref");
    let full = run_sweep(&test_cfg(&dir_a), None);
    assert!(full.iter().all(|v| v != FAILED_CELL));
    let ckpt_a = std::fs::read(dir_a.join("sweep.checkpoint.json")).unwrap();

    // Interrupted: cancel lands after cell 2; cells 3–4 are skipped and
    // deliberately NOT checkpointed.
    let dir_b = tmp_dir("sweep-cut");
    let cut = run_sweep(&test_cfg(&dir_b), Some(2));
    assert_eq!(&cut[..2], &full[..2]);
    assert_eq!(
        &cut[2..],
        &[FAILED_CELL.to_string(), FAILED_CELL.to_string()]
    );
    bbgnn_supervise::shutdown();

    // Resume without the stop: cached cells replay, skipped cells
    // recompute, and the final checkpoint is byte-identical to the
    // uninterrupted run's.
    let resumed = run_sweep(&test_cfg(&dir_b), None);
    assert_eq!(resumed, full);
    let ckpt_b = std::fs::read(dir_b.join("sweep.checkpoint.json")).unwrap();
    assert_eq!(ckpt_a, ckpt_b, "resumed checkpoint must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn cancel_mid_cell_truncated_value_is_discarded_and_resume_matches() {
    let _g = locked();
    let keys = ["a", "b", "c"];
    let full_sweep = |cfg: &ExpConfig| -> Vec<String> {
        let mut r = FaultRunner::with_policy(cfg, "midcell", fast_policy(1));
        keys.iter()
            .map(|key| r.cell(key, 3, |seed| Ok(CellValue::clean(format!("{key}:{seed}")))))
            .collect()
    };

    // Reference: one uninterrupted run.
    let dir_a = tmp_dir("midcell-ref");
    let full = full_sweep(&test_cfg(&dir_a));
    let ckpt_a = std::fs::read(dir_a.join("midcell.checkpoint.json")).unwrap();

    // Interrupted: the cancel lands while cell b is in flight (the SIGINT
    // scenario), so b hands back a truncated best-so-far value flagged
    // degraded. It must be discarded, not checkpointed — else the resume
    // below would replay the truncated value verbatim.
    let dir_b = tmp_dir("midcell-cut");
    {
        let cfg = test_cfg(&dir_b);
        let mut r = FaultRunner::with_policy(&cfg, "midcell", fast_policy(1));
        let a = r.cell("a", 3, |s| Ok(CellValue::clean(format!("a:{s}"))));
        assert_eq!(a, full[0]);
        let b = r.cell("b", 3, |_| {
            bbgnn_supervise::request_cancel();
            Ok(CellValue::degraded("b:truncated"))
        });
        assert_eq!(b, FAILED_CELL, "the truncated value is discarded");
        let c = r.cell("c", 3, |s| Ok(CellValue::clean(format!("c:{s}"))));
        assert_eq!(c, FAILED_CELL, "later cells skip at the entry check");
        assert_eq!(r.stats().skipped, 2);
        assert_eq!(r.stats().degraded, 0);
    }
    bbgnn_supervise::shutdown();

    // Resume without the stop: b and c recompute in full, and the final
    // checkpoint is byte-identical to the uninterrupted run's.
    let resumed = full_sweep(&test_cfg(&dir_b));
    assert_eq!(resumed, full);
    let ckpt_b = std::fs::read(dir_b.join("midcell.checkpoint.json")).unwrap();
    assert_eq!(ckpt_a, ckpt_b, "resumed checkpoint must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
