//! First-order optimizers over plain parameter matrices.
//!
//! Parameters live outside the tape, so optimizers operate on
//! `&mut [DenseMatrix]` aligned with a `&[&DenseMatrix]` gradient slice
//! produced after a backward pass.

use bbgnn_linalg::DenseMatrix;

/// Adam optimizer (Kingma & Ba) with the defaults used by the reference GCN
/// implementations (`lr = 0.01`, `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stabilizer.
    pub eps: f64,
    /// L2 weight-decay coefficient applied to the gradient.
    pub weight_decay: f64,
    m: Vec<DenseMatrix>,
    v: Vec<DenseMatrix>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for a parameter set with the given shapes.
    pub fn new(lr: f64, weight_decay: f64, params: &[DenseMatrix]) -> Self {
        let m = params
            .iter()
            .map(|p| DenseMatrix::zeros(p.rows(), p.cols()))
            .collect();
        let v = params
            .iter()
            .map(|p| DenseMatrix::zeros(p.rows(), p.cols()))
            .collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m,
            v,
            t: 0,
        }
    }

    /// Applies one Adam update. `grads[i]` may be `None` when a parameter
    /// did not participate in the loss (it is then skipped).
    ///
    /// # Panics
    /// Panics if `params` and `grads` lengths differ.
    pub fn step(&mut self, params: &mut [DenseMatrix], grads: &[Option<&DenseMatrix>]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        self.t += 1;
        // powf, not `powi(self.t as i32)`: the `as i32` cast wraps for
        // step counts past i32::MAX, and a negative exponent turns the
        // bias corrections into garbage (≤ 0), flipping the update sign.
        let bc1 = 1.0 - self.beta1.powf(self.t as f64);
        let bc2 = 1.0 - self.beta2.powf(self.t as f64);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let Some(g) = g else { continue };
            let pd = p.as_mut_slice();
            let gd = g.as_slice();
            let md = m.as_mut_slice();
            let vd = v.as_mut_slice();
            for i in 0..pd.len() {
                let grad = gd[i] + self.weight_decay * pd[i];
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * grad;
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * grad * grad;
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                pd[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional weight decay.
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 weight-decay coefficient.
    pub weight_decay: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        Self { lr, weight_decay }
    }

    /// Applies one SGD update; `None` gradients are skipped.
    pub fn step(&self, params: &mut [DenseMatrix], grads: &[Option<&DenseMatrix>]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            let Some(g) = g else { continue };
            let pd = p.as_mut_slice();
            let gd = g.as_slice();
            for i in 0..pd.len() {
                pd[i] -= self.lr * (gd[i] + self.weight_decay * pd[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimizes ||X - T||_F^2 and checks convergence.
    fn quadratic_loss_converges(use_adam: bool) {
        let target = DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let mut params = vec![DenseMatrix::zeros(2, 2)];
        let mut adam = Adam::new(0.1, 0.0, &params);
        let sgd = Sgd::new(0.1, 0.0);
        for _ in 0..300 {
            let mut t = Tape::new();
            let x = t.var(params[0].clone());
            let d = t.sub_const(x, &target);
            let sq = t.hadamard(d, d);
            let loss = t.sum_all(sq);
            t.backward(loss);
            let g = t.grad(x).cloned().unwrap();
            if use_adam {
                adam.step(&mut params, &[Some(&g)]);
            } else {
                sgd.step(&mut params, &[Some(&g)]);
            }
        }
        assert!(params[0].max_abs_diff(&target) < 1e-3);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        quadratic_loss_converges(true);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        quadratic_loss_converges(false);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = vec![DenseMatrix::filled(2, 2, 1.0)];
        let zeros = DenseMatrix::zeros(2, 2);
        let sgd = Sgd::new(0.1, 0.5);
        sgd.step(&mut params, &[Some(&zeros)]);
        assert!((params[0].get(0, 0) - 0.95).abs() < 1e-12);
    }

    /// Regression test for the bias-correction overflow: with the old
    /// `powi(self.t as i32)` the step count wrapped negative past
    /// `i32::MAX`, making `β^t` blow up and the corrections non-positive.
    /// At any huge `t`, `β^t` underflows to 0, so `bc ≈ 1` and a step must
    /// move the parameter by a small finite amount in the right direction.
    #[test]
    fn bias_correction_survives_huge_step_counts() {
        let mut params = vec![DenseMatrix::filled(1, 1, 1.0)];
        let grad = DenseMatrix::filled(1, 1, 1.0);
        let mut adam = Adam::new(0.1, 0.0, &params);
        // Simulate a run that has been stepping for longer than i32::MAX
        // iterations (the cast `t as i32` would yield a negative value).
        adam.t = i32::MAX as u64 + 7;
        adam.step(&mut params, &[Some(&grad)]);
        let p = params[0].get(0, 0);
        assert!(p.is_finite(), "update at huge t must stay finite, got {p}");
        assert!(
            p < 1.0 && p > 0.0,
            "a positive gradient must decrease the parameter sanely, got {p}"
        );
    }

    #[test]
    fn none_gradients_are_skipped() {
        let mut params = vec![DenseMatrix::filled(1, 1, 3.0)];
        let mut adam = Adam::new(0.5, 0.0, &params);
        adam.step(&mut params, &[None]);
        assert_eq!(params[0].get(0, 0), 3.0);
    }
}
