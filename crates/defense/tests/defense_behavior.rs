//! Cross-defender behavioural tests: robustness orderings, purification
//! semantics, and degenerate inputs.

use bbgnn_attack::peega::{Peega, PeegaConfig};
use bbgnn_attack::Attacker;
use bbgnn_defense::gnat::{prune_dissimilar_edges, Gnat, GnatConfig, View};
use bbgnn_defense::jaccard::{GcnJaccard, GcnJaccardConfig};
use bbgnn_defense::rgcn::{Rgcn, RgcnConfig};
use bbgnn_defense::simpgcn::{SimPGcn, SimPGcnConfig};
use bbgnn_defense::svd_defense::{GcnSvd, GcnSvdConfig};
use bbgnn_defense::Defender;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::datasets::DatasetSpec;
use bbgnn_graph::Graph;

fn fast() -> TrainConfig {
    TrainConfig::fast_test()
}

fn poisoned_pair(seed: u64, rate: f64) -> (Graph, Graph) {
    let g = DatasetSpec::CoraLike.generate(0.06, seed);
    let mut atk = Peega::new(PeegaConfig {
        rate,
        ..Default::default()
    });
    let poisoned = atk.attack(&g).poisoned;
    (g, poisoned)
}

#[test]
fn jaccard_threshold_one_removes_almost_everything() {
    let (_, poisoned) = poisoned_pair(501, 0.1);
    let d = GcnJaccard::new(GcnJaccardConfig {
        threshold: 1.01,
        train: fast(),
    });
    let purified = d.purify(&poisoned);
    // Only identical-feature endpoints survive a threshold above 1.
    for (u, v) in purified.edges() {
        assert!(GcnJaccard::jaccard(poisoned.features.row(u), poisoned.features.row(v)) >= 1.0);
    }
}

#[test]
fn jaccard_threshold_zero_keeps_everything() {
    let (_, poisoned) = poisoned_pair(502, 0.1);
    let d = GcnJaccard::new(GcnJaccardConfig {
        threshold: 0.0,
        train: fast(),
    });
    assert_eq!(d.purify(&poisoned).num_edges(), poisoned.num_edges());
}

#[test]
fn jaccard_removes_more_from_poisoned_than_clean() {
    // PEEGA adds cross-label edges whose endpoints share few features, so
    // the same threshold must delete more edges from the poisoned graph.
    let (clean, poisoned) = poisoned_pair(503, 0.2);
    let d = GcnJaccard::new(GcnJaccardConfig {
        threshold: 0.03,
        train: fast(),
    });
    let removed_clean = clean.num_edges() - d.purify(&clean).num_edges();
    let removed_poisoned = poisoned.num_edges() - d.purify(&poisoned).num_edges();
    assert!(
        removed_poisoned > removed_clean,
        "poisoned graph should lose more edges: {removed_poisoned} vs {removed_clean}"
    );
}

#[test]
fn svd_defense_downweights_adversarial_edges() {
    // The actual GCN-SVD claim: scattered adversarial edges are spectrally
    // incoherent, so the rank-k projection assigns them less weight on
    // average than it assigns the clean (community-aligned) edges. A
    // random attack provides the scattered perturbation; PEEGA's
    // concentrated hubs are exactly the case where GCN-SVD struggles
    // (consistent with its weak Table IV showing).
    let clean = DatasetSpec::CoraLike.generate(0.06, 504);
    let poisoned = {
        use bbgnn_attack::random::{RandomAttack, RandomAttackConfig};
        let mut atk = RandomAttack::new(RandomAttackConfig {
            rate: 0.2,
            ..Default::default()
        });
        atk.attack(&clean).poisoned
    };
    let d = GcnSvd::new(GcnSvdConfig {
        rank: 12,
        train: fast(),
        ..Default::default()
    });
    let purified = d.purify(&poisoned).to_dense();
    let mut clean_w = (0.0, 0usize);
    let mut adv_w = (0.0, 0usize);
    for (u, v) in poisoned.edges() {
        let w = purified.get(u, v);
        if clean.has_edge(u, v) {
            clean_w = (clean_w.0 + w, clean_w.1 + 1);
        } else {
            adv_w = (adv_w.0 + w, adv_w.1 + 1);
        }
    }
    assert!(adv_w.1 > 0, "attack added no edges?");
    let clean_avg = clean_w.0 / clean_w.1 as f64;
    let adv_avg = adv_w.0 / adv_w.1 as f64;
    assert!(
        adv_avg < clean_avg,
        "adversarial edges must be down-weighted: adv {adv_avg:.4} vs clean {clean_avg:.4}"
    );
}

#[test]
fn gnat_views_count_matches_config() {
    let (_, poisoned) = poisoned_pair(505, 0.1);
    for views in [
        vec![View::Topology],
        vec![View::Topology, View::Ego],
        vec![View::Topology, View::Feature, View::Ego],
    ] {
        let mut gnat = Gnat::new(GnatConfig {
            views: views.clone(),
            train: fast(),
            ..Default::default()
        });
        gnat.fit(&poisoned);
        // Prediction works regardless of the number of views.
        assert_eq!(gnat.predict(&poisoned).len(), poisoned.num_nodes());
    }
}

#[test]
fn prune_threshold_zero_is_identity() {
    let (_, poisoned) = poisoned_pair(506, 0.1);
    let pruned = prune_dissimilar_edges(&poisoned, 0.0);
    assert_eq!(pruned.num_edges(), poisoned.num_edges());
}

#[test]
fn prune_monotone_in_threshold() {
    let (_, poisoned) = poisoned_pair(507, 0.2);
    let e1 = prune_dissimilar_edges(&poisoned, 0.01).num_edges();
    let e2 = prune_dissimilar_edges(&poisoned, 0.05).num_edges();
    let e3 = prune_dissimilar_edges(&poisoned, 0.2).num_edges();
    assert!(
        e1 >= e2 && e2 >= e3,
        "higher thresholds must remove at least as much"
    );
}

#[test]
fn defenders_expose_stable_names() {
    let names: Vec<String> = vec![
        GcnJaccard::new(GcnJaccardConfig::default()).name(),
        GcnSvd::new(GcnSvdConfig::default()).name(),
        Rgcn::new(RgcnConfig::default()).name(),
        SimPGcn::new(SimPGcnConfig::default()).name(),
        Gnat::new(GnatConfig::default()).name(),
    ];
    assert_eq!(
        names,
        vec!["GCN-Jaccard", "GCN-SVD", "RGCN", "SimPGCN", "GNAT"]
    );
}

#[test]
fn rgcn_trains_on_polblogs_like() {
    let g = DatasetSpec::PolblogsLike.generate(0.08, 508);
    let mut rgcn = Rgcn::new(RgcnConfig {
        train: fast(),
        ..Default::default()
    });
    rgcn.fit(&g);
    assert!(rgcn.test_accuracy(&g) > 0.6);
}

#[test]
fn simpgcn_handles_disconnected_nodes() {
    // Add isolated nodes by generating a sparse graph.
    let g = DatasetSpec::Custom(bbgnn_graph::datasets::SbmParams {
        nodes: 80,
        edges: 60, // fewer edges than nodes: some nodes are isolated
        classes: 2,
        homophily: 0.9,
        feature_dim: 24,
        active_features: 4,
        feature_purity: 0.9,
        train_frac: 0.2,
        valid_frac: 0.2,
    })
    .generate(1.0, 509);
    let mut m = SimPGcn::new(SimPGcnConfig {
        train: fast(),
        ..Default::default()
    });
    m.fit(&g);
    let preds = m.predict(&g);
    assert_eq!(preds.len(), 80);
}

#[test]
fn gnat_handles_star_graph() {
    // Degenerate topology: one hub. k-hop explosion must stay sane.
    let edges: Vec<(usize, usize)> = (1..30).map(|v| (0, v)).collect();
    let g = Graph::new(
        30,
        &edges,
        bbgnn_linalg::DenseMatrix::identity(30),
        (0..30).map(|v| v % 2).collect(),
        2,
        bbgnn_graph::Split::random(30, 0.2, 0.2, 1),
    );
    let mut gnat = Gnat::new(GnatConfig {
        views: vec![View::Topology, View::Ego],
        train: fast(),
        ..Default::default()
    });
    gnat.fit(&g);
    assert_eq!(gnat.predict(&g).len(), 30);
}
