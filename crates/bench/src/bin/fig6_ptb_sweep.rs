//! Fig. 6 — accuracy of GCN, Pro-GNN, and GNAT under Metattack and PEEGA
//! across perturbation rates r ∈ {0, 0.05, 0.1, 0.15, 0.2}, per dataset.
//!
//! Series are named [model]+[attack] as in the paper: GCN+M is a GCN
//! trained on the Metattack poison graph, GNAT+P is GNAT on the PEEGA
//! poison graph, and so on.
//!
//! Cells are scenario [`Job`]s, fault-isolated and checkpointed to
//! `results/fig6_ptb_sweep.checkpoint.json`; a killed sweep resumes from
//! the last completed cell (and skips re-poisoning rates whose cells are
//! all done), reproducing the uninterrupted output byte for byte.
//!
//! Reproduction targets: all series fall as r grows; the GNAT series stay
//! on top; PEEGA's curves sit below Metattack's on Citeseer/Polblogs.

use bbgnn::prelude::*;
use bbgnn::scenario::dataset::paper_specs;
use bbgnn::scenario::job::{EvalKind, EvalSpec, Job, JobSpec};
use bbgnn_bench::{config::ExpConfig, fault::FaultRunner, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig6_ptb_sweep"));
    let specs = match paper_specs(cfg.dataset.as_deref()) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ctx = ExecContext::from_env();
    let mut harness = FaultRunner::new(&cfg, "fig6_ptb_sweep");

    for spec in specs {
        let g = spec.generate(cfg.scale, cfg.seed);
        println!("\n### {} ###\n", spec.name());
        let defenders: Vec<(&str, DefenderKind)> = vec![
            ("GCN", DefenderKind::Gcn),
            (
                "ProGNN",
                DefenderKind::ProGnn(ProGnnConfig {
                    // Reduced outer budget: this bin trains Pro-GNN 30 times
                    // (5 rates x 2 attackers x runs); the full default budget
                    // would dominate the whole suite's wall-clock.
                    outer_epochs: 12,
                    inner_epochs: 4,
                    svd_every: 4,
                    ..Default::default()
                }),
            ),
            (
                "GNAT",
                DefenderKind::Gnat(if spec.identity_features() {
                    GnatConfig::without_feature_view()
                } else {
                    GnatConfig::default()
                }),
            ),
        ];
        let mut headers = vec!["rate".to_string()];
        for (dname, _) in &defenders {
            headers.push(format!("{dname}+M"));
            headers.push(format!("{dname}+P"));
        }
        let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

        for &rate in &[0.0, 0.05, 0.1, 0.15, 0.2] {
            let key_of = |dname: &str, atk: &str| format!("{}/r{rate}/{dname}+{atk}", spec.name());
            let rate_done = defenders
                .iter()
                .all(|(d, _)| harness.is_done(&key_of(d, "M")) && harness.is_done(&key_of(d, "P")));
            let (meta_graph, peega_graph) = if rate == 0.0 || rate_done {
                (g.clone(), g.clone())
            } else {
                let mut meta = Metattack::new(MetattackConfig {
                    rate,
                    retrain_every: 5,
                    ..Default::default()
                });
                let mut peega = Peega::new(PeegaConfig {
                    rate,
                    ..Default::default()
                });
                (meta.attack(&g).poisoned, peega.attack(&g).poisoned)
            };
            let mut cells = vec![format!("{rate}")];
            for (dname, kind) in &defenders {
                for (atk, graph) in [("M", &meta_graph), ("P", &peega_graph)] {
                    let job_spec = JobSpec {
                        dataset: spec.name().to_string(),
                        eval: EvalSpec {
                            kind: EvalKind::Accuracy,
                            runs: cfg.runs,
                            scale: cfg.scale,
                            rate,
                        },
                        seed: cfg.seed,
                        ..JobSpec::default()
                    };
                    // The two poison graphs are shared across the rate's
                    // six cells, so each job takes the prepared graph; the
                    // key override preserves the historical checkpoint
                    // format.
                    let job = Job::from_parts(key_of(dname, atk), job_spec, None, kind.clone());
                    cells.push(harness.job(job, &ctx, Some(graph)));
                }
            }
            eprintln!("[{} r={rate} done]", spec.name());
            table.push_row(cells);
        }
        table.emit(&cfg.out_dir, &format!("fig6_ptb_sweep_{}", spec.name()));
    }
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper: accuracy falls with r; GNAT (green) stays above Pro-GNN and GCN.");
}
