//! End-to-end warm-start behaviour of the artifact store.
//!
//! The acceptance contract for cached surrogates: with `BBGNN_STORE` (or
//! `--store`) active, re-training the same model on the same graph must
//! perform **zero epochs** — no `train/fit` span is ever opened — and the
//! resulting weights, predictions, and report must be byte-identical to the
//! cold run. A store hit must also be bitwise-identical regardless of the
//! kernel thread count, because the kernels' determinism contract makes the
//! stored bytes thread-count independent.

use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::datasets::DatasetSpec;
use bbgnn_linalg::kernels::ExecContext;
use bbgnn_linalg::DenseMatrix;
use bbgnn_store::{Key, Store};
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

/// The store and trace globals are process-wide; tests touching them must
/// not interleave.
fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bbgnn_warm_start_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `Write` sink the test can read back after `bbgnn_obs::shutdown`.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs `f` with tracing captured to a buffer and returns the trace text.
fn traced(f: impl FnOnce()) -> String {
    let buf = SharedBuf::default();
    bbgnn_obs::init_to_writer(Box::new(buf.clone()));
    f();
    bbgnn_obs::shutdown();
    buf.text()
}

#[test]
fn warm_start_skips_training_and_reproduces_the_cold_run_exactly() {
    let _guard = test_lock().lock().unwrap();
    let dir = temp_dir("fit");
    bbgnn_store::init_to_path(&dir.display().to_string()).unwrap();

    let g = DatasetSpec::CoraLike.generate(0.05, 41);

    let mut cold = Gcn::paper_default(TrainConfig::fast_test());
    let cold_trace = traced(|| {
        cold.fit(&g);
    });
    assert!(
        cold_trace.contains("train/fit"),
        "the cold run must actually train"
    );
    let cold_report = {
        // Re-fit cold state is gone; rerun below compares against these.
        (cold.weights().to_vec(), cold.predict(&g))
    };

    let mut warm = Gcn::paper_default(TrainConfig::fast_test());
    let warm_trace = traced(|| {
        warm.fit(&g);
    });
    assert!(
        !warm_trace.contains("train/fit"),
        "a warm start must not open a train/fit span (zero epochs); trace:\n{warm_trace}"
    );
    assert!(
        warm_trace.contains("store/hit"),
        "the warm run must count a store hit; trace:\n{warm_trace}"
    );
    assert_eq!(
        warm.weights(),
        &cold_report.0[..],
        "warm-start weights must be bitwise-identical to the cold run"
    );
    assert_eq!(warm.predict(&g), cold_report.1);

    bbgnn_store::shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_adjacency_never_aliases_the_clean_model() {
    let _guard = test_lock().lock().unwrap();
    let dir = temp_dir("alias");
    bbgnn_store::init_to_path(&dir.display().to_string()).unwrap();

    let clean = DatasetSpec::CoraLike.generate(0.05, 42);
    // One flipped edge: same config, same features, different adjacency.
    let (u, v) = (0, clean.num_nodes() / 2);
    let mut edited = clean.clone();
    edited.flip_edge(u, v);

    let mut a = Gcn::paper_default(TrainConfig::fast_test());
    a.fit(&clean);
    let mut b = Gcn::paper_default(TrainConfig::fast_test());
    b.fit(&edited);
    assert_ne!(
        a.weights(),
        b.weights(),
        "a perturbed graph must not hit the clean graph's cached model"
    );

    bbgnn_store::shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stored_artifacts_are_bitwise_identical_across_thread_counts() {
    let _guard = test_lock().lock().unwrap();
    // The determinism contract says kernel output bytes do not depend on
    // the thread count, so an artifact computed at 1 thread and one
    // computed at 4 threads must be the same file, byte for byte — which
    // is what makes a store shared between differently-threaded runs safe.
    let a = DenseMatrix::uniform(96, 64, 1.0, 7);
    let b = DenseMatrix::uniform(64, 32, 1.0, 8);
    let one = ExecContext::new(1).matmul(&a, &b);
    let four = ExecContext::new(4).matmul(&a, &b);

    let dir1 = temp_dir("threads1");
    let dir4 = temp_dir("threads4");
    let s1 = Store::open(&dir1).unwrap();
    let s4 = Store::open(&dir4).unwrap();
    let key = Key::new("test/product").field("seed", 7).field("n", 96);
    s1.put(&key, &one).unwrap();
    s4.put(&key, &four).unwrap();

    let f1 = std::fs::read(dir1.join(key.filename())).unwrap();
    let f4 = std::fs::read(dir4.join(key.filename())).unwrap();
    assert_eq!(f1, f4, "artifact bytes must not depend on thread count");

    let back: DenseMatrix = s1.get(&key).unwrap();
    assert!(
        back == four,
        "a hit must be bitwise-identical to recomputation"
    );

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}
