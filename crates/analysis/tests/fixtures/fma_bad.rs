// Fixture: FMA contraction in numeric library code must fire `fma`.
pub fn axpy(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}
