//! Fixture: the same key, but the omission is declared and justified —
//! the exclusion directive clears the finding.

pub struct SweepConfig {
    pub dataset: String,
    pub seed: u64,
    pub threads: usize,
}

impl SweepConfig {
    // lint: key_fields exclude(threads) reason=results are thread-invariant per §7
    pub fn store_key(&self) -> String {
        format!("{}|{}", self.dataset, self.seed)
    }
}
