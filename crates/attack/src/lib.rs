//! GNN adversarial attackers.
//!
//! The paper's primary contribution is [`peega::Peega`], a pure black-box
//! attacker that only reads the adjacency matrix and node features. Every
//! attacker baseline of the evaluation section is implemented alongside it:
//!
//! | Attacker | Type | Inputs | Attacks |
//! |---|---|---|---|
//! | [`peega::Peega`] | black-box | `A, X` | topology + features |
//! | [`metattack::Metattack`] | gray-box | `A, X, Y` | topology |
//! | [`pgd::PgdAttack`] | white-box | `A, X, Y, θ` | topology |
//! | [`minmax::MinMaxAttack`] | white-box | `A, X, Y, θ` | topology |
//! | [`gfattack::GfAttack`] | black-box | `A, X` | topology |
//! | [`random::RandomAttack`] | control | `A` | topology |
//!
//! All attackers share the budget convention of the paper:
//! `δ = rate · ‖A‖₀` where `‖A‖₀` is the number of undirected edges, with
//! each edge flip costing 1 and each feature flip costing `β` (Sec. V-D1;
//! `β = 1` by default).

#![deny(missing_docs)]

pub mod dice;
pub mod gfattack;
pub mod incremental;
pub mod metattack;
pub mod minmax;
pub mod peega;
pub mod peega_parallel;
pub mod pgd;
pub mod random;
mod scan;
pub mod targeted;

use bbgnn_graph::Graph;
use std::time::Duration;

/// Which nodes the attacker may touch (Sec. V-E2 / Fig. 7a).
///
/// An edge flip requires at least one accessible endpoint (the attacker
/// controls one side of the relationship); a feature flip requires the node
/// itself to be accessible.
#[derive(Clone, Debug, Default)]
pub enum AttackerNodes {
    /// Every node is accessible (the paper's default untargeted setting).
    #[default]
    All,
    /// Only the listed nodes are accessible.
    Subset(Vec<usize>),
}

impl AttackerNodes {
    /// Whether node `v` is accessible.
    pub fn contains(&self, v: usize) -> bool {
        match self {
            AttackerNodes::All => true,
            AttackerNodes::Subset(nodes) => nodes.binary_search(&v).is_ok(),
        }
    }

    /// Whether the undirected edge `{u, v}` may be flipped.
    pub fn edge_allowed(&self, u: usize, v: usize) -> bool {
        match self {
            AttackerNodes::All => true,
            _ => self.contains(u) || self.contains(v),
        }
    }

    /// A random subset holding `rate · n` nodes, sorted, deterministic in
    /// `seed`.
    pub fn random_subset(n: usize, rate: f64, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let take = ((n as f64 * rate).round() as usize).clamp(1, n);
        let mut subset = idx[..take].to_vec();
        subset.sort_unstable();
        AttackerNodes::Subset(subset)
    }
}

/// Outcome of an attack: the poisoned graph plus bookkeeping.
#[derive(Clone, Debug)]
pub struct AttackResult {
    /// The poisoned graph `Ĝ(V, Â, X̂)`.
    pub poisoned: Graph,
    /// Undirected edge flips performed (`‖Â − A‖₀`).
    pub edge_flips: usize,
    /// Feature bit flips performed (`‖X̂ − X‖₀`).
    pub feature_flips: usize,
    /// Wall-clock attack time.
    pub elapsed: Duration,
    /// True when the supervision layer (cancellation, deadline, or query
    /// budget) stopped the attack at a perturbation-loop boundary. The
    /// poisoned graph holds the perturbations accumulated so far —
    /// degraded, not failed.
    pub truncated: bool,
}

/// Cooperative stop poll for attacker perturbation loops (DESIGN.md §11).
/// Checked on the orchestrating thread at deterministic loop boundaries,
/// so a query-budget stop lands at the same perturbation count on every
/// run — query accounting happens before a pool region opens, so the
/// budget verdict never changes mid-region. The one documented exception
/// to "never inside pool workers" is GF-Attack's per-candidate rescoring,
/// which reaches the supervised eigensolvers from worker threads: a
/// *timing* stop (deadline or SIGINT) arriving mid-scan truncates its
/// candidate list at a timing-dependent point. The result is flagged
/// [`AttackResult::truncated`], and the nondeterminism never reaches a
/// clean checkpoint — downstream cells are skipped under a cancel and
/// recorded `degraded` under a budget. One relaxed load when supervision
/// is off.
pub(crate) fn should_stop(site: &str) -> bool {
    bbgnn_supervise::stop_reason(site).is_some()
}

/// A GNN attacker producing a poisoned graph within a budget derived from
/// the perturbation rate.
pub trait Attacker {
    /// Display name used in tables.
    fn name(&self) -> &'static str;

    /// Attacks `g`, returning the poisoned graph. Implementations must
    /// never mutate `g` and must respect their configured budget.
    fn attack(&mut self, g: &Graph) -> AttackResult;
}

/// Budget in undirected-edge units for a perturbation `rate`:
/// `δ = rate · ‖A‖₀`, at least 1.
pub fn budget_for(g: &Graph, rate: f64) -> usize {
    ((g.num_edges() as f64) * rate).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn budget_follows_rate() {
        let g = DatasetSpec::CoraLike.generate(0.05, 1);
        assert_eq!(
            budget_for(&g, 0.1),
            ((g.num_edges() as f64) * 0.1).round() as usize
        );
        assert_eq!(
            budget_for(&g, 0.0),
            1,
            "budget is floored at one modification"
        );
    }

    #[test]
    fn attacker_nodes_all_allows_everything() {
        let a = AttackerNodes::All;
        assert!(a.contains(0));
        assert!(a.edge_allowed(3, 9));
    }

    #[test]
    fn attacker_nodes_subset_requires_one_endpoint() {
        let a = AttackerNodes::Subset(vec![1, 5]);
        assert!(a.contains(5));
        assert!(!a.contains(2));
        assert!(a.edge_allowed(1, 2), "one accessible endpoint suffices");
        assert!(!a.edge_allowed(2, 3));
    }

    #[test]
    fn random_subset_has_requested_size() {
        let a = AttackerNodes::random_subset(100, 0.3, 7);
        if let AttackerNodes::Subset(s) = &a {
            assert_eq!(s.len(), 30);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        } else {
            panic!("expected subset");
        }
    }
}
