//! Extension — targeted attacks (the Nettack setting of Table I).
//!
//! The paper's Table I lists Nettack as the targeted gray-box attacker and
//! leaves targeted black-box attacks unexplored. This bin evaluates
//! PEEGA-T, the Def. 3 objective localized to one victim at a time with
//! the Nettack budget convention (`deg(t) + 2` per victim), against two
//! controls: an equal-budget random attack around the same victims, and
//! no attack.
//!
//! Reported per setting: targeted success rate (fraction of victims
//! misclassified by a freshly trained GCN) and overall test accuracy
//! (targeted attacks should barely move it — that is their point).

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("ext_targeted"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);

    // Victims: random test nodes with degree ≥ 2.
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut pool: Vec<usize> = g
        .split
        .test
        .iter()
        .copied()
        .filter(|&v| g.degree(v) >= 2)
        .collect();
    pool.shuffle(&mut rng);
    let targets: Vec<usize> = pool.into_iter().take(15).collect();
    let total_budget: usize = targets.iter().map(|&t| g.degree(t) + 2).sum();
    println!("{} victims, total budget {total_budget}\n", targets.len());

    let eval = |graph: &Graph| -> (MeanStd, MeanStd) {
        let mut success = Vec::new();
        let mut acc = Vec::new();
        for r in 0..cfg.runs {
            let mut gcn = Gcn::paper_default(TrainConfig {
                seed: cfg.seed + r as u64,
                ..Default::default()
            });
            gcn.fit(graph);
            success.push(target_success_rate(&gcn, graph, &targets));
            acc.push(gcn.test_accuracy(graph));
        }
        (MeanStd::of(&success), MeanStd::of(&acc))
    };

    let mut table = Table::new(&["setting", "victim error rate", "overall accuracy"]);
    let (s, a) = eval(&g);
    table.push_row(vec!["clean".into(), s.to_string(), a.to_string()]);

    let mut random = RandomAttack::new(RandomAttackConfig {
        rate: total_budget as f64 / g.num_edges() as f64,
        ..Default::default()
    });
    let (s, a) = eval(&random.attack(&g).poisoned);
    table.push_row(vec![
        "random (equal budget)".into(),
        s.to_string(),
        a.to_string(),
    ]);

    let mut targeted = TargetedPeega::new(TargetedPeegaConfig::degree_budget(
        targets.clone(),
        PeegaConfig::default(),
    ));
    let (s, a) = eval(&targeted.attack(&g).poisoned);
    table.push_row(vec!["PEEGA-T".into(), s.to_string(), a.to_string()]);

    table.emit(&cfg.out_dir, "ext_targeted");
    println!("\ntarget: PEEGA-T flips most victims while leaving overall accuracy");
    println!("nearly untouched; the equal-budget random control flips almost none.");
}
