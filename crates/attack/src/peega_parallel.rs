//! PEEGA-P — the parallel-sampling PEEGA variant sketched in the paper's
//! future work (Sec. VI).
//!
//! Alg. 1 commits one flip per gradient evaluation, so its cost grows
//! linearly with the budget δ. Following the paper's pointer to PTDNet /
//! Gumbel-Softmax sampling, PEEGA-P instead optimizes *all* perturbations
//! at once through a concrete (binary-Gumbel) relaxation:
//!
//! * a logit matrix `Θ_A` (and `Θ_X` when features are attacked)
//!   parameterizes flip probabilities `P = σ((Θ + G)/τ)` with fixed Gumbel
//!   noise `G` and temperature `τ`;
//! * the relaxed poisoned graph `Â = A + (1 − 2A) ∘ P` feeds the same
//!   Def. 3 objective as sequential PEEGA, maximized by plain gradient
//!   ascent on the logits;
//! * after `steps` updates, the δ highest-probability flips are committed.
//!
//! The number of gradient evaluations is `steps` (a constant) instead of
//! δ, so the attack time is budget-independent — the efficiency win the
//! paper anticipates. Empirically (bin `ext_extensions`) the relaxed
//! selection is competitive with — at laptop scales sometimes stronger
//! than — the greedy sequential selection, because it scores all flips
//! jointly instead of conditioning on a fixed prefix.

use crate::peega::{AttackSpace, ObjectiveNodes};
use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_autodiff::Tape;
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use std::time::Instant;

/// PEEGA-P configuration.
#[derive(Clone, Debug)]
pub struct PeegaParallelConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Self/global trade-off `λ` (as in PEEGA).
    pub lambda: f64,
    /// Norm order `p`.
    pub p: f64,
    /// Surrogate depth.
    pub hops: usize,
    /// Relaxation temperature `τ`.
    pub temperature: f64,
    /// Gradient-ascent steps on the logits.
    pub steps: usize,
    /// Ascent learning rate.
    pub lr: f64,
    /// Perturbation types allowed.
    pub space: AttackSpace,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// Nodes the objective sums over.
    pub objective_nodes: ObjectiveNodes,
    /// Seed for the Gumbel noise.
    pub seed: u64,
    /// Worker threads for the ascent kernels and the flip-scoring scan
    /// (`0` = defer to `BBGNN_THREADS` / available parallelism). The
    /// committed flips are bitwise-identical for every value.
    pub threads: usize,
}

impl Default for PeegaParallelConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            lambda: 0.01,
            p: 2.0,
            hops: 2,
            temperature: 0.5,
            steps: 60,
            lr: 0.3,
            space: AttackSpace::Both,
            attacker_nodes: AttackerNodes::All,
            objective_nodes: ObjectiveNodes::Train,
            seed: 0,
            threads: 0,
        }
    }
}

/// The parallel (Gumbel-relaxed) PEEGA attacker.
#[derive(Clone, Debug)]
pub struct PeegaParallel {
    /// Configuration.
    pub config: PeegaParallelConfig,
}

impl PeegaParallel {
    /// Creates a PEEGA-P attacker.
    pub fn new(config: PeegaParallelConfig) -> Self {
        Self { config }
    }

    fn gumbel_noise(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DenseMatrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            // Logistic noise = G1 − G2 for binary concrete variables.
            let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
            *v = (u / (1.0 - u)).ln();
        }
        m
    }
}

impl Attacker for PeegaParallel {
    fn name(&self) -> &'static str {
        "PEEGA-P"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let cfg = self.config.clone();
        let n = g.num_nodes();
        let d = g.feature_dim();
        let budget = budget_for(g, cfg.rate);
        let _span = bbgnn_obs::span!(
            "attack/peega_parallel",
            nodes = n,
            budget = budget,
            steps = cfg.steps
        );
        let clean_prop = Rc::new(g.propagate(cfg.hops));
        let eye = Rc::new(DenseMatrix::identity(n));
        let clean_a = Rc::new(g.adjacency_dense());
        let flip_dir_a = Rc::new(clean_a.map(|a| 1.0 - 2.0 * a));
        let clean_x = Rc::new(g.features.clone());
        let flip_dir_x = Rc::new(clean_x.map(|x| 1.0 - 2.0 * x));
        let attack_topology = cfg.space != AttackSpace::FeatureOnly;
        let attack_features = cfg.space != AttackSpace::TopologyOnly;

        // Objective-node machinery, identical to sequential PEEGA.
        let obj_nodes: Vec<usize> = match &cfg.objective_nodes {
            ObjectiveNodes::Train => g.split.train.clone(),
            ObjectiveNodes::All => (0..n).collect(),
            ObjectiveNodes::Custom(v) => v.clone(),
        };
        let mut row_mask = DenseMatrix::zeros(n, d);
        for &v in &obj_nodes {
            row_mask.row_mut(v).iter_mut().for_each(|x| *x = 1.0);
        }
        let row_mask = Rc::new(row_mask);
        let in_obj: std::collections::HashSet<usize> = obj_nodes.iter().copied().collect();
        let masked_adj = Rc::new(CsrMatrix::from_triplets(
            n,
            n,
            g.edges().flat_map(|(u, v)| {
                let mut t = Vec::new();
                if in_obj.contains(&u) {
                    t.push((u, v, 1.0));
                }
                if in_obj.contains(&v) {
                    t.push((v, u, 1.0));
                }
                t
            }),
        ));

        // Accessibility mask for candidate flips.
        let mut access_a = DenseMatrix::zeros(n, n);
        for u in 0..n {
            for v in 0..n {
                if u != v && cfg.attacker_nodes.edge_allowed(u, v) {
                    access_a.set(u, v, 1.0);
                }
            }
        }
        let access_a = Rc::new(access_a);
        let mut access_x = DenseMatrix::zeros(n, d);
        for v in 0..n {
            if cfg.attacker_nodes.contains(v) {
                access_x.row_mut(v).iter_mut().for_each(|x| *x = 1.0);
            }
        }
        let access_x = Rc::new(access_x);

        let gumbel_a = Rc::new(Self::gumbel_noise(n, n, cfg.seed));
        let gumbel_x = Rc::new(Self::gumbel_noise(n, d, cfg.seed.wrapping_add(1)));

        // Logits start very negative so the initial relaxed graph is
        // essentially the clean graph (probability σ(-12/τ) ≈ 0).
        let mut params = [
            DenseMatrix::filled(n, n, -6.0),
            DenseMatrix::filled(n, d, -6.0),
        ];

        // One execution context shared by every ascent step's tape (kernel
        // threads + workspace reuse) and by the flip-scoring scan below.
        let ctx = Rc::new(ExecContext::with_threads(cfg.threads));

        let mut truncated = false;
        for _step in 0..cfg.steps {
            // Cooperative stop site (DESIGN.md §11): the flips are then
            // committed from the logits the ascent has reached so far.
            if crate::should_stop("attack/peega_parallel/ascent") {
                truncated = true;
                break;
            }
            let mut tape = Tape::with_context(Rc::clone(&ctx));
            let theta_a = tape.var(params[0].clone());
            let theta_x = tape.var(params[1].clone());
            // Flip probabilities through the concrete relaxation.
            let make_probs = |tape: &mut Tape, theta, gumbel: &Rc<DenseMatrix>| {
                let noisy = tape.add_const(theta, Rc::clone(gumbel));
                let scaled = tape.scalar_mul(noisy, 1.0 / cfg.temperature);
                tape.sigmoid(scaled)
            };
            let a_hat = if attack_topology {
                let p_a = make_probs(&mut tape, theta_a, &gumbel_a);
                let p_a = tape.hadamard_const(p_a, Rc::clone(&access_a));
                let delta = tape.hadamard_const(p_a, Rc::clone(&flip_dir_a));
                tape.add_const(delta, Rc::clone(&clean_a))
            } else {
                tape.constant((*clean_a).clone())
            };
            let x_hat = if attack_features {
                let p_x = make_probs(&mut tape, theta_x, &gumbel_x);
                let p_x = tape.hadamard_const(p_x, Rc::clone(&access_x));
                let delta = tape.hadamard_const(p_x, Rc::clone(&flip_dir_x));
                tape.add_const(delta, Rc::clone(&clean_x))
            } else {
                tape.constant((*clean_x).clone())
            };
            // Def. 3 objective on the relaxed graph.
            let a_loop = tape.add_const(a_hat, Rc::clone(&eye));
            let deg = tape.row_sum(a_loop);
            let dinv = tape.pow_scalar(deg, -0.5);
            let sr = tape.scale_rows(a_loop, dinv);
            let an = tape.scale_cols(sr, dinv);
            let mut h = x_hat;
            for _ in 0..cfg.hops {
                h = tape.matmul(an, h);
            }
            let diff = tape.sub_const(h, &clean_prop);
            let masked = tape.hadamard_const(diff, Rc::clone(&row_mask));
            let self_view = tape.row_lp_norm_sum(masked, cfg.p);
            let obj = if cfg.lambda != 0.0 {
                let global = tape.neighbor_lp_norm_sum(
                    h,
                    Rc::clone(&masked_adj),
                    Rc::clone(&clean_prop),
                    cfg.p,
                );
                let w = tape.scalar_mul(global, cfg.lambda);
                tape.add(self_view, w)
            } else {
                self_view
            };
            // Plain gradient ascent on the logits. (Adam's per-coordinate
            // normalization would equalize the growth rate of every
            // consistently-signed coordinate and destroy the edge-vs-
            // feature comparability that the greedy selection relies on.)
            tape.backward(obj);
            if let Some(ga) = tape.grad(theta_a) {
                params[0].axpy(cfg.lr, ga);
            }
            if let Some(gx) = tape.grad(theta_x) {
                params[1].axpy(cfg.lr, gx);
            }
            bbgnn_obs::event!(
                "peega_parallel/ascent_step",
                step = _step,
                objective = tape.value(obj).get(0, 0)
            );
        }

        // Commit the budget-many highest-probability flips. Scoring fans
        // candidate evaluation across the pool: each worker scans a
        // contiguous row band, and the per-band vectors are concatenated
        // in ascending band order, so the scored list — and hence the
        // stable sort below and the committed flips — is identical for
        // every worker count.
        #[derive(Clone, Copy)]
        enum Flip {
            Edge(usize, usize),
            Feature(usize, usize),
        }
        let pool = ctx.pool();
        let concat = |mut a: Vec<(f64, Flip)>, mut b: Vec<(f64, Flip)>| {
            a.append(&mut b);
            a
        };
        let mut scored: Vec<(f64, Flip)> = Vec::new();
        if attack_topology {
            let theta = &params[0];
            let band = pool.map_fold(
                n * n,
                |range| {
                    let mut out = Vec::new();
                    for k in range {
                        let (u, v) = (k / n, k % n);
                        if v > u && cfg.attacker_nodes.edge_allowed(u, v) {
                            let logit = 0.5 * (theta.get(u, v) + theta.get(v, u));
                            out.push((logit, Flip::Edge(u, v)));
                        }
                    }
                    out
                },
                concat,
            );
            scored.extend(band.unwrap_or_default());
        }
        if attack_features {
            let theta = &params[1];
            let band = pool.map_fold(
                n * d,
                |range| {
                    let mut out = Vec::new();
                    for k in range {
                        let (v, i) = (k / d, k % d);
                        if cfg.attacker_nodes.contains(v) {
                            out.push((theta.get(v, i), Flip::Feature(v, i)));
                        }
                    }
                    out
                },
                concat,
            );
            scored.extend(band.unwrap_or_default());
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut poisoned = g.clone();
        for &(score, flip) in scored.iter().take(budget) {
            match flip {
                Flip::Edge(u, v) => {
                    poisoned.flip_edge(u, v);
                    bbgnn_obs::counter("attack/edge_flips", 1);
                    bbgnn_obs::event!(
                        "peega_parallel/perturb",
                        kind = "edge",
                        u = u,
                        v = v,
                        score = score
                    );
                }
                Flip::Feature(v, i) => {
                    poisoned.flip_feature(v, i);
                    bbgnn_obs::counter("attack/feature_flips", 1);
                    bbgnn_obs::event!(
                        "peega_parallel/perturb",
                        kind = "feature",
                        u = v,
                        v = i,
                        score = score
                    );
                }
            }
        }

        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: g.feature_difference(&poisoned),
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_gnn::gcn::Gcn;
    use bbgnn_gnn::train::TrainConfig;
    use bbgnn_gnn::NodeClassifier;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn respects_budget() {
        let g = DatasetSpec::CoraLike.generate(0.05, 171);
        let mut atk = PeegaParallel::new(PeegaParallelConfig {
            rate: 0.1,
            steps: 20,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips + r.feature_flips <= budget_for(&g, 0.1));
        assert!(r.edge_flips + r.feature_flips > 0);
    }

    #[test]
    fn cost_is_budget_independent() {
        // The whole point of the parallel variant: doubling the budget must
        // not double the runtime (steps are fixed).
        let g = DatasetSpec::CoraLike.generate(0.06, 172);
        let time_at = |rate: f64| {
            let mut atk = PeegaParallel::new(PeegaParallelConfig {
                rate,
                steps: 20,
                ..Default::default()
            });
            atk.attack(&g).elapsed.as_secs_f64()
        };
        let t_small = time_at(0.05);
        let t_large = time_at(0.25);
        assert!(
            t_large < 2.0 * t_small + 0.5,
            "runtime grew with budget: {t_small:.2}s -> {t_large:.2}s"
        );
    }

    #[test]
    fn degrades_gcn_accuracy() {
        let g = DatasetSpec::CoraLike.generate(0.08, 173);
        let mut clean = Gcn::paper_default(TrainConfig::fast_test());
        clean.fit(&g);
        let clean_acc = clean.test_accuracy(&g);
        let mut atk = PeegaParallel::new(PeegaParallelConfig {
            rate: 0.2,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut victim = Gcn::paper_default(TrainConfig::fast_test());
        victim.fit(&poisoned);
        let acc = victim.test_accuracy(&poisoned);
        assert!(
            acc < clean_acc,
            "PEEGA-P must degrade accuracy: {clean_acc} -> {acc}"
        );
    }

    #[test]
    fn is_deterministic() {
        let g = DatasetSpec::CoraLike.generate(0.05, 174);
        let run = || {
            let mut atk = PeegaParallel::new(PeegaParallelConfig {
                steps: 10,
                ..Default::default()
            });
            let p = atk.attack(&g).poisoned;
            let e: Vec<_> = p.edges().collect();
            (e, p.features)
        };
        assert_eq!(run(), run());
    }

    /// The determinism contract: PEEGA-P's pooled flip scoring and threaded
    /// ascent kernels commit bitwise-identical flips for every worker count.
    #[test]
    fn thread_count_does_not_change_result() {
        let g = DatasetSpec::CoraLike.generate(0.05, 175);
        let run = |threads: usize| {
            let mut atk = PeegaParallel::new(PeegaParallelConfig {
                steps: 10,
                threads,
                ..Default::default()
            });
            let p = atk.attack(&g).poisoned;
            let e: Vec<_> = p.edges().collect();
            (e, p.features)
        };
        let r1 = run(1);
        assert_eq!(r1, run(2), "2-thread run diverged from 1-thread run");
        assert_eq!(r1, run(4), "4-thread run diverged from 1-thread run");
    }
}
