//! Supervision layer: cooperative cancellation, run budgets, and
//! deterministic fault injection (DESIGN.md §11).
//!
//! Every long-running loop in the workspace — training epochs, attacker
//! perturbation/scan loops, iterative solvers, Pro-GNN's alternating
//! optimization — polls this crate at *deterministic loop boundaries*
//! (top of an epoch, top of a sweep, top of a restart) and stops
//! cooperatively when the run is cancelled or a budget is spent. The
//! contract mirrors the bitwise-determinism rules of DESIGN.md §7:
//! supervision may only gate **whether a loop continues**, never what a
//! completed iteration computes, so any result that runs to completion is
//! byte-identical with or without a supervisor installed.
//!
//! Like `bbgnn-obs` and `bbgnn-store`, the whole layer is off by default
//! and costs one relaxed atomic load plus one thread-local probe per
//! check when off. It activates only when a budget is installed
//! (`--deadline` / `--budget` / `BBGNN_DEADLINE` / `BBGNN_BUDGET`), a
//! fault plan is installed (`BBGNN_FAULTS`), cancellation is requested
//! (SIGINT/SIGTERM via [`signal::install`], or [`request_cancel`]), or
//! the calling thread has entered an active [`SupervisionScope`].
//!
//! ## Two domains: process-default and scoped
//!
//! The globals in this module are the **process-default domain** — what
//! the CLI binaries, the signal handler, and `InfraFlags` configure.
//! Multi-tenant callers (`bbgnn-serve`) give each job its own
//! [`SupervisionScope`] instead (see [`scope`]): per-scope cancel,
//! deadline, and budget accounting that never leaks to a sibling job.
//! The default domain always applies on top — SIGINT and a process-wide
//! budget bound scoped work too — while a scope's stop never escapes it.
//!
//! Exceeding a budget degrades gracefully where the caller can hold a
//! partial result (training returns best-so-far weights flagged
//! interrupted; attackers return the perturbations accumulated so far) and
//! errors with [`BbgnnError::BudgetExceeded`] /
//! [`BbgnnError::Cancelled`] where it cannot (iterative solvers). Neither
//! error is ever retried.

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;
pub mod scope;
pub mod signal;

pub use fault::{fault_at, FaultShot, FAULT_SITES};
pub use scope::{current_scope, enter, ScopeGuard, SupervisionScope};

use bbgnn_errors::{BbgnnError, BbgnnResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global gate
// ---------------------------------------------------------------------------

/// Master gate: true iff any supervision is configured (budget, fault
/// plan, or a requested cancellation). One relaxed load — the fast path
/// every check site takes first.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Process-wide cancellation flag. Set only with atomic stores so the
/// signal handler may touch it (async-signal-safe).
static CANCELLED: AtomicBool = AtomicBool::new(false);

/// Sentinel for "no cap configured" in the budget atomics.
pub(crate) const UNSET: u64 = u64::MAX;

/// Deadline as nanoseconds since [`anchor`]; `UNSET` = no deadline.
static DEADLINE_NANOS: AtomicU64 = AtomicU64::new(UNSET);
/// The *configured* deadline duration in whole seconds — what a deadline
/// stop reports as its limit ([`DEADLINE_NANOS`] is an absolute instant
/// relative to an anchor that may predate installation, so it is not a
/// meaningful limit to show a user).
static DEADLINE_LIMIT_SECS: AtomicU64 = AtomicU64::new(UNSET);
/// Total-training-epoch cap; `UNSET` = none.
static EPOCH_CAP: AtomicU64 = AtomicU64::new(UNSET);
/// Attack query / edge-scan cap; `UNSET` = none.
static QUERY_CAP: AtomicU64 = AtomicU64::new(UNSET);
/// Workspace peak-memory cap in bytes; `UNSET` = none.
static MEM_CAP: AtomicU64 = AtomicU64::new(UNSET);

static EPOCHS_USED: AtomicU64 = AtomicU64::new(0);
static QUERIES_USED: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Whether a stop has already been announced on the obs stream (the event
/// is emitted once, at the first check site that observes the stop).
static STOP_ANNOUNCED: AtomicBool = AtomicBool::new(false);

/// Monotonic time origin for the deadline arithmetic. The clock is read
/// only while a deadline is configured; with supervision off (or with
/// only epoch/query/memory caps) no check site ever reads a clock, which
/// is what keeps the off path byte-identical and the `clock` lint story
/// honest: time gates loop *continuation* here, it never enters numerics.
pub(crate) fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Whether any supervision is active for the *current thread*: the
/// process-default domain (budget, faults, or cancellation — one relaxed
/// load), or an active [`SupervisionScope`] this thread has entered (one
/// thread-local probe).
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) || scope::current_is_active()
}

/// Whether the process-default domain is active (scope state ignored).
pub(crate) fn global_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Requests cooperative cancellation of the whole process. Safe to call
/// from a signal handler (atomic stores only). Idempotent.
pub fn request_cancel() {
    CANCELLED.store(true, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Whether process-wide cancellation has been requested.
pub fn cancel_requested() -> bool {
    enabled() && CANCELLED.load(Ordering::Relaxed)
}

/// Resets every global supervision knob (budgets, counters, fault plan,
/// cancellation). Test-only in spirit; idempotent.
pub fn shutdown() {
    CANCELLED.store(false, Ordering::Relaxed);
    DEADLINE_NANOS.store(UNSET, Ordering::Relaxed);
    DEADLINE_LIMIT_SECS.store(UNSET, Ordering::Relaxed);
    EPOCH_CAP.store(UNSET, Ordering::Relaxed);
    QUERY_CAP.store(UNSET, Ordering::Relaxed);
    MEM_CAP.store(UNSET, Ordering::Relaxed);
    EPOCHS_USED.store(0, Ordering::Relaxed);
    QUERIES_USED.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    STOP_ANNOUNCED.store(false, Ordering::Relaxed);
    fault::clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// A run budget: every field is optional; an empty budget installs
/// nothing and leaves supervision off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline, measured from the moment of installation.
    pub deadline: Option<Duration>,
    /// Cap on total training epochs across the process.
    pub epochs: Option<u64>,
    /// Cap on attack queries / candidate edge scans across the process.
    pub queries: Option<u64>,
    /// Cap on `Workspace` peak memory, in bytes.
    pub mem_bytes: Option<u64>,
}

impl RunBudget {
    /// True iff no cap is configured.
    pub fn is_empty(&self) -> bool {
        *self == RunBudget::default()
    }

    /// Parses a `--budget` spec: comma-separated `key=value` pairs with
    /// keys `epochs`, `queries`, `mem`. Integer values accept `k`/`M`/`G`
    /// suffixes (×10³/10⁶/10⁹); `mem` additionally accepts `KiB-style`
    /// powers via `Ki`/`Mi`/`Gi`. Example: `epochs=500,queries=2M,mem=1Gi`.
    pub fn parse_spec(spec: &str) -> Result<RunBudget, String> {
        let mut budget = RunBudget::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("budget item {part:?} is not key=value"))?;
            let value = parse_scaled_u64(value.trim())
                .ok_or_else(|| format!("budget value {value:?} is not a count"))?;
            match key.trim() {
                "epochs" => budget.epochs = Some(value),
                "queries" => budget.queries = Some(value),
                "mem" => budget.mem_bytes = Some(value),
                other => {
                    return Err(format!(
                        "unknown budget key {other:?} (expected epochs/queries/mem)"
                    ))
                }
            }
        }
        Ok(budget)
    }
}

/// Parses an unsigned count with an optional decimal (`k`/`M`/`G`) or
/// binary (`Ki`/`Mi`/`Gi`) scale suffix.
fn parse_scaled_u64(s: &str) -> Option<u64> {
    let (digits, scale) = match s {
        _ if s.ends_with("Ki") => (&s[..s.len() - 2], 1u64 << 10),
        _ if s.ends_with("Mi") => (&s[..s.len() - 2], 1u64 << 20),
        _ if s.ends_with("Gi") => (&s[..s.len() - 2], 1u64 << 30),
        _ if s.ends_with('k') => (&s[..s.len() - 1], 1_000),
        _ if s.ends_with('M') => (&s[..s.len() - 1], 1_000_000),
        _ if s.ends_with('G') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(scale)
}

/// Parses a `--deadline` duration: a number with unit `ms`, `s`, `m`, or
/// `h` (bare numbers are seconds). Examples: `1s`, `500ms`, `2m`.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (digits, unit): (&str, fn(u64) -> Duration) = match s {
        _ if s.ends_with("ms") => (&s[..s.len() - 2], Duration::from_millis),
        _ if s.ends_with('s') => (&s[..s.len() - 1], Duration::from_secs),
        _ if s.ends_with('m') => (&s[..s.len() - 1], |v| Duration::from_secs(v * 60)),
        _ if s.ends_with('h') => (&s[..s.len() - 1], |v| Duration::from_secs(v * 3600)),
        _ => (s, Duration::from_secs),
    };
    digits
        .trim()
        .parse::<u64>()
        .map(unit)
        .map_err(|_| format!("malformed duration {s:?} (expected e.g. 90s, 500ms, 2m)"))
}

/// Installs `budget` process-wide. An empty budget is a no-op (does not
/// activate supervision). The deadline clock starts now.
pub fn install_budget(budget: &RunBudget) {
    if budget.is_empty() {
        return;
    }
    if let Some(d) = budget.deadline {
        let at = anchor().elapsed() + d;
        DEADLINE_NANOS.store(
            u64::try_from(at.as_nanos()).unwrap_or(UNSET - 1),
            Ordering::Relaxed,
        );
        DEADLINE_LIMIT_SECS.store(d.as_secs(), Ordering::Relaxed);
    }
    if let Some(e) = budget.epochs {
        EPOCH_CAP.store(e, Ordering::Relaxed);
    }
    if let Some(q) = budget.queries {
        QUERY_CAP.store(q, Ordering::Relaxed);
    }
    if let Some(m) = budget.mem_bytes {
        MEM_CAP.store(m, Ordering::Relaxed);
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Installs budget and fault plan from `BBGNN_DEADLINE`, `BBGNN_BUDGET`
/// and `BBGNN_FAULTS`. Returns whether supervision is now active; a
/// malformed variable is an error (a silently ignored budget would
/// un-bound a run the user meant to bound).
pub fn init_from_env() -> Result<bool, String> {
    let mut budget = RunBudget::default();
    if let Ok(spec) = std::env::var("BBGNN_DEADLINE") {
        if !spec.is_empty() {
            budget.deadline =
                Some(parse_duration(&spec).map_err(|e| format!("BBGNN_DEADLINE: {e}"))?);
        }
    }
    if let Ok(spec) = std::env::var("BBGNN_BUDGET") {
        if !spec.is_empty() {
            let parsed = RunBudget::parse_spec(&spec).map_err(|e| format!("BBGNN_BUDGET: {e}"))?;
            budget.epochs = parsed.epochs.or(budget.epochs);
            budget.queries = parsed.queries.or(budget.queries);
            budget.mem_bytes = parsed.mem_bytes.or(budget.mem_bytes);
        }
    }
    install_budget(&budget);
    if let Ok(spec) = std::env::var("BBGNN_FAULTS") {
        if !spec.is_empty() {
            fault::install(&spec).map_err(|e| format!("BBGNN_FAULTS: {e}"))?;
        }
    }
    Ok(enabled())
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

/// Records `n` completed training epochs (any model). No-op while
/// supervision is off. Counts land in the process-default counters *and*
/// in the scope the calling thread has entered, if any.
pub fn note_epochs(n: u64) {
    if enabled() {
        EPOCHS_USED.fetch_add(n, Ordering::Relaxed);
        scope::with_current(|s| s.add_epochs(n));
    }
}

/// Records `n` attack queries / candidate edge scans. No-op while
/// supervision is off. Counts land in the process-default counters *and*
/// in the scope the calling thread has entered, if any.
pub fn note_queries(n: u64) {
    if enabled() {
        QUERIES_USED.fetch_add(n, Ordering::Relaxed);
        scope::with_current(|s| s.add_queries(n));
    }
}

/// Records an observed `Workspace` high-water mark in bytes (monotonic
/// max). Unlike the other accounting hooks this runs even while
/// supervision is off *if* the caller already computed the value — but
/// call sites gate on [`enabled`] themselves to stay zero-cost, so this
/// simply takes the max (into the default counters and the entered
/// scope, if any).
pub fn note_mem(peak_bytes: u64) {
    PEAK_BYTES.fetch_max(peak_bytes, Ordering::Relaxed);
    scope::with_current(|s| s.max_mem(peak_bytes));
}

/// Training epochs recorded so far.
pub fn epochs_used() -> u64 {
    EPOCHS_USED.load(Ordering::Relaxed)
}

/// Attack queries recorded so far.
pub fn queries_used() -> u64 {
    QUERIES_USED.load(Ordering::Relaxed)
}

/// Largest `Workspace` high-water mark reported so far, in bytes.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Check sites
// ---------------------------------------------------------------------------

/// Why a supervised loop must stop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stop {
    /// Cooperative cancellation (signal or explicit request).
    Cancelled,
    /// A budget ran out.
    Budget {
        /// Which budget (`"deadline"`, `"epochs"`, `"queries"`, `"memory"`).
        resource: &'static str,
        /// The configured limit in the resource's native unit (whole
        /// seconds for `"deadline"`).
        limit: u64,
    },
}

impl Stop {
    /// Converts the stop into the matching taxonomy error, naming the
    /// check site that observed it.
    pub fn into_error(self, at: &str) -> BbgnnError {
        match self {
            Stop::Cancelled => BbgnnError::Cancelled { at: at.to_string() },
            Stop::Budget { resource, limit } => BbgnnError::BudgetExceeded {
                resource: resource.to_string(),
                limit,
                at: at.to_string(),
            },
        }
    }
}

/// The cooperative check every supervised loop polls at its deterministic
/// loop boundary. Returns `None` (one relaxed load) while supervision is
/// off; otherwise reports the first exhausted budget or a requested
/// cancellation. `site` names the check site (§11 check-site rules) and
/// appears in the one-shot `supervise/stop` obs event.
pub fn stop_reason(site: &str) -> Option<Stop> {
    if !enabled() {
        return None;
    }
    if global_active() {
        if let Some(stop) = stop_reason_slow() {
            announce_once(&STOP_ANNOUNCED, site, &stop);
            return Some(stop);
        }
    }
    let scope = scope::current_scope().filter(|s| s.is_active())?;
    let stop = scope.local_stop()?;
    announce_once(scope.announce_flag(), site, &stop);
    Some(stop)
}

/// Emits the one-shot `supervise/stop` obs event guarded by `flag` — once
/// per stop domain (the process-default domain or one scope), at the
/// first check site that observes the stop.
pub(crate) fn announce_once(flag: &AtomicBool, site: &str, stop: &Stop) {
    if !flag.swap(true, Ordering::Relaxed) {
        match stop {
            Stop::Cancelled => bbgnn_obs::event!("supervise/stop", site = site, why = "cancelled"),
            Stop::Budget { resource, .. } => {
                bbgnn_obs::event!("supervise/stop", site = site, why = *resource)
            }
        }
    }
}

/// The announce flag for the process-default domain.
pub(crate) fn global_announce_flag() -> &'static AtomicBool {
    &STOP_ANNOUNCED
}

/// The process-default domain's stop state (no scopes, no announce).
pub(crate) fn global_stop_slow() -> Option<Stop> {
    stop_reason_slow()
}

fn stop_reason_slow() -> Option<Stop> {
    if CANCELLED.load(Ordering::Relaxed) {
        return Some(Stop::Cancelled);
    }
    let deadline = DEADLINE_NANOS.load(Ordering::Relaxed);
    if deadline != UNSET {
        let now = u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX);
        if now >= deadline {
            return Some(Stop::Budget {
                resource: "deadline",
                limit: DEADLINE_LIMIT_SECS.load(Ordering::Relaxed),
            });
        }
    }
    let epoch_cap = EPOCH_CAP.load(Ordering::Relaxed);
    if epoch_cap != UNSET && EPOCHS_USED.load(Ordering::Relaxed) >= epoch_cap {
        return Some(Stop::Budget {
            resource: "epochs",
            limit: epoch_cap,
        });
    }
    let query_cap = QUERY_CAP.load(Ordering::Relaxed);
    if query_cap != UNSET && QUERIES_USED.load(Ordering::Relaxed) >= query_cap {
        return Some(Stop::Budget {
            resource: "queries",
            limit: query_cap,
        });
    }
    let mem_cap = MEM_CAP.load(Ordering::Relaxed);
    if mem_cap != UNSET && PEAK_BYTES.load(Ordering::Relaxed) > mem_cap {
        return Some(Stop::Budget {
            resource: "memory",
            limit: mem_cap,
        });
    }
    None
}

/// [`stop_reason`] as a `Result`: the form iterative solvers use, where no
/// partial result exists and the stop must surface as a taxonomy error.
pub fn check(site: &str) -> BbgnnResult<()> {
    match stop_reason(site) {
        None => Ok(()),
        Some(stop) => Err(stop.into_error(site)),
    }
}

/// One line describing why (and whether) the run was stopped — the
/// degraded-summary line binaries print on a supervised exit. `None` when
/// nothing stopped.
pub fn stop_summary() -> Option<String> {
    let stop = if enabled() { stop_reason_slow() } else { None }?;
    Some(match stop {
        Stop::Cancelled => "supervise: run cancelled (signal); completed cells checkpointed, \
                            partial work discarded (a resume recomputes it)"
            .into(),
        Stop::Budget { resource, limit } => format!(
            "supervise: {resource} budget ({limit}) exhausted; degraded cells recorded \
             (epochs used: {}, queries used: {}, peak workspace: {} bytes)",
            epochs_used(),
            queries_used(),
            peak_bytes()
        ),
    })
}

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

struct TokenInner {
    cancelled: AtomicBool,
    parent: Option<CancelToken>,
}

/// A cloneable, hierarchical cancellation token for scoped work (the
/// admission-control primitive `bbgnn-serve` will hand one per job).
///
/// Cancelling a token cancels every descendant; cancelling a child leaves
/// its parent (and siblings) running. Every token also observes the
/// process-global cancellation flag, so SIGINT reaches scoped work too.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh root token (observes only itself and the global flag).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: None,
            }),
        }
    }

    /// A child token: cancelled when either it or any ancestor is.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Cancels this token (and so every descendant). Idempotent; atomic
    /// stores only.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether this token, any ancestor, or the process-global flag has
    /// been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut node = Some(self);
        while let Some(t) = node {
            if t.inner.cancelled.load(Ordering::Relaxed) {
                return true;
            }
            node = t.inner.parent.as_ref();
        }
        cancel_requested()
    }

    /// [`is_cancelled`](CancelToken::is_cancelled) as a `Result`, naming
    /// the check site.
    pub fn check(&self, site: &str) -> BbgnnResult<()> {
        if self.is_cancelled() {
            Err(BbgnnError::Cancelled {
                at: site.to_string(),
            })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// All supervision state is process-global; serialize the tests.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        shutdown();
        guard
    }

    #[test]
    fn off_by_default_and_check_is_ok() {
        let _g = locked();
        assert!(!enabled());
        assert!(stop_reason("test/site").is_none());
        assert!(check("test/site").is_ok());
        assert!(stop_summary().is_none());
    }

    #[test]
    fn cancel_request_stops_checks() {
        let _g = locked();
        request_cancel();
        assert!(enabled());
        assert_eq!(stop_reason("test/site"), Some(Stop::Cancelled));
        let err = check("train/epoch").unwrap_err();
        assert!(matches!(err, BbgnnError::Cancelled { ref at } if at == "train/epoch"));
        assert!(stop_summary().unwrap().contains("cancelled"));
        shutdown();
        assert!(check("train/epoch").is_ok());
    }

    #[test]
    fn epoch_budget_trips_after_cap() {
        let _g = locked();
        install_budget(&RunBudget {
            epochs: Some(10),
            ..Default::default()
        });
        assert!(stop_reason("train/epoch").is_none());
        note_epochs(9);
        assert!(stop_reason("train/epoch").is_none());
        note_epochs(1);
        match stop_reason("train/epoch") {
            Some(Stop::Budget { resource, limit }) => {
                assert_eq!(resource, "epochs");
                assert_eq!(limit, 10);
            }
            other => panic!("expected epochs budget stop, got {other:?}"),
        }
        assert!(check("train/epoch").unwrap_err().is_supervision_stop());
        shutdown();
    }

    #[test]
    fn query_and_memory_budgets_trip() {
        let _g = locked();
        install_budget(&RunBudget {
            queries: Some(100),
            mem_bytes: Some(1 << 20),
            ..Default::default()
        });
        note_queries(100);
        assert!(matches!(
            stop_reason("attack/scan"),
            Some(Stop::Budget {
                resource: "queries",
                ..
            })
        ));
        shutdown();
        install_budget(&RunBudget {
            mem_bytes: Some(1 << 20),
            ..Default::default()
        });
        note_mem(1 << 20); // at the cap: fine
        assert!(stop_reason("exec/region").is_none());
        note_mem((1 << 20) + 1);
        assert!(matches!(
            stop_reason("exec/region"),
            Some(Stop::Budget {
                resource: "memory",
                ..
            })
        ));
        shutdown();
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let _g = locked();
        install_budget(&RunBudget {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        match stop_reason("bench/cell") {
            Some(Stop::Budget { resource, limit }) => {
                assert_eq!(resource, "deadline");
                // The reported limit is the *configured* duration, not the
                // absolute deadline instant relative to the process anchor
                // (which may predate installation by however long earlier
                // tests ran).
                assert_eq!(limit, 0);
            }
            other => panic!("expected deadline budget stop, got {other:?}"),
        }
        let summary = stop_summary().unwrap();
        assert!(summary.contains("deadline"), "summary: {summary}");
        shutdown();
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let _g = locked();
        install_budget(&RunBudget {
            deadline: Some(Duration::from_secs(3600)),
            ..Default::default()
        });
        assert!(stop_reason("bench/cell").is_none());
        shutdown();
    }

    #[test]
    fn empty_budget_leaves_supervision_off() {
        let _g = locked();
        install_budget(&RunBudget::default());
        assert!(!enabled());
    }

    #[test]
    fn budget_spec_parses_scales_and_rejects_junk() {
        let b = RunBudget::parse_spec("epochs=500,queries=2M,mem=1Gi").unwrap();
        assert_eq!(b.epochs, Some(500));
        assert_eq!(b.queries, Some(2_000_000));
        assert_eq!(b.mem_bytes, Some(1 << 30));
        assert!(RunBudget::parse_spec("fuel=9").is_err());
        assert!(RunBudget::parse_spec("epochs").is_err());
        assert!(RunBudget::parse_spec("epochs=lots").is_err());
        assert!(RunBudget::parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn duration_parsing_units() {
        assert_eq!(parse_duration("90"), Ok(Duration::from_secs(90)));
        assert_eq!(parse_duration("1s"), Ok(Duration::from_secs(1)));
        assert_eq!(parse_duration("500ms"), Ok(Duration::from_millis(500)));
        assert_eq!(parse_duration("2m"), Ok(Duration::from_secs(120)));
        assert_eq!(parse_duration("1h"), Ok(Duration::from_secs(3600)));
        assert!(parse_duration("soon").is_err());
    }

    #[test]
    fn token_hierarchy_propagates_downward_only() {
        let _g = locked();
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        let sibling = root.child();
        assert!(!grandchild.is_cancelled());
        child.cancel();
        assert!(grandchild.is_cancelled(), "cancel flows to descendants");
        assert!(child.is_cancelled());
        assert!(!root.is_cancelled(), "cancel must not flow upward");
        assert!(!sibling.is_cancelled(), "siblings are unaffected");
        assert!(grandchild.check("job/step").is_err());
        assert!(root.check("job/step").is_ok());
    }

    #[test]
    fn tokens_observe_global_cancellation() {
        let _g = locked();
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        request_cancel();
        assert!(t.is_cancelled(), "SIGINT must reach scoped work");
        shutdown();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn env_init_rejects_malformed_and_accepts_good() {
        let _g = locked();
        // Direct spec-level checks only (env vars are process-global and
        // other tests run in parallel; parse paths are exercised above).
        assert!(RunBudget::parse_spec("epochs=1").is_ok());
        assert!(parse_duration("1s").is_ok());
        assert!(fault::install("12:fault/unknown_site").is_err());
        shutdown();
    }
}
