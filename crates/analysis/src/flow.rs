//! The flow pass: cross-file rules over the workspace symbol graph.
//!
//! Where [`crate::rules`] checks what one file *writes*, this pass checks
//! what the workspace *wires together* — the contracts that live between
//! files and used to be enforced only by review:
//!
//! | rule | contract | fires on |
//! |---|---|---|
//! | `check_site` | §11 supervision | a fn whose loop transitively reaches kernel/eigensolver/training work through a path with no supervision check |
//! | `key_fields` | §10/§12 anti-aliasing | a key-construction fn that never references a field of its config struct and does not exclude it explicitly |
//! | `dead_taxonomy` | §8 taxonomy closure | a §8 name no workspace literal can emit |
//! | `hot_alloc` | §6 arena contract | an allocation inside a `kernels.rs` loop body or a `for_each_row_band` closure |
//!
//! All judgements ride the approximate call graph of [`crate::symbols`],
//! so they inherit its over-approximation: a spurious edge can produce a
//! spurious `check_site` finding (waive it with
//! `// lint: allow(check_site) reason=…`), but a real unsupervised loop
//! cannot hide behind failed resolution. Known approximations are
//! documented in DESIGN.md §9.

use crate::allow::{apply_allows, parse_allows};
use crate::lexer::{Lexed, TokKind};
use crate::parse::test_token_mask;
use crate::rules::{FileKind, Rule, Violation};
use crate::symbols::Model;
use crate::taxonomy::{Pattern, Taxonomy};
use std::collections::BTreeMap;

/// The linalg files whose fns are `check_site` **sinks** — the expensive
/// work a supervised loop must be able to interrupt (§11). They are also
/// excluded as subjects: linalg sits *below* the supervision boundary, so
/// its internal loops are the interruptible unit, not the check site.
pub const SINK_FILES: [&str; 3] = [
    "crates/linalg/src/kernels.rs",
    "crates/linalg/src/svd.rs",
    "crates/linalg/src/eigen.rs",
];

/// Crates whose library fns are `check_site` subjects: everything that
/// orchestrates loops above the linalg boundary.
pub const CHECK_SITE_CRATES: [&str; 7] = [
    "autodiff", "gnn", "attack", "defense", "bench", "scenario", "serve",
];

/// Structs whose names end in one of these are key-able configs for
/// `key_fields` (the workspace convention: `ExpConfig`, `TrainConfig`,
/// `JobSpec`).
const KEYABLE_SUFFIXES: [&str; 2] = ["Config", "Spec"];

/// Result of the flow pass.
#[derive(Debug, Default)]
pub struct FlowReport {
    pub violations: Vec<Violation>,
    pub allows_used: usize,
}

/// Runs all four graph rules. `files` must be the slice the model was
/// built from (indices align); `tax` supplies the §8 patterns for
/// `dead_taxonomy`.
pub fn analyze(model: &Model, files: &[(String, Lexed)], tax: &Taxonomy) -> FlowReport {
    debug_assert_eq!(model.files.len(), files.len());
    // Violations anchored in workspace files (waivable) vs. DESIGN.md
    // (not waivable — the doc is the source of truth, fix doc or code).
    let mut in_files: Vec<Violation> = Vec::new();
    let mut direct: Vec<Violation> = Vec::new();

    check_site(model, &mut in_files);
    key_fields(model, files, &mut in_files, &mut direct);
    dead_taxonomy(model, files, tax, &mut direct);
    for (rel, lx) in files {
        scan_hot_alloc(rel, lx, &mut in_files);
    }

    // Apply `// lint: allow(<rule>)` waivers to the file-anchored set.
    let by_rel: BTreeMap<&str, &Lexed> = files.iter().map(|(rel, lx)| (rel.as_str(), lx)).collect();
    let mut report = FlowReport::default();
    let mut grouped: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for v in in_files {
        grouped.entry(v.file.clone()).or_default().push(v);
    }
    for (rel, vs) in grouped {
        let Some(lx) = by_rel.get(rel.as_str()) else {
            report.violations.extend(vs);
            continue;
        };
        // Malformed directives were already reported by the per-file pass.
        let (mut allows, _bad) = parse_allows(&rel, lx);
        let (kept, used) = apply_allows(vs, &mut allows);
        report.allows_used += used;
        report.violations.extend(kept);
    }
    report.violations.extend(direct);
    report
        .violations
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    report
}

// ---------------------------------------------------------------------------
// check_site
// ---------------------------------------------------------------------------

/// A sink is the expensive, must-be-interruptible work itself: a
/// **looping** fn in a sink file (kernels iterate rows; accessors like
/// `Workspace::threads` don't loop and aren't work), or a free `train_*`
/// entry point in the gnn crate (`Mode::train_epoch` is an accessor, not
/// training).
fn is_sink(model: &Model, i: usize) -> bool {
    let f = &model.fns[i];
    if f.item.in_test {
        return false;
    }
    let file = &model.files[f.file];
    (SINK_FILES.contains(&file.rel.as_str()) && f.item.has_loop)
        || (file.info.krate.as_deref() == Some("gnn")
            && f.item.name.starts_with("train_")
            && f.item.impl_type.is_none())
}

/// Memoized "an unchecked path from fn `i` reaches a sink" query.
/// Colors: 0 unvisited, 1 on the DFS stack (cycle — cut, report false),
/// 2 reaches, 3 does not reach.
fn reaches_sink_unchecked(model: &Model, i: usize, color: &mut [u8]) -> bool {
    match color[i] {
        1 | 3 => return false,
        2 => return true,
        _ => {}
    }
    color[i] = 1;
    let f = &model.fns[i];
    let res = if f.has_check {
        // A check on the path makes everything below it supervised.
        false
    } else if is_sink(model, i) {
        true
    } else {
        f.item.calls.iter().any(|c| {
            model
                .resolve_strict(i, c)
                .into_iter()
                .any(|j| j != i && reaches_sink_unchecked(model, j, color))
        })
    };
    color[i] = if res { 2 } else { 3 };
    res
}

fn check_site(model: &Model, out: &mut Vec<Violation>) {
    let mut color = vec![0u8; model.fns.len()];
    for (i, f) in model.fns.iter().enumerate() {
        let file = &model.files[f.file];
        if f.item.in_test
            || file.info.kind != FileKind::Lib
            || SINK_FILES.contains(&file.rel.as_str())
            || !f.item.has_loop
            || f.has_check
        {
            continue;
        }
        let Some(k) = file.info.krate.as_deref() else {
            continue;
        };
        if !CHECK_SITE_CRATES.contains(&k) {
            continue;
        }
        // First in-loop call with an unchecked path to a sink, if any.
        let hit = f.item.calls.iter().find(|c| {
            c.in_loop
                && model
                    .resolve_strict(i, c)
                    .into_iter()
                    .any(|j| j != i && reaches_sink_unchecked(model, j, &mut color))
        });
        if let Some(c) = hit {
            out.push(Violation::new(
                &file.rel,
                c.line,
                Rule::CheckSite,
                format!(
                    "fn `{}` loops over `{}`, which reaches kernel/eigensolver/training \
                     work with no supervision check on the path — check stop_reason/\
                     should_stop at the loop boundary (§11) or waive with \
                     lint: allow(check_site) if a caller owns the check",
                    f.item.qual, c.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// key_fields
// ---------------------------------------------------------------------------

fn is_key_fn_name(name: &str) -> bool {
    name == "fingerprint" || name.ends_with("_key") || name.starts_with("key_")
}

/// One parsed exclusion directive:
/// `// lint: key_fields exclude(<fields…>) reason=<why>`.
struct Exclude {
    file: usize,
    line: u32,
    fields: Vec<String>,
}

/// Parses the exclusion directives of one file's comments. Malformed
/// directives (no fields, missing reason) become `lint_allow` violations.
fn parse_excludes(
    file_idx: usize,
    rel: &str,
    lx: &Lexed,
    bad: &mut Vec<Violation>,
) -> Vec<Exclude> {
    let mut out = Vec::new();
    for c in &lx.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("key_fields exclude(") {
            let after = &rest[pos + "key_fields exclude(".len()..];
            let Some(close) = after.find(')') else {
                bad.push(Violation::new(
                    rel,
                    c.line,
                    Rule::LintAllow,
                    "unterminated key_fields exclude( directive".to_string(),
                ));
                break;
            };
            let fields: Vec<String> = after[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let tail = &after[close + 1..];
            rest = tail;
            // Prose *about* the syntax (`exclude(<fields…>)`) is not a
            // directive: only identifier-shaped field lists are parsed,
            // mirroring the allow-directive guard.
            if fields
                .iter()
                .any(|f| !f.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_'))
            {
                continue;
            }
            if fields.is_empty() {
                bad.push(Violation::new(
                    rel,
                    c.line,
                    Rule::LintAllow,
                    "key_fields exclude() names no fields".to_string(),
                ));
                continue;
            }
            let reason = tail
                .find("reason=")
                .map(|r| tail[r + "reason=".len()..].trim())
                .unwrap_or("");
            if reason.is_empty() {
                bad.push(Violation::new(
                    rel,
                    c.line,
                    Rule::LintAllow,
                    "key_fields exclude(...) without a non-empty reason=... — say why \
                     omitting the field cannot alias two distinct results"
                        .to_string(),
                ));
                continue;
            }
            out.push(Exclude {
                file: file_idx,
                line: c.line,
                fields,
            });
        }
    }
    out
}

fn key_fields(
    model: &Model,
    files: &[(String, Lexed)],
    out: &mut Vec<Violation>,
    direct: &mut Vec<Violation>,
) {
    // Key-able structs by name (shipped code only).
    let keyable: BTreeMap<&str, usize> = model
        .structs
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            !s.item.in_test
                && KEYABLE_SUFFIXES
                    .iter()
                    .any(|suf| s.item.name.ends_with(suf))
        })
        .map(|(i, s)| (s.item.name.as_str(), i))
        .collect();

    // Key fns with their associated struct: impl type first, then the
    // first key-able struct named in the signature.
    let mut key_fns: Vec<(usize, usize)> = Vec::new(); // (fn, struct)
    for (i, f) in model.fns.iter().enumerate() {
        if f.item.in_test || !is_key_fn_name(&f.item.name) {
            continue;
        }
        if model.files[f.file].info.kind == FileKind::TestLike {
            continue;
        }
        let assoc = f
            .item
            .impl_type
            .as_deref()
            .and_then(|t| keyable.get(t).copied())
            .or_else(|| {
                f.item
                    .sig_idents
                    .iter()
                    .find_map(|id| keyable.get(id.as_str()).copied())
            });
        if let Some(s) = assoc {
            key_fns.push((i, s));
        }
    }

    // Exclusion directives, parsed once per file.
    let mut excludes: Vec<Exclude> = Vec::new();
    for (idx, (rel, lx)) in files.iter().enumerate() {
        excludes.extend(parse_excludes(idx, rel, lx, direct));
    }
    let mut exclude_attached = vec![false; excludes.len()];

    for &(fi, si) in &key_fns {
        let st = &model.structs[si];
        // Closure over same-struct methods reachable from the key fn —
        // a key may delegate part of itself (`self.column_name()`).
        let mut members = vec![fi];
        let mut cursor = 0;
        while cursor < members.len() {
            let cur = members[cursor];
            cursor += 1;
            for c in &model.fns[cur].item.calls {
                for j in model.resolve(cur, c) {
                    if model.fns[j].item.impl_type.as_deref() == Some(st.item.name.as_str())
                        && !members.contains(&j)
                    {
                        members.push(j);
                    }
                }
            }
        }
        // Union of referenced idents and attached excludes.
        let mut excluded: Vec<&str> = Vec::new();
        for (ei, e) in excludes.iter().enumerate() {
            let near_member = members.iter().any(|&m| {
                let f = &model.fns[m];
                f.file == e.file && e.line + 5 >= f.item.line && e.line <= f.item.end_line + 1
            });
            if near_member {
                exclude_attached[ei] = true;
                for fld in &e.fields {
                    excluded.push(fld);
                    if !st.item.fields.iter().any(|(name, _)| name == fld) {
                        direct.push(Violation::new(
                            &model.files[e.file].rel,
                            e.line,
                            Rule::LintAllow,
                            format!(
                                "key_fields exclude names `{fld}`, which is not a field of \
                                 `{}` — stale directive?",
                                st.item.name
                            ),
                        ));
                    }
                }
            }
        }
        let kf = &model.fns[fi];
        let file = &model.files[kf.file];
        for (field, _fline) in &st.item.fields {
            let referenced = members.iter().any(|&m| model.fns[m].item.mentions(field));
            if !referenced && !excluded.contains(&field.as_str()) {
                out.push(Violation::new(
                    &file.rel,
                    kf.item.line,
                    Rule::KeyFields,
                    format!(
                        "`{}` builds a key for `{}` but never references field `{field}` — \
                         two configs differing only in `{field}` would alias one store entry \
                         (§10); include it or add \
                         `// lint: key_fields exclude({field}) reason=…`",
                        kf.item.qual, st.item.name
                    ),
                ));
            }
        }
    }

    for (ei, e) in excludes.iter().enumerate() {
        if !exclude_attached[ei] {
            direct.push(Violation::new(
                &model.files[e.file].rel,
                e.line,
                Rule::LintAllow,
                "key_fields exclude directive is not adjacent to any key-construction fn \
                 (fingerprint / *_key / key_*) with a known Config/Spec struct"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// dead_taxonomy
// ---------------------------------------------------------------------------

fn dead_taxonomy(
    model: &Model,
    files: &[(String, Lexed)],
    tax: &Taxonomy,
    out: &mut Vec<Violation>,
) {
    // Every string literal shipped (non-test) library/binary code could
    // pass to an emission call. Liveness is over-approximate by design:
    // a literal used for anything (even a format template — `attack/{}`
    // matches `attack/<name>`) keeps the pattern alive.
    let mut lits: Vec<String> = Vec::new();
    for (idx, (_rel, lx)) in files.iter().enumerate() {
        if !matches!(model.files[idx].info.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let mask = test_token_mask(&lx.toks);
        for (i, t) in lx.toks.iter().enumerate() {
            if !mask[i] && t.kind == TokKind::Str && t.text.contains('/') {
                lits.push(t.text.clone());
            }
        }
    }
    let mut flag = |kind: &str, pats: &[Pattern]| {
        for p in pats {
            if p.line == 0 {
                continue; // not anchored in the doc (test-constructed)
            }
            if !lits.iter().any(|l| p.matches(l)) {
                out.push(Violation::new(
                    "DESIGN.md",
                    p.line,
                    Rule::DeadTaxonomy,
                    format!(
                        "§8 declares {kind} `{}` but no string literal in shipped workspace \
                         code can emit it — instrument the code or delete the bullet \
                         (the taxonomy is closed in both directions)",
                        p.text
                    ),
                ));
            }
        }
    };
    flag("span", &tax.spans);
    flag("event", &tax.events);
    flag("counter", &tax.counters);
    flag("kernel timer", &tax.kernels);
}

// ---------------------------------------------------------------------------
// hot_alloc
// ---------------------------------------------------------------------------

/// The file whose loop bodies carry the arena contract.
const KERNELS_FILE: &str = "crates/linalg/src/kernels.rs";

const ALLOC_TYPES: [&str; 6] = ["Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet"];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Flags allocations in hot regions: loop bodies of `kernels.rs` and the
/// argument range (closure) of any `for_each_row_band` call. Kernel inner
/// loops must draw scratch from the `Workspace` arena (§6) — a per-row
/// allocation is a silent O(rows) malloc storm the benches can't see.
fn scan_hot_alloc(rel: &str, lx: &Lexed, out: &mut Vec<Violation>) {
    let is_kernels = rel == KERNELS_FILE;
    let toks = &lx.toks;
    // Fast path: files that neither are kernels.rs nor mention the band
    // iterator have no hot regions.
    if !is_kernels && !toks.iter().any(|t| t.text == "for_each_row_band") {
        return;
    }
    let mask = test_token_mask(toks);
    let mut brace_hot: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut paren_depth = 0isize;
    let mut ferb_entry: Option<isize> = None;
    let mut ferb_pending = false;

    let ident = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    let punct = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Punct)
            .and_then(|t| t.text.chars().next())
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('{') => {
                    let hot = pending_loop || brace_hot.last().copied().unwrap_or(false);
                    brace_hot.push(hot);
                    pending_loop = false;
                }
                Some('}') => {
                    brace_hot.pop();
                }
                Some('(') => {
                    paren_depth += 1;
                    if ferb_pending {
                        ferb_entry = Some(paren_depth - 1);
                        ferb_pending = false;
                    }
                }
                Some(')') => {
                    paren_depth -= 1;
                    if ferb_entry == Some(paren_depth) {
                        ferb_entry = None;
                    }
                }
                _ => {}
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // `for PAT in EXPR {` — but not `impl Trait for Type {`,
            // which has no `in` before its brace.
            "for" => {
                let cap = (i + 80).min(toks.len());
                for j in i + 1..cap {
                    match punct(j) {
                        Some('{') | Some(';') => break,
                        _ => {}
                    }
                    if ident(j) == Some("in") {
                        pending_loop = true;
                        break;
                    }
                }
            }
            "while" | "loop" => pending_loop = true,
            "for_each_row_band" if punct(i + 1) == Some('(') => {
                ferb_pending = true;
            }
            _ => {}
        }

        let hot =
            (is_kernels && brace_hot.last().copied().unwrap_or(false)) || ferb_entry.is_some();
        if !hot || mask[i] {
            continue;
        }
        let region = if ferb_entry.is_some() {
            "a for_each_row_band closure"
        } else {
            "a kernels.rs loop body"
        };
        // Type::ctor allocations.
        if ALLOC_TYPES.contains(&t.text.as_str())
            && punct(i + 1) == Some(':')
            && punct(i + 2) == Some(':')
        {
            if let Some(ctor) = ident(i + 3) {
                if ALLOC_CTORS.contains(&ctor) {
                    out.push(Violation::new(
                        rel,
                        t.line,
                        Rule::HotAlloc,
                        format!(
                            "`{}::{ctor}` allocates inside {region} — draw scratch from the \
                             Workspace arena instead (§6 hot paths must not allocate)",
                            t.text
                        ),
                    ));
                }
            }
        }
        // Allocating macros.
        if (t.text == "vec" || t.text == "format") && punct(i + 1) == Some('!') {
            out.push(Violation::new(
                rel,
                t.line,
                Rule::HotAlloc,
                format!(
                    "`{}!` allocates inside {region} — draw scratch from the Workspace \
                     arena instead (§6 hot paths must not allocate)",
                    t.text
                ),
            ));
        }
        // Allocating methods: `.to_vec()`, `.clone()`, `.collect::<..>()`.
        if ALLOC_METHODS.contains(&t.text.as_str())
            && punct(i.wrapping_sub(1)) == Some('.')
            && (punct(i + 1) == Some('(')
                || (punct(i + 1) == Some(':') && punct(i + 2) == Some(':')))
        {
            out.push(Violation::new(
                rel,
                t.line,
                Rule::HotAlloc,
                format!(
                    "`.{}(...)` allocates inside {region} — borrow the slice or reuse an \
                     arena buffer (§6 hot paths must not allocate)",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::Model;
    use crate::taxonomy::parse_taxonomy;

    fn run(files: &[(&str, &str)]) -> FlowReport {
        let files: Vec<(String, Lexed)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        let model = Model::build(&files);
        let tax = Taxonomy::default();
        analyze(&model, &files, &tax)
    }

    fn rules_of(r: &FlowReport) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule.name()).collect()
    }

    const KERNEL: (&str, &str) = (
        "crates/linalg/src/kernels.rs",
        "pub fn matmul_into(ws: &mut W) { for r in 0..ws.rows { ws.touch(r); } }",
    );

    #[test]
    fn check_site_fires_on_unchecked_loop_and_respects_checked_path() {
        let r = run(&[
            KERNEL,
            (
                "crates/attack/src/peega.rs",
                "pub fn sweep(ws: &mut W) { for _ in 0..4 { step(ws); } }\n\
                 fn step(ws: &mut W) { matmul_into(ws); }",
            ),
        ]);
        assert_eq!(rules_of(&r), ["check_site"]);
        assert!(r.violations[0].msg.contains("sweep"));

        // Same shape, but the loop checks: clean.
        let r = run(&[
            KERNEL,
            (
                "crates/attack/src/peega.rs",
                "pub fn sweep(h: &H, ws: &mut W) { for _ in 0..4 { \
                   if h.should_stop() { break; } step(ws); } }\n\
                 fn step(ws: &mut W) { matmul_into(ws); }",
            ),
        ]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);

        // A check *below* the loop (in the callee) also supervises the path.
        let r = run(&[
            KERNEL,
            (
                "crates/attack/src/peega.rs",
                "pub fn sweep(h: &H, ws: &mut W) { for _ in 0..4 { step(h, ws); } }\n\
                 fn step(h: &H, ws: &mut W) { if h.should_stop() { return; } matmul_into(ws); }",
            ),
        ]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn check_site_waiver_suppresses() {
        let r = run(&[
            KERNEL,
            (
                "crates/attack/src/peega.rs",
                "pub fn sweep(ws: &mut W) { for _ in 0..4 {\n\
                   // lint: allow(check_site) reason=caller checks per §11\n\
                   step(ws);\n\
                 } }\n\
                 fn step(ws: &mut W) { matmul_into(ws); }",
            ),
        ]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
        assert_eq!(r.allows_used, 1);
    }

    #[test]
    fn check_site_ignores_loops_that_never_reach_a_sink() {
        let r = run(&[
            KERNEL,
            (
                "crates/bench/src/report.rs",
                "pub fn render(rows: &[Row]) { for r in rows { fmt_row(r); } }\n\
                 fn fmt_row(_: &Row) {}",
            ),
        ]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn key_fields_fires_on_missing_field_and_accepts_excludes() {
        let cfg = "pub struct RunConfig { pub seed: u64, pub scale: f64, pub threads: usize }\n";
        let bad = format!(
            "{cfg}impl RunConfig {{ pub fn fingerprint(&self) -> String {{ \
             format!(\"s={{}}\", self.seed) }} }}"
        );
        let r = run(&[("crates/bench/src/config.rs", bad.as_str())]);
        let rules = rules_of(&r);
        assert_eq!(rules, ["key_fields", "key_fields"], "{:?}", r.violations);
        assert!(r.violations.iter().any(|v| v.msg.contains("`scale`")));
        assert!(r.violations.iter().any(|v| v.msg.contains("`threads`")));

        let good = format!(
            "{cfg}impl RunConfig {{\n\
             // lint: key_fields exclude(threads) reason=§7 results are thread-invariant\n\
             pub fn fingerprint(&self) -> String {{ \
             format!(\"s={{}} x={{}}\", self.seed, self.scale) }} }}"
        );
        let r = run(&[("crates/bench/src/config.rs", good.as_str())]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn key_fields_sees_fields_through_same_struct_helpers() {
        let src = "pub struct JobSpec { pub model: String, pub seed: u64 }\n\
             impl JobSpec {\n\
               fn column(&self) -> &str { &self.model }\n\
               pub fn fingerprint(&self) -> String { \
                 format!(\"{}|{}\", self.column(), self.seed) }\n\
             }";
        let r = run(&[("crates/scenario/src/job.rs", src)]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn key_fields_malformed_or_orphaned_excludes_are_reported() {
        let src = "pub struct XConfig { pub a: u64 }\n\
             // lint: key_fields exclude(a) reason=orphaned, no key fn nearby\n\
             pub fn unrelated() {}";
        let r = run(&[("crates/bench/src/config.rs", src)]);
        assert_eq!(rules_of(&r), ["lint_allow"], "{:?}", r.violations);

        let src = "pub struct XConfig { pub a: u64, pub b: u64 }\n\
             impl XConfig {\n\
               // lint: key_fields exclude(b, ghost) reason=b is derived\n\
               pub fn fingerprint(&self) -> String { format!(\"{}\", self.a) }\n\
             }";
        let r = run(&[("crates/bench/src/config.rs", src)]);
        assert_eq!(rules_of(&r), ["lint_allow"], "{:?}", r.violations);
        assert!(r.violations[0].msg.contains("ghost"));
    }

    #[test]
    fn dead_taxonomy_flags_unemitted_names_only() {
        let md = "\
**Span & counter taxonomy.**

* spans: `alive/one`, `dead/one`, `wild/<name>`;
* counters: `c/one`;
* kernel timers: `k/one`.

**Overhead contract.**";
        let tax = parse_taxonomy(md).unwrap();
        let files: Vec<(String, Lexed)> = vec![(
            "crates/obs/src/lib.rs".to_string(),
            lex("pub fn f() { span(\"alive/one\"); g(\"wild/anything\"); \
                     c(\"c/one\"); k(\"k/one\"); }\n\
                     #[cfg(test)] mod t { fn t() { s(\"dead/one\"); } }"),
        )];
        let model = Model::build(&files);
        let r = analyze(&model, &files, &tax);
        assert_eq!(rules_of(&r), ["dead_taxonomy"], "{:?}", r.violations);
        let v = &r.violations[0];
        assert_eq!(v.file, "DESIGN.md");
        assert!(v.msg.contains("dead/one"), "test literals are not liveness");
    }

    #[test]
    fn hot_alloc_fires_in_kernel_loops_and_band_closures_only() {
        let src = "\
pub fn spmm(ws: &mut W) {
    let cold = Vec::with_capacity(8); // setup, outside any loop: fine
    for i in 0..ws.rows {
        let row = ws.b.row(i).to_vec();
        let extra = vec![0.0; 4];
        consume(&row, &extra);
    }
    drop(cold);
}
pub fn banded(ws: &mut W) {
    for_each_row_band(ws, |band| {
        let copy = band.clone();
        use_it(copy);
    });
}";
        let r = run(&[("crates/linalg/src/kernels.rs", src)]);
        let rules = rules_of(&r);
        assert_eq!(
            rules,
            ["hot_alloc", "hot_alloc", "hot_alloc"],
            "{:?}",
            r.violations
        );
        assert!(r.violations[0].msg.contains("to_vec"));
        assert!(r.violations[1].msg.contains("vec!"));
        assert!(r.violations[2].msg.contains("clone"));

        // Loops in other files are not governed…
        let r = run(&[(
            "crates/linalg/src/dense.rs",
            "pub fn f() { for _ in 0..3 { let v = Vec::new(); drop(v); } }",
        )]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
        // …but for_each_row_band closures are, wherever they appear.
        let r = run(&[(
            "crates/linalg/src/dense.rs",
            "pub fn f(ws: &mut W) { for_each_row_band(ws, |b| { let v = b.to_vec(); drop(v); }) }",
        )]);
        assert_eq!(rules_of(&r), ["hot_alloc"], "{:?}", r.violations);
    }

    #[test]
    fn hot_alloc_is_waivable_and_skips_impl_for_headers() {
        let r = run(&[(
            "crates/linalg/src/kernels.rs",
            "pub fn f(ws: &mut W) { for i in 0..ws.rows {\n\
               // lint: allow(hot_alloc) reason=amortized: grows once then reused\n\
               let v = Vec::new();\n\
               drop(v);\n\
             } }",
        )]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
        assert_eq!(r.allows_used, 1);

        // `impl Trait for Type` must not open a phantom loop region.
        let r = run(&[(
            "crates/linalg/src/kernels.rs",
            "impl Default for Ws { fn default() -> Self { Ws { buf: Vec::new() } } }",
        )]);
        assert!(rules_of(&r).is_empty(), "{:?}", r.violations);
    }
}
