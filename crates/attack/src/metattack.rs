//! Metattack (Zügner & Günnemann 2019), the gray-box baseline.
//!
//! The original Meta-Self variant differentiates the attack loss through
//! the unrolled inner training of a linear surrogate (second-order
//! meta-gradients). As documented in `DESIGN.md` §3, this implementation
//! uses the **first-order approximation** from the same paper (their
//! "A-Meta" variant): the surrogate is (re)trained on the current poisoned
//! graph, self-training labels are taken from its predictions, and the
//! gradient of the self-training loss with respect to the dense adjacency
//! is used to score candidate flips — the candidate with the highest
//! `∇_Â L_self ⊙ (−2Â + 1)` score is committed, exactly one flip per
//! outer step. Zügner & Günnemann report the approximation attains nearly
//! the same attack strength at a fraction of the cost; the behaviours the
//! paper's evaluation relies on (strong gray-box attack, much slower than
//! PEEGA due to repeated surrogate training, cross-label edge additions)
//! are preserved.

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_autodiff::Tape;
use bbgnn_gnn::linear_gcn::LinearGcn;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::{DenseMatrix, ExecContext};
use std::rc::Rc;
use std::time::Instant;

/// Metattack configuration.
#[derive(Clone, Debug)]
pub struct MetattackConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Surrogate propagation depth (paper uses 2).
    pub hops: usize,
    /// Retrain the surrogate every this many flips (1 = every step, the
    /// most faithful and slowest; larger values trade fidelity for speed).
    pub retrain_every: usize,
    /// Surrogate training configuration.
    pub train: TrainConfig,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// Maintain the surrogate propagation incrementally across flips
    /// (DESIGN.md §13) instead of recomputing it inside every retrain.
    /// Byte-identical flip sequences either way; also honoured when the
    /// process-global `--incremental` / `BBGNN_INCR` switch is on.
    pub incremental: bool,
}

impl Default for MetattackConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            hops: 2,
            retrain_every: 1,
            train: TrainConfig {
                epochs: 100,
                patience: 0,
                dropout: 0.0,
                ..Default::default()
            },
            attacker_nodes: AttackerNodes::All,
            incremental: false,
        }
    }
}

/// The Meta-Self-style gray-box attacker (first-order approximation).
#[derive(Clone, Debug)]
pub struct Metattack {
    /// Configuration.
    pub config: MetattackConfig,
}

impl Metattack {
    /// Creates a Metattack attacker.
    pub fn new(config: MetattackConfig) -> Self {
        Self { config }
    }
}

impl Attacker for Metattack {
    fn name(&self) -> &'static str {
        "Metattack"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let cfg = &self.config;
        let n = g.num_nodes();
        let budget = budget_for(g, cfg.rate);
        let _span = bbgnn_obs::span!("attack/metattack", nodes = n, budget = budget);
        let eye = Rc::new(DenseMatrix::identity(n));
        let mut poisoned = g.clone();
        let mut a_hat = g.adjacency_dense();

        // Self-training target: true labels on the train split, surrogate
        // predictions elsewhere (recomputed at every retrain).
        let mut surrogate_w: Option<DenseMatrix> = None;
        let mut self_labels: Vec<usize> = Vec::new();
        let all_nodes: Rc<Vec<usize>> = Rc::new((0..n).collect());
        // Shared kernels + workspace for every outer step's gradient tape;
        // the candidate scan fans out over the same pool.
        let ctx = ExecContext::shared_from_env();
        // Incrementally maintained H = Â_n^L X over the poisoned graph;
        // bitwise-equal to `poisoned.propagate(hops)` at every step, so the
        // retrains below see the exact bytes the dense path would.
        let mut engine = crate::incremental::active(cfg.incremental)
            .then(|| crate::incremental::engine_for(g, cfg.hops));

        let mut truncated = false;
        for step in 0..budget {
            // Cooperative stop site (DESIGN.md §11): flips so far are kept.
            if crate::should_stop("attack/metattack/perturb") {
                truncated = true;
                break;
            }
            // lint: allow(clock) reason=step timing feeds an obs event, is gated on tracing being enabled, and never branches numerics
            let step_start = bbgnn_obs::enabled().then(Instant::now);
            if step % cfg.retrain_every == 0 || surrogate_w.is_none() {
                bbgnn_obs::counter("attack/surrogate_retrains", 1);
                let mut lin = LinearGcn::new(cfg.hops, cfg.train.clone());
                let preds = if let Some(eng) = engine.as_ref() {
                    lin.fit_with_propagation(&poisoned, eng.propagated());
                    lin.predict_from_propagation(eng.propagated())
                } else {
                    lin.fit(&poisoned);
                    lin.predict(&poisoned)
                };
                self_labels = g.labels.clone();
                let in_train: std::collections::HashSet<usize> =
                    g.split.train.iter().copied().collect();
                for v in 0..n {
                    if !in_train.contains(&v) {
                        self_labels[v] = preds[v];
                    }
                }
                // lint: allow(panic) reason=fit() on the line above always installs the weight
                surrogate_w = Some(lin.weight().expect("trained surrogate").clone());
            }
            // lint: allow(panic) reason=the retrain branch above guarantees surrogate_w is Some on every step
            let w = surrogate_w.as_ref().expect("surrogate weight");

            // Gradient of the self-training loss w.r.t. the dense adjacency.
            let mut tape = Tape::with_context(Rc::clone(&ctx));
            let a = tape.var(a_hat.clone());
            let a_loop = tape.add_const(a, Rc::clone(&eye));
            let deg = tape.row_sum(a_loop);
            let dinv = tape.pow_scalar(deg, -0.5);
            let scaled = tape.scale_rows(a_loop, dinv);
            let an = tape.scale_cols(scaled, dinv);
            let xw = tape.constant(poisoned.features.matmul(w));
            let mut h = xw;
            for _ in 0..cfg.hops {
                h = tape.matmul(an, h);
            }
            let loss = tape.cross_entropy(h, Rc::new(self_labels.clone()), Rc::clone(&all_nodes));
            tape.backward(loss);
            // lint: allow(panic) reason=a is a tape.var leaf on the path to loss, so backward always populates its gradient
            let grad = tape.grad(a).expect("adjacency gradient");

            // Highest-scoring candidate flip (maximizing the loss),
            // scanned in parallel with the deterministic chunk-ordered
            // merge of [`crate::scan`].
            let best = crate::scan::best_edge_flip(ctx.pool(), n, |u, v| {
                if !cfg.attacker_nodes.edge_allowed(u, v) {
                    return None;
                }
                let dir = 1.0 - 2.0 * a_hat.get(u, v);
                Some((grad.get(u, v) + grad.get(v, u)) * dir)
            });
            let Some((score, u, v)) = best else { break };
            poisoned.flip_edge(u, v);
            if let Some(eng) = engine.as_mut() {
                crate::incremental::commit_edge_flip(eng, u, v);
            }
            let new_val = 1.0 - a_hat.get(u, v);
            a_hat.set(u, v, new_val);
            a_hat.set(v, u, new_val);
            bbgnn_obs::counter("attack/edge_flips", 1);
            bbgnn_obs::event!(
                "metattack/perturb",
                step = step,
                u = u,
                v = v,
                score = score,
                scan_s = step_start.map_or(f64::NAN, |t| t.elapsed().as_secs_f64())
            );
        }

        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_gnn::gcn::Gcn;
    use bbgnn_graph::datasets::DatasetSpec;
    use bbgnn_graph::metrics::edge_diff_breakdown;

    #[test]
    fn respects_budget_and_purity() {
        let g = DatasetSpec::CoraLike.generate(0.04, 61);
        let mut atk = Metattack::new(MetattackConfig {
            rate: 0.1,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips <= budget_for(&g, 0.1));
        assert!(r.edge_flips > 0);
        assert_eq!(r.feature_flips, 0, "Metattack here is topology-only");
    }

    #[test]
    fn degrades_gcn_accuracy() {
        let g = DatasetSpec::CoraLike.generate(0.08, 62);
        let mut clean = Gcn::paper_default(TrainConfig::fast_test());
        clean.fit(&g);
        let clean_acc = clean.test_accuracy(&g);
        let mut atk = Metattack::new(MetattackConfig {
            rate: 0.2,
            retrain_every: 10,
            ..Default::default()
        });
        let r = atk.attack(&g);
        let mut poisoned = Gcn::paper_default(TrainConfig::fast_test());
        poisoned.fit(&r.poisoned);
        let atk_acc = poisoned.test_accuracy(&r.poisoned);
        assert!(
            atk_acc < clean_acc - 0.02,
            "Metattack must degrade accuracy: {clean_acc} -> {atk_acc}"
        );
    }

    #[test]
    fn incremental_matches_dense_path_bitwise() {
        let g = DatasetSpec::CoraLike.generate(0.04, 64);
        let base = MetattackConfig {
            rate: 0.1,
            retrain_every: 3,
            ..Default::default()
        };
        let dense = Metattack::new(base.clone()).attack(&g);
        let incr = Metattack::new(MetattackConfig {
            incremental: true,
            ..base
        })
        .attack(&g);
        assert_eq!(dense.edge_flips, incr.edge_flips);
        assert_eq!(
            dense.poisoned.content_hash(),
            incr.poisoned.content_hash(),
            "incremental Metattack must commit the exact dense flip sequence"
        );
    }

    #[test]
    fn prefers_cross_label_additions() {
        let g = DatasetSpec::CoraLike.generate(0.06, 63);
        let mut atk = Metattack::new(MetattackConfig {
            rate: 0.15,
            retrain_every: 5,
            ..Default::default()
        });
        let r = atk.attack(&g);
        let d = edge_diff_breakdown(&g, &r.poisoned);
        assert!(
            d.add_diff > d.add_same,
            "Fig. 2 pattern: Add+Diff dominates"
        );
    }
}
