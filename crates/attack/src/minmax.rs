//! MinMax topology attack (Xu et al. 2019).
//!
//! Same relaxed formulation as [`crate::pgd`], but instead of fixing the
//! pre-trained victim parameters, MinMax alternates the maximization over
//! the perturbation with minimization over the GCN parameters: every
//! `retrain_every` ascent steps, the victim is retrained on the current
//! (discretized) perturbation. This makes the attack stronger than PGD —
//! and roughly twice as slow, matching Table VII.

use crate::pgd::{pgd_optimize, top_k_flips};
use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use std::time::Instant;

/// MinMax attack configuration.
#[derive(Clone, Debug)]
pub struct MinMaxConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Projected-gradient ascent steps.
    pub ascent_steps: usize,
    /// Base ascent learning rate (decayed as `lr / √(t+1)`).
    pub lr: f64,
    /// Bernoulli sampling trials for the final discretization.
    pub sample_trials: usize,
    /// Retrain the victim every this many ascent steps.
    pub retrain_every: usize,
    /// Epochs per inner retraining.
    pub inner_epochs: usize,
    /// Victim training configuration (initial fit).
    pub train: TrainConfig,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// RNG seed for the sampling phase.
    pub seed: u64,
}

impl Default for MinMaxConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            ascent_steps: 80,
            lr: 0.5,
            sample_trials: 20,
            retrain_every: 10,
            inner_epochs: 30,
            train: TrainConfig {
                epochs: 100,
                patience: 0,
                dropout: 0.0,
                ..Default::default()
            },
            attacker_nodes: AttackerNodes::All,
            seed: 0,
        }
    }
}

/// The MinMax white-box attacker.
#[derive(Clone, Debug)]
pub struct MinMaxAttack {
    /// Configuration.
    pub config: MinMaxConfig,
}

impl MinMaxAttack {
    /// Creates a MinMax attacker.
    pub fn new(config: MinMaxConfig) -> Self {
        Self { config }
    }
}

impl Attacker for MinMaxAttack {
    fn name(&self) -> &'static str {
        "MinMax"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let _span = bbgnn_obs::span!("attack/minmax", nodes = g.num_nodes());
        let cfg = self.config.clone();
        let budget = budget_for(g, cfg.rate);
        let mut gcn = Gcn::paper_default(cfg.train.clone());
        gcn.fit(g);
        let inner_cfg = TrainConfig {
            epochs: cfg.inner_epochs,
            patience: 0,
            dropout: 0.0,
            ..cfg.train.clone()
        };
        let retrain_every = cfg.retrain_every.max(1);
        let g_inner = g.clone();
        let (flips, truncated) = pgd_optimize(
            g,
            cfg.rate,
            cfg.ascent_steps,
            cfg.lr,
            cfg.sample_trials,
            &cfg.attacker_nodes,
            cfg.seed,
            &mut gcn,
            |victim, s, step| {
                if step == 0 || step % retrain_every != 0 {
                    return;
                }
                // Inner minimization: retrain the victim on the current
                // perturbation, discretized to its strongest entries.
                let mut poisoned = g_inner.clone();
                for (u, v) in top_k_flips(s, budget) {
                    poisoned.flip_edge(u, v);
                }
                *victim = Gcn::paper_default(inner_cfg.clone());
                victim.fit(&poisoned);
            },
        );
        let mut poisoned = g.clone();
        for &(u, v) in &flips {
            poisoned.flip_edge(u, v);
        }
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn respects_budget() {
        let g = DatasetSpec::CoraLike.generate(0.05, 81);
        let mut atk = MinMaxAttack::new(MinMaxConfig {
            rate: 0.1,
            ascent_steps: 20,
            retrain_every: 8,
            inner_epochs: 15,
            sample_trials: 5,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips <= budget_for(&g, 0.1));
        assert!(r.edge_flips > 0);
        assert_eq!(r.feature_flips, 0);
    }

    #[test]
    fn differs_from_pgd_solution() {
        use crate::pgd::{PgdAttack, PgdConfig};
        let g = DatasetSpec::CoraLike.generate(0.05, 82);
        let mut mm = MinMaxAttack::new(MinMaxConfig {
            rate: 0.1,
            ascent_steps: 20,
            retrain_every: 5,
            inner_epochs: 15,
            sample_trials: 5,
            ..Default::default()
        });
        let mut pgd = PgdAttack::new(PgdConfig {
            rate: 0.1,
            ascent_steps: 20,
            sample_trials: 5,
            ..Default::default()
        });
        let rm = mm.attack(&g);
        let rp = pgd.attack(&g);
        let em: Vec<_> = rm.poisoned.edges().collect();
        let ep: Vec<_> = rp.poisoned.edges().collect();
        assert_ne!(em, ep, "retraining should steer MinMax to different flips");
    }
}
