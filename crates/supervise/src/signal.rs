//! SIGINT/SIGTERM → cooperative cancellation.
//!
//! The experiment binaries install this once at startup (via
//! `ExpConfig::init_from`). The handler does exactly one async-signal-safe
//! thing: set the process-global cancellation flag with relaxed atomic
//! stores ([`crate::request_cancel`]). Every supervised loop then winds
//! down at its next deterministic check site, the harness flushes the
//! current checkpoint, and the binary exits cleanly with a
//! degraded-summary line instead of dying mid-write. A second signal does
//! not escalate; a genuinely hung process still answers to SIGKILL.
//!
//! The binding is hand-rolled (`signal(2)` from libc, which every
//! supported unix links anyway) because the workspace vendors no FFI
//! crates. Non-unix builds compile [`install`] to a no-op.

/// Installs the SIGINT/SIGTERM cancellation handlers. Idempotent;
/// best-effort (a failed installation leaves default signal behavior,
/// which is no worse than before this layer existed).
#[cfg(unix)]
pub fn install() {
    /// `SIGINT` on every unix the workspace targets.
    const SIGINT: i32 = 2;
    /// `SIGTERM` likewise.
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: relaxed atomic stores only.
        crate::request_cancel();
    }

    extern "C" {
        /// `signal(2)`. The true return type is the previous handler
        /// (`void (*)(int)`); it is received as `usize` here and ignored,
        /// which is ABI-compatible on every supported unix (function
        /// pointers and `usize` share a return register).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    // SAFETY: `signal` is the C standard library's handler registration.
    // The handler we register only performs relaxed atomic stores on
    // `static AtomicBool`s (async-signal-safe: no allocation, no locks,
    // no reentrancy into Rust runtime machinery), and it stays valid for
    // the life of the process because it is a plain `extern "C" fn` item.
    unsafe {
        let _ = signal(SIGINT, on_signal);
        let _ = signal(SIGTERM, on_signal);
    }
}

/// No-op on non-unix targets (cancellation is still reachable through
/// [`crate::request_cancel`]).
#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    // The handler itself is exercised end-to-end by the chaos suite
    // (bench/tests) against a child process; installing handlers inside
    // the unit-test harness would swallow the harness's own Ctrl-C.
    #[test]
    fn install_is_callable_shape() {
        // Type-check only: taking the function pointer proves the symbol
        // exists on this target without mutating process signal state.
        let _f: fn() = super::install;
    }
}
