//! The linear GCN surrogate `Z = softmax(A_nᴸ X W)`.
//!
//! This is the model the paper's Eq. (7) linearizes a GCN into, and the
//! surrogate Metattack trains in the gray-box setting. Because there is no
//! nonlinearity, the propagation `A_nᴸ X` can be precomputed once; training
//! reduces to logistic regression on the propagated features.

use crate::train::{train_node_classifier_keyed, TrainConfig, TrainReport};
use crate::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::DenseMatrix;

/// Linear GCN with `hops` propagation steps (the paper uses 2).
pub struct LinearGcn {
    /// Number of propagation hops `L`.
    pub hops: usize,
    /// Training configuration (dropout is ignored — the model is linear).
    pub config: TrainConfig,
    weight: Option<DenseMatrix>,
}

impl LinearGcn {
    /// Creates an untrained linear GCN.
    pub fn new(hops: usize, config: TrainConfig) -> Self {
        Self {
            hops,
            config,
            weight: None,
        }
    }

    /// The trained weight matrix, if fitted.
    pub fn weight(&self) -> Option<&DenseMatrix> {
        self.weight.as_ref()
    }

    /// Logits on graph `g` with the trained weight.
    pub fn logits(&self, g: &Graph) -> DenseMatrix {
        self.logits_from_propagation(&g.propagate(self.hops))
    }

    /// Logits from an externally supplied propagation `h = A_nᴸ X` (e.g.
    /// the incrementally maintained state of `bbgnn_linalg::incr`).
    /// Byte-identical to [`Self::logits`] when `h` matches
    /// `g.propagate(self.hops)` bitwise.
    pub fn logits_from_propagation(&self, h: &DenseMatrix) -> DenseMatrix {
        // lint: allow(panic) reason=documented precondition — callers must fit() first, and weight() exposes a fallible probe
        let w = self.weight.as_ref().expect("model is not trained");
        h.matmul(w)
    }

    /// Predicted labels from an externally supplied propagation; the
    /// propagation-injected counterpart of [`NodeClassifier::predict`].
    pub fn predict_from_propagation(&self, h: &DenseMatrix) -> Vec<usize> {
        self.logits_from_propagation(h).row_argmax()
    }

    /// Fits the classifier using an externally supplied propagation
    /// `h = A_nᴸ X` instead of recomputing it from `g`. Labels, splits,
    /// and the store salt still come from `g`; byte-identical to
    /// [`NodeClassifier::fit`] when `h` matches `g.propagate(self.hops)`
    /// bitwise.
    pub fn fit_with_propagation(&mut self, g: &Graph, h: &DenseMatrix) -> TrainReport {
        let h = h.clone();
        let mut params = vec![DenseMatrix::glorot(
            g.feature_dim(),
            g.num_classes,
            self.config.seed,
        )];
        let cfg = self.config.clone();
        let salt = bbgnn_store::enabled()
            .then(|| bbgnn_store::Key::new("model/linear_gcn").field("hops", self.hops));
        let report = train_node_classifier_keyed(&mut params, g, &cfg, salt, |tape, p, _| {
            let w = tape.var(p[0].clone());
            let hc = tape.constant(h.clone());
            (tape.matmul(hc, w), vec![w])
        });
        // lint: allow(panic) reason=params is constructed three lines up with exactly one weight matrix
        self.weight = Some(params.pop().expect("one parameter"));
        report
    }
}

impl NodeClassifier for LinearGcn {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        self.fit_with_propagation(g, &g.propagate(self.hops))
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        self.logits(g).row_argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn linear_surrogate_tracks_gcn_accuracy() {
        let g = DatasetSpec::CoraLike.generate(0.08, 31);
        let mut lin = LinearGcn::new(2, TrainConfig::fast_test());
        lin.fit(&g);
        let acc = lin.test_accuracy(&g);
        assert!(acc > 0.45, "linear surrogate accuracy {acc} too low");
    }

    #[test]
    fn more_hops_changes_predictions() {
        let g = DatasetSpec::CoraLike.generate(0.05, 32);
        let mut l1 = LinearGcn::new(1, TrainConfig::fast_test());
        let mut l3 = LinearGcn::new(3, TrainConfig::fast_test());
        l1.fit(&g);
        l3.fit(&g);
        assert_ne!(l1.predict(&g), l3.predict(&g));
    }

    #[test]
    fn zero_hop_is_plain_logistic_regression() {
        let g = DatasetSpec::CoraLike.generate(0.1, 33);
        let mut l0 = LinearGcn::new(0, TrainConfig::fast_test());
        l0.fit(&g);
        // With class-correlated features this must beat chance (1/7).
        let acc = l0.test_accuracy(&g);
        // Plain logistic regression on the deliberately-noisy features:
        // beating chance (1/7) clearly is the contract.
        assert!(acc > 0.25, "0-hop accuracy {acc} barely above chance");
    }
}
