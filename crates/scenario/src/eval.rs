//! Shared attack generation and repeated-run evaluation — the cell bodies
//! of Tables IV–VIII, lifted out of the bench crate so jobs can run them
//! from any entry point.

use crate::registry::{AttackerKind, DefenderKind};
use bbgnn_attack::AttackResult;
use bbgnn_gnn::eval::MeanStd;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_graph::Graph;

/// Attack rows evaluated by the main tables, including the clean-graph row.
#[derive(Clone, Debug)]
pub enum AttackRow {
    /// No attack (the "Clean Graph" row).
    Clean,
    /// One of the registry attackers.
    Kind(AttackerKind),
}

impl AttackRow {
    /// Clean row plus the five paper attackers at `rate`.
    pub fn paper_rows(rate: f64) -> Vec<AttackRow> {
        let mut rows = vec![AttackRow::Clean];
        rows.extend(
            AttackerKind::paper_rows(rate)
                .into_iter()
                .map(AttackRow::Kind),
        );
        rows
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AttackRow::Clean => "Clean".to_string(),
            AttackRow::Kind(k) => k.name().to_string(),
        }
    }

    /// Produces the graph this row's models are trained on (the poisoned
    /// graph, or a clone of the clean one).
    pub fn poison(&self, g: &Graph) -> (Graph, Option<AttackResult>) {
        match self {
            AttackRow::Clean => (g.clone(), None),
            AttackRow::Kind(kind) => {
                let mut attacker = kind.build();
                let result = attacker.attack(g);
                (result.poisoned.clone(), Some(result))
            }
        }
    }
}

/// Aggregate training health across the repeated runs of one cell,
/// gathered from the per-run [`TrainReport`](bbgnn_gnn::train::TrainReport)s.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalHealth {
    /// Total divergence rollbacks across all runs (recovered: the run still
    /// produced a model, on a halved learning rate).
    pub divergence_recoveries: usize,
    /// Runs whose training aborted at the divergence-recovery cap and kept
    /// the last-good parameters.
    pub diverged_runs: usize,
    /// Runs interrupted by the supervision layer (deadline/budget/cancel):
    /// the accuracy came from the best-so-far snapshot of a truncated
    /// training (DESIGN.md §11).
    pub interrupted_runs: usize,
}

impl EvalHealth {
    /// Whether any run needed a recovery path (the cell's value stands, but
    /// it should be reported as degraded).
    pub fn is_degraded(&self) -> bool {
        self.divergence_recoveries > 0 || self.diverged_runs > 0 || self.interrupted_runs > 0
    }
}

/// Trains `kind` on `g` over `runs` seeds and returns the test-accuracy
/// mean ± std — one cell of Tables IV–VI.
pub fn evaluate_defender(kind: &DefenderKind, g: &Graph, runs: usize, base_seed: u64) -> MeanStd {
    evaluate_defender_checked(kind, g, runs, base_seed).0
}

/// Like [`evaluate_defender`] but also surfaces the training-health
/// aggregate, so the fault-isolated harness can tag cells that only
/// survived via divergence rollback as `degraded`.
pub fn evaluate_defender_checked(
    kind: &DefenderKind,
    g: &Graph,
    runs: usize,
    base_seed: u64,
) -> (MeanStd, EvalHealth) {
    let mut accs = Vec::with_capacity(runs);
    let mut health = EvalHealth::default();
    for r in 0..runs {
        let train = TrainConfig {
            seed: base_seed + r as u64,
            ..TrainConfig::default()
        };
        let mut model = kind.build(train);
        let report = model.fit(g);
        health.divergence_recoveries += report.divergence_recoveries;
        health.diverged_runs += usize::from(report.diverged);
        health.interrupted_runs += usize::from(report.interrupted);
        accs.push(model.test_accuracy(g));
    }
    (MeanStd::of(&accs), health)
}

/// Like [`evaluate_defender`] but also returns the mean training seconds
/// (Table VIII).
pub fn evaluate_defender_timed(
    kind: &DefenderKind,
    g: &Graph,
    runs: usize,
    base_seed: u64,
) -> (MeanStd, MeanStd) {
    let mut accs = Vec::with_capacity(runs);
    let mut secs = Vec::with_capacity(runs);
    for r in 0..runs {
        let train = TrainConfig {
            seed: base_seed + r as u64,
            ..TrainConfig::default()
        };
        let mut model = kind.build(train);
        let start = std::time::Instant::now();
        model.fit(g);
        secs.push(start.elapsed().as_secs_f64());
        accs.push(model.test_accuracy(g));
    }
    (MeanStd::of(&accs), MeanStd::of(&secs))
}

/// Mean ± std of the GCN accuracy on `g` — the single-model evaluation the
/// sensitivity figures use.
pub fn gcn_accuracy(g: &Graph, runs: usize, base_seed: u64) -> MeanStd {
    evaluate_defender(&DefenderKind::Gcn, g, runs, base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn paper_rows_start_with_clean() {
        let rows = AttackRow::paper_rows(0.1);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].name(), "Clean");
        assert_eq!(rows[5].name(), "PEEGA");
    }

    #[test]
    fn clean_row_is_identity() {
        let g = DatasetSpec::CoraLike.generate(0.05, 1);
        let (poisoned, result) = AttackRow::Clean.poison(&g);
        assert!(result.is_none());
        assert_eq!(g.edge_difference(&poisoned), 0);
    }

    #[test]
    fn evaluate_defender_returns_sane_stats() {
        let g = DatasetSpec::CoraLike.generate(0.05, 2);
        let stats = evaluate_defender(&DefenderKind::Gcn, &g, 2, 0);
        assert!(stats.mean > 0.2 && stats.mean <= 1.0);
        assert!(stats.std >= 0.0);
    }
}
