//! Scoped supervision: per-scope cancellation, deadlines, and budget
//! accounting (DESIGN.md §11) — the multi-tenant form of the
//! process-global knobs in the crate root.
//!
//! A [`SupervisionScope`] carries exactly the state the globals do
//! (cancel flag, deadline, epoch/query/memory caps and their used
//! counters), but owned by one logical run instead of the process. A
//! thread **enters** a scope ([`enter`]); while entered, every free
//! function in the crate root ([`stop_reason`](crate::stop_reason),
//! [`check`](crate::check), the `note_*` accounting hooks) consults the
//! entered scope *in addition to* the process-default domain. The
//! process-default domain — the globals the CLI binaries and the signal
//! handler use — always takes precedence, so:
//!
//! * with no scope entered, behavior is byte-identical to the
//!   pre-scope crate: one global domain, period;
//! * SIGINT/SIGTERM ([`request_cancel`](crate::request_cancel)) reaches
//!   every scope — a scoped job cannot outlive the process's will to die;
//! * a process-wide budget (`--deadline` / `--budget`) bounds scoped
//!   work too, while a *scope's* budget or cancel never leaks to a
//!   sibling scope or to the default domain.
//!
//! Scope entry is thread-local. Kernel regions propagate the submitting
//! thread's scope into their pool workers (see
//! `ThreadPool::for_each_row_band`), so check sites reached from inside
//! a parallel region — the GF-Attack eigensolver exception of §11 —
//! observe the same scope as the thread that launched the region.

use crate::{RunBudget, Stop, UNSET};
use bbgnn_errors::BbgnnResult;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-scope supervision state: one logical run's cancel flag, budget
/// caps, and accounting counters.
///
/// Constructed with [`SupervisionScope::new`] (an `Arc`, because the
/// scope is shared between the thread running the work and whoever may
/// cancel or observe it — in `bbgnn-serve`, the HTTP threads). All
/// operations are atomic loads/stores; a scope is safe to poke from any
/// thread.
pub struct SupervisionScope {
    /// Scope gate: accounting and stop checks are live. Set by
    /// [`activate`](Self::activate), [`install_budget`](Self::install_budget),
    /// and [`cancel`](Self::cancel).
    active: AtomicBool,
    cancelled: AtomicBool,
    /// Deadline as nanoseconds since the process [`anchor`](crate::anchor);
    /// `UNSET` = none.
    deadline_nanos: AtomicU64,
    deadline_limit_secs: AtomicU64,
    epoch_cap: AtomicU64,
    query_cap: AtomicU64,
    mem_cap: AtomicU64,
    epochs_used: AtomicU64,
    queries_used: AtomicU64,
    peak_bytes: AtomicU64,
    stop_announced: AtomicBool,
}

impl SupervisionScope {
    /// A fresh, inactive scope. Until it is activated, cancelled, or
    /// given a budget, entering it changes nothing observable.
    pub fn new() -> Arc<SupervisionScope> {
        Arc::new(SupervisionScope {
            active: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            deadline_nanos: AtomicU64::new(UNSET),
            deadline_limit_secs: AtomicU64::new(UNSET),
            epoch_cap: AtomicU64::new(UNSET),
            query_cap: AtomicU64::new(UNSET),
            mem_cap: AtomicU64::new(UNSET),
            epochs_used: AtomicU64::new(0),
            queries_used: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            stop_announced: AtomicBool::new(false),
        })
    }

    /// Turns accounting on without installing any cap: the `note_*`
    /// hooks record into this scope from here on, so progress counters
    /// (`bbgnn-serve`'s `GET /jobs/:id` and SSE snapshots) are populated
    /// even for an unbudgeted job. Stop checks stay vacuous (nothing to
    /// trip).
    pub fn activate(&self) {
        self.active.store(true, Ordering::Relaxed);
    }

    /// Whether this scope participates in checks/accounting at all.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Requests cooperative cancellation of this scope only. Siblings
    /// and the process-default domain are untouched. Idempotent; atomic
    /// stores only.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
        self.active.store(true, Ordering::Relaxed);
    }

    /// Whether this scope (or the whole process) was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || crate::cancel_requested()
    }

    /// Installs `budget` into this scope. An empty budget is a no-op.
    /// The deadline clock starts now. Mirrors
    /// [`install_budget`](crate::install_budget), scoped.
    pub fn install_budget(&self, budget: &RunBudget) {
        if budget.is_empty() {
            return;
        }
        if let Some(d) = budget.deadline {
            let at = crate::anchor().elapsed() + d;
            self.deadline_nanos.store(
                u64::try_from(at.as_nanos()).unwrap_or(UNSET - 1),
                Ordering::Relaxed,
            );
            self.deadline_limit_secs
                .store(d.as_secs(), Ordering::Relaxed);
        }
        if let Some(e) = budget.epochs {
            self.epoch_cap.store(e, Ordering::Relaxed);
        }
        if let Some(q) = budget.queries {
            self.query_cap.store(q, Ordering::Relaxed);
        }
        if let Some(m) = budget.mem_bytes {
            self.mem_cap.store(m, Ordering::Relaxed);
        }
        self.active.store(true, Ordering::Relaxed);
    }

    /// The scoped check: first the process-default domain (global
    /// cancel *and* global budget — SIGINT and `--deadline` bound scoped
    /// work too), then this scope's own cancel/budget state. Announces
    /// the stop once per domain on the obs stream, exactly like
    /// [`stop_reason`](crate::stop_reason).
    pub fn stop_reason(&self, site: &str) -> Option<Stop> {
        if crate::global_active() {
            if let Some(stop) = crate::global_stop_slow() {
                crate::announce_once(crate::global_announce_flag(), site, &stop);
                return Some(stop);
            }
        }
        if !self.is_active() {
            return None;
        }
        let stop = self.local_stop()?;
        crate::announce_once(&self.stop_announced, site, &stop);
        Some(stop)
    }

    /// [`stop_reason`](Self::stop_reason) as a `Result`, naming the
    /// check site.
    pub fn check(&self, site: &str) -> BbgnnResult<()> {
        match self.stop_reason(site) {
            None => Ok(()),
            Some(stop) => Err(stop.into_error(site)),
        }
    }

    /// This scope's own stop state (no global domain, no announce):
    /// cancel first, then each cap against this scope's counters.
    pub(crate) fn local_stop(&self) -> Option<Stop> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(Stop::Cancelled);
        }
        let deadline = self.deadline_nanos.load(Ordering::Relaxed);
        if deadline != UNSET {
            let now = u64::try_from(crate::anchor().elapsed().as_nanos()).unwrap_or(u64::MAX);
            if now >= deadline {
                return Some(Stop::Budget {
                    resource: "deadline",
                    limit: self.deadline_limit_secs.load(Ordering::Relaxed),
                });
            }
        }
        let epoch_cap = self.epoch_cap.load(Ordering::Relaxed);
        if epoch_cap != UNSET && self.epochs_used.load(Ordering::Relaxed) >= epoch_cap {
            return Some(Stop::Budget {
                resource: "epochs",
                limit: epoch_cap,
            });
        }
        let query_cap = self.query_cap.load(Ordering::Relaxed);
        if query_cap != UNSET && self.queries_used.load(Ordering::Relaxed) >= query_cap {
            return Some(Stop::Budget {
                resource: "queries",
                limit: query_cap,
            });
        }
        let mem_cap = self.mem_cap.load(Ordering::Relaxed);
        if mem_cap != UNSET && self.peak_bytes.load(Ordering::Relaxed) > mem_cap {
            return Some(Stop::Budget {
                resource: "memory",
                limit: mem_cap,
            });
        }
        None
    }

    pub(crate) fn announce_flag(&self) -> &AtomicBool {
        &self.stop_announced
    }

    pub(crate) fn add_epochs(&self, n: u64) {
        self.epochs_used.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_queries(&self, n: u64) {
        self.queries_used.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn max_mem(&self, peak: u64) {
        self.peak_bytes.fetch_max(peak, Ordering::Relaxed);
    }

    /// Training epochs recorded into this scope.
    pub fn epochs_used(&self) -> u64 {
        self.epochs_used.load(Ordering::Relaxed)
    }

    /// Attack queries recorded into this scope.
    pub fn queries_used(&self) -> u64 {
        self.queries_used.load(Ordering::Relaxed)
    }

    /// Largest `Workspace` high-water mark recorded into this scope.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SupervisionScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisionScope")
            .field("active", &self.is_active())
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .field("epochs_used", &self.epochs_used())
            .field("queries_used", &self.queries_used())
            .finish()
    }
}

thread_local! {
    /// The scope the current thread has entered, if any.
    static CURRENT: RefCell<Option<Arc<SupervisionScope>>> = const { RefCell::new(None) };
}

/// Restores the previously-entered scope (or none) on drop.
#[must_use = "the scope is exited when the guard drops; bind it (`let _scope = ...`)"]
pub struct ScopeGuard {
    prev: Option<Arc<SupervisionScope>>,
    restored: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.restored {
            return;
        }
        self.restored = true;
        let prev = self.prev.take();
        let _ = CURRENT.try_with(|c| *c.borrow_mut() = prev);
    }
}

/// Enters `scope` on the current thread until the returned guard drops.
/// Nested entries restore the outer scope on exit.
pub fn enter(scope: &Arc<SupervisionScope>) -> ScopeGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(scope)));
    ScopeGuard {
        prev,
        restored: false,
    }
}

/// The scope the current thread has entered, if any. Kernel regions use
/// this to propagate the submitting thread's scope into pool workers.
pub fn current_scope() -> Option<Arc<SupervisionScope>> {
    CURRENT.try_with(|c| c.borrow().clone()).ok().flatten()
}

/// Whether the current thread's entered scope (if any) is active — the
/// scoped half of [`enabled`](crate::enabled).
pub(crate) fn current_is_active() -> bool {
    CURRENT
        .try_with(|c| c.borrow().as_ref().is_some_and(|s| s.is_active()))
        .unwrap_or(false)
}

/// Runs `f` against the current thread's entered scope, if any.
pub(crate) fn with_current<F: FnOnce(&SupervisionScope)>(f: F) {
    let _ = CURRENT.try_with(|c| {
        if let Some(scope) = c.borrow().as_ref() {
            f(scope);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;
    use crate::{check, note_epochs, request_cancel, shutdown, stop_reason};

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        shutdown();
        guard
    }

    #[test]
    fn inactive_scope_changes_nothing() {
        let _g = locked();
        let scope = SupervisionScope::new();
        let _e = enter(&scope);
        assert!(!crate::enabled());
        assert!(stop_reason("test/site").is_none());
        assert!(check("test/site").is_ok());
    }

    #[test]
    fn scope_cancel_stops_only_the_entered_scope() {
        let _g = locked();
        let a = SupervisionScope::new();
        let b = SupervisionScope::new();
        a.cancel();
        {
            let _e = enter(&a);
            assert_eq!(stop_reason("test/site"), Some(Stop::Cancelled));
        }
        {
            let _e = enter(&b);
            assert!(stop_reason("test/site").is_none(), "sibling unaffected");
        }
        // No scope entered: the default domain never saw the cancel.
        assert!(stop_reason("test/site").is_none());
        assert!(!crate::cancel_requested());
    }

    #[test]
    fn scope_budget_counts_only_scoped_work() {
        let _g = locked();
        let scope = SupervisionScope::new();
        scope.install_budget(&RunBudget {
            epochs: Some(5),
            ..Default::default()
        });
        {
            let _e = enter(&scope);
            note_epochs(5);
            assert!(matches!(
                stop_reason("train/epoch"),
                Some(Stop::Budget {
                    resource: "epochs",
                    ..
                })
            ));
        }
        assert_eq!(scope.epochs_used(), 5);
        // Outside the scope the default domain has no cap to trip.
        assert!(stop_reason("train/epoch").is_none());
    }

    #[test]
    fn global_cancel_reaches_entered_scopes() {
        let _g = locked();
        let scope = SupervisionScope::new();
        let _e = enter(&scope);
        request_cancel();
        assert_eq!(stop_reason("test/site"), Some(Stop::Cancelled));
        assert!(scope.is_cancelled(), "SIGINT must reach scoped work");
        shutdown();
    }

    #[test]
    fn nested_enter_restores_the_outer_scope() {
        let _g = locked();
        let outer = SupervisionScope::new();
        let inner = SupervisionScope::new();
        let _o = enter(&outer);
        {
            let _i = enter(&inner);
            assert!(Arc::ptr_eq(&current_scope().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&current_scope().unwrap(), &outer));
    }

    #[test]
    fn scoped_check_surfaces_taxonomy_errors() {
        let _g = locked();
        let scope = SupervisionScope::new();
        scope.cancel();
        let err = scope.check("job/run").unwrap_err();
        assert!(err.is_supervision_stop());
        assert!(scope.stop_reason("job/run").is_some());
    }
}
