//! The single dataset-resolution path every entry point shares.
//!
//! Binaries and the server used to each hand-roll "is this a known name,
//! else a directory?" logic (or just `assert!` on unknown names). This
//! module centralizes both steps:
//!
//! * [`paper_specs`] — the `--dataset` filter over the paper's three
//!   calibrated synthetic datasets, with unknown names reported as
//!   [`InvalidConfig`](BbgnnError::InvalidConfig) instead of a panic;
//! * [`load_dataset`] — known names generate the synthetic graph;
//!   anything else is treated as a dataset directory and read through
//!   [`bbgnn_graph::datasets::io::load`], so a truncated or corrupt dir
//!   surfaces the same [`DatasetIo`](BbgnnError::DatasetIo) error (path +
//!   cause) no matter which binary or endpoint asked for it.

use bbgnn_errors::{BbgnnError, BbgnnResult};
use bbgnn_graph::datasets::DatasetSpec;
use bbgnn_graph::Graph;
use std::path::Path;

/// The paper's datasets, optionally filtered by a `--dataset` value.
/// `None` keeps all three; an unknown filter is an
/// [`InvalidConfig`](BbgnnError::InvalidConfig) naming `--dataset`.
pub fn paper_specs(filter: Option<&str>) -> BbgnnResult<Vec<DatasetSpec>> {
    let specs: Vec<DatasetSpec> = DatasetSpec::paper_datasets()
        .into_iter()
        .filter(|s| filter.map_or(true, |d| d == s.name()))
        .collect();
    if specs.is_empty() {
        return Err(BbgnnError::InvalidConfig {
            what: "--dataset".to_string(),
            message: format!(
                "unknown dataset {:?}; use cora|citeseer|polblogs or a dataset directory",
                filter.unwrap_or("")
            ),
        });
    }
    Ok(specs)
}

/// The known-name spec for `source`, if it names a paper dataset.
pub fn spec_for(source: &str) -> Option<DatasetSpec> {
    DatasetSpec::paper_datasets()
        .into_iter()
        .find(|s| s.name() == source)
}

/// Resolves `source` to a graph: a paper dataset name
/// (`cora|citeseer|polblogs`) generates the calibrated synthetic graph at
/// `scale`/`seed`; anything else is read as a dataset directory, with
/// malformed or truncated contents reported as
/// [`DatasetIo`](BbgnnError::DatasetIo) (the PR-1 error path) from every
/// entry point alike.
pub fn load_dataset(source: &str, scale: f64, seed: u64) -> BbgnnResult<Graph> {
    match spec_for(source) {
        Some(spec) => Ok(spec.generate(scale, seed)),
        None => bbgnn_graph::datasets::io::load(Path::new(source)),
    }
}

/// Whether graphs from `source` use identity features (the Polblogs
/// convention that drops GCN-Jaccard and GNAT's feature view). Directory
/// datasets report `false`; their feature encoding is whatever the files
/// say, and the caller picks defender configs explicitly.
pub fn identity_features(source: &str) -> bool {
    spec_for(source).is_some_and(|s| s.identity_features())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_filters_and_rejects_unknown() {
        assert_eq!(paper_specs(None).unwrap().len(), 3);
        let one = paper_specs(Some("cora")).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), "cora");
        match paper_specs(Some("ogbn-arxiv")) {
            Err(BbgnnError::InvalidConfig { what, message }) => {
                assert_eq!(what, "--dataset");
                assert!(message.contains("ogbn-arxiv"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn known_names_generate_deterministically() {
        let a = load_dataset("cora", 0.05, 7).unwrap();
        let b = load_dataset("cora", 0.05, 7).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.num_nodes() > 0);
    }

    #[test]
    fn directory_round_trips_through_io() {
        let dir = std::env::temp_dir().join("bbgnn_scenario_ds_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let g = DatasetSpec::CoraLike.generate(0.05, 3);
        bbgnn_graph::datasets::io::save(&g, &dir).unwrap();
        let loaded = load_dataset(&dir.display().to_string(), 0.0, 0).unwrap();
        assert_eq!(loaded.num_nodes(), g.num_nodes());
        assert_eq!(loaded.num_edges(), g.num_edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_dir_reports_dataset_io_with_path() {
        // A dataset dir missing everything past meta.txt — the truncated
        // download / partial copy case. The error must be DatasetIo naming
        // the missing file, identically from every entry point.
        let dir = std::env::temp_dir().join("bbgnn_scenario_ds_truncated");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("meta.txt"), "10 2 4\n").unwrap();
        match load_dataset(&dir.display().to_string(), 0.12, 7) {
            Err(BbgnnError::DatasetIo { path, .. }) => {
                assert!(path.contains("edges.txt"), "names the missing file: {path}");
            }
            other => panic!("expected DatasetIo, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_reports_dataset_io_not_panic() {
        match load_dataset("/nonexistent/bbgnn-ds", 0.1, 1) {
            Err(BbgnnError::DatasetIo { path, .. }) => assert!(path.contains("bbgnn-ds")),
            other => panic!("expected DatasetIo, got {other:?}"),
        }
    }

    #[test]
    fn identity_features_follows_the_spec() {
        assert!(!identity_features("cora"));
        assert!(identity_features("polblogs"));
        assert!(!identity_features("/some/dir"));
    }
}
