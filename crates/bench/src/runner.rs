//! Re-export shim: the attack-row and repeated-run evaluation logic moved
//! to [`bbgnn_scenario::eval`] (PR 7) so jobs and the server can run the
//! same cell bodies. The historical `bbgnn_bench::runner::*` paths keep
//! working through this re-export.

pub use bbgnn_scenario::eval::*;
