//! Blocked, multi-threaded execution kernels and the [`ExecContext`]
//! workspace arena.
//!
//! Every experiment in the paper — PEEGA's perturbation-effect scoring,
//! Metattack's meta-gradients, GNAT/Pro-GNN training — bottoms out in dense
//! matmul and SpMM. This module is the single place those products are
//! computed:
//!
//! * [`matmul_into`] / [`matmul_tn_into`] / [`matmul_nt_into`] — cache
//!   blocked (tiled) dense products, row-partitioned across a hand-rolled
//!   scoped [`ThreadPool`] built on `std::thread` only.
//! * [`spmm_into`] — row-partitioned sparse × dense product.
//! * [`Workspace`] — a buffer arena keyed by exact length so hot paths
//!   (autodiff tape epochs, attack candidate loops) reuse allocations
//!   instead of hitting the global allocator per op.
//! * [`ExecContext`] — bundles a pool and a workspace; shared via
//!   `Rc<ExecContext>` through the autodiff tape, GNN training loops, and
//!   attacker surrogate-gradient loops.
//!
//! # Determinism contract
//!
//! All kernels are **bitwise deterministic in the thread count**: an
//! `N`-thread run, a 1-thread run, and the naive reference loops
//! ([`matmul_ref`] and friends) produce bit-identical outputs. This holds
//! because threads partition only *disjoint output rows* and, for every
//! output element, the floating-point accumulation order over the inner
//! dimension is the same ascending-`k` order the reference kernels use.
//! No reduction ever crosses a thread boundary. Consequently
//! `BBGNN_THREADS=1` and `BBGNN_THREADS=64` runs of any experiment produce
//! byte-identical checkpoints, tables, and figures.
//!
//! `spmm_t` (the backward pass of SpMM) scatters into output rows indexed
//! by *column*, so disjoint row partitioning does not apply; it stays
//! sequential by design rather than trade determinism for atomics.
//!
//! # Thread count
//!
//! [`env_threads`] reads `BBGNN_THREADS` once per process (cached), falling
//! back to the machine's available parallelism. Invalid or zero values fall
//! back to the default; `bench::config` additionally validates the variable
//! strictly for experiment binaries.

use crate::{CsrMatrix, DenseMatrix};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::rc::Rc;
use std::sync::OnceLock;

/// k-dimension tile so a block of `b` rows stays in cache across the band.
pub const BLOCK_K: usize = 128;
/// j-dimension tile bounding the working set of wide right-hand sides.
pub const BLOCK_J: usize = 512;

/// Minimum flop count before a kernel fans out across threads; below this
/// the `thread::scope` spawn cost dominates.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Minimum items per worker chunk in [`ThreadPool::map_fold`]; smaller
/// scans run sequentially.
const MIN_CHUNK_ITEMS: usize = 1024;

/// Default thread count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Thread count from the `BBGNN_THREADS` env var, read once per process.
///
/// Unset, unparsable, or zero values fall back to [`default_threads`].
/// Because the value is cached, changing the variable mid-process has no
/// effect; pass an explicit count to [`ExecContext::new`] instead.
pub fn env_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("BBGNN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(default_threads)
    })
}

/// Deterministic `fault/pool_panic` injection site (DESIGN.md §11): run as
/// the first statement of every spawned pool worker. When the installed
/// fault plan says this invocation fires, the worker panics — the panic
/// propagates through `thread::scope` to the calling thread, where the
/// harness's cell boundary converts it to `ExperimentAborted` (never a
/// hang). One relaxed load when no fault plan is installed.
#[inline]
fn maybe_injected_worker_panic() {
    if bbgnn_supervise::fault_at("fault/pool_panic").is_some() {
        // lint: allow(panic) reason=deterministic chaos-test injection site; fires only under an explicit BBGNN_FAULTS plan and must propagate as a worker panic
        panic!("injected fault: pool worker panic (fault/pool_panic)");
    }
}

/// A hand-rolled scoped thread pool.
///
/// Workers are spawned per parallel region with `std::thread::scope`, which
/// keeps the pool dependency-free and lifetime-safe (no `unsafe`, no
/// channels): borrowed inputs flow into worker closures directly. Spawn
/// cost is a few microseconds per region, negligible against the
/// megaflop-scale regions gated by the work thresholds.
///
/// Pool regions are *accounting* sites for the supervision layer
/// (fault injection, workspace memory high-water marks), not stop sites:
/// a region that has started always runs to completion, because stopping
/// mid-region would change which bits a completing kernel writes and
/// break the determinism contract. Cancellation and budget checks live at
/// the loop boundaries *around* kernel calls (epochs, sweeps, restarts).
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running work on `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `out` — a row-major `rows × row_len` buffer — into contiguous
    /// per-worker row bands and runs `body(first_row, band)` on each band
    /// concurrently. With `parallel == false` (or one worker) the single
    /// band is the whole buffer, run on the calling thread.
    ///
    /// Bands are disjoint, so `body` needs no synchronization; output
    /// placement is identical for every worker count.
    pub fn for_each_row_band<F>(&self, out: &mut [f64], row_len: usize, parallel: bool, body: F)
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        let rows = out.len().checked_div(row_len).unwrap_or(0);
        let workers = if parallel {
            self.threads.min(rows.max(1))
        } else {
            1
        };
        if workers <= 1 {
            body(0, out);
            return;
        }
        // Worker utilization: per-worker busy time lands in each scoped
        // thread's counter aggregate (drained when the thread exits);
        // region wall time accrues on the calling thread. Report-side,
        // utilization = busy_ns / (region_ns * threads).
        let traced = bbgnn_obs::enabled();
        let region = bbgnn_obs::kernel_timer("pool/region");
        // Pool workers inherit the submitting thread's supervision scope,
        // so check sites reached from inside a region (the GF-Attack
        // eigensolver exception, §11) observe the right tenant.
        let supervision = bbgnn_supervise::current_scope();
        let band = rows.div_ceil(workers);
        std::thread::scope(|scope| {
            for (b, chunk) in out.chunks_mut(band * row_len).enumerate() {
                let body = &body;
                let supervision = supervision.as_ref();
                scope.spawn(move || {
                    maybe_injected_worker_panic();
                    let _scope = supervision.map(bbgnn_supervise::enter);
                    let _busy = traced.then(|| bbgnn_obs::kernel_timer("pool/worker_busy"));
                    body(b * band, chunk)
                });
            }
        });
        drop(region);
    }

    /// Deterministic parallel map-reduce over `0..items`.
    ///
    /// `map` runs on contiguous index ranges (one per worker); the partial
    /// results are folded **in ascending chunk order** on the calling
    /// thread, so any `fold` that is associative over adjacent ranges —
    /// e.g. a first-max argmax with strict `>` — yields the exact
    /// sequential result regardless of worker count. Scans smaller than a
    /// chunk threshold run sequentially. Returns `None` when `items == 0`.
    pub fn map_fold<T, M, F>(&self, items: usize, map: M, fold: F) -> Option<T>
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        self.map_fold_chunked(items, MIN_CHUNK_ITEMS, map, fold)
    }

    /// [`map_fold`](Self::map_fold) for heavyweight items: every worker
    /// gets a chunk regardless of the item count. Use when a single item
    /// is itself expensive (a spectral recomputation, a model retrain)
    /// so the per-spawn cost is negligible against the item cost. Same
    /// determinism contract as `map_fold`.
    pub fn map_fold_coarse<T, M, F>(&self, items: usize, map: M, fold: F) -> Option<T>
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        self.map_fold_chunked(items, 1, map, fold)
    }

    fn map_fold_chunked<T, M, F>(
        &self,
        items: usize,
        min_chunk: usize,
        map: M,
        mut fold: F,
    ) -> Option<T>
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        if items == 0 {
            return None;
        }
        let workers = self
            .threads
            .min(items.div_ceil(min_chunk.max(1)))
            .clamp(1, items);
        if workers == 1 {
            return Some(map(0..items));
        }
        let chunk = items.div_ceil(workers);
        let mut bounds = Vec::with_capacity(workers);
        let mut lo = 0;
        while lo < items {
            let hi = (lo + chunk).min(items);
            bounds.push(lo..hi);
            lo = hi;
        }
        let traced = bbgnn_obs::enabled();
        let _region = bbgnn_obs::kernel_timer("pool/region");
        // Same scope propagation as `for_each_row_band`: map closures may
        // reach supervised check sites (GF-Attack rescoring, §11).
        let supervision = bbgnn_supervise::current_scope();
        let parts: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .into_iter()
                .map(|range| {
                    let map = &map;
                    let supervision = supervision.as_ref();
                    scope.spawn(move || {
                        maybe_injected_worker_panic();
                        let _scope = supervision.map(bbgnn_supervise::enter);
                        let _busy = traced.then(|| bbgnn_obs::kernel_timer("pool/worker_busy"));
                        map(range)
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(panic) reason=a worker panic is already a bug in the map closure; re-raising on the caller thread is the only sound option (a default value would silently poison the deterministic fold)
                .map(|h| h.join().expect("kernel worker panicked"))
                .collect()
        });
        let mut it = parts.into_iter();
        let first = it.next()?;
        Some(it.fold(first, &mut fold))
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new(env_threads())
    }
}

// ---------------------------------------------------------------------------
// Reference kernels (naive single-threaded loops).
// ---------------------------------------------------------------------------

/// Naive `ikj` reference matmul — the loop the blocked kernel must match
/// bitwise. Kept for parity tests and the kernel microbenchmark.
pub fn matmul_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "matmul dimension mismatch: {m}x{ka} * {kb}x{n}");
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for j in 0..n {
                out_row[j] += aik * b_row[j];
            }
        }
    }
    out
}

/// Naive reference for `a^T * b`.
pub fn matmul_tn_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, c) = a.shape();
    assert_eq!(m, b.rows(), "matmul_tn dimension mismatch");
    let n = b.cols();
    let mut out = DenseMatrix::zeros(c, n);
    for k in 0..m {
        let a_row = a.row(k);
        let b_row = b.row(k);
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for j in 0..n {
                out_row[j] += aki * b_row[j];
            }
        }
    }
    out
}

/// Naive reference for `a * b^T`.
pub fn matmul_nt_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, c) = a.shape();
    assert_eq!(c, b.cols(), "matmul_nt dimension mismatch");
    let r = b.rows();
    let mut out = DenseMatrix::zeros(m, r);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for k in 0..c {
                acc += a_row[k] * b_row[k];
            }
            *o = acc;
        }
    }
    out
}

/// Naive reference for sparse × dense `s * b`.
pub fn spmm_ref(s: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(s.cols(), b.rows(), "spmm dimension mismatch");
    let n = b.cols();
    let mut out = DenseMatrix::zeros(s.rows(), n);
    for i in 0..s.rows() {
        let out_row = out.row_mut(i);
        for (c, v) in s.row_iter(i) {
            let b_row = b.row(c);
            for j in 0..n {
                out_row[j] += v * b_row[j];
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Blocked / threaded kernels.
// ---------------------------------------------------------------------------

/// Width of the register tile: output elements held in local accumulators
/// across a whole `k` block, so the output row is loaded and stored once per
/// `(k` block, tile`)` instead of once per `k` step. 8 doubles = two AVX2
/// vectors of accumulators, leaving registers free for the `b` stream.
const TILE_J: usize = 8;

/// Register-tiled row update: `out_row[j0..j1] += a_blk · b_blk[.., j0..j1]`
/// where `a_blk` is a contiguous `k` segment of one `a` row and `b_blk`
/// holds the matching `b` rows (stride `n`, starting at the segment's first
/// row). A tile of [`TILE_J`] output elements stays in local accumulators
/// across the whole segment. Per output element the accumulation is still
/// ascending-`k` with the same `aik == 0.0` skip as [`matmul_ref`], so the
/// result is bitwise identical to the naive loop.
#[inline]
fn saxpy_row_block(
    a_blk: &[f64],
    b_blk: &[f64],
    out_row: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just checked (std caches the CPUID
            // probe), which discharges the `#[target_feature]` obligation —
            // the callee body is safe code whose accesses are all
            // bounds-checked slice ops on the caller's disjoint output row.
            // The AVX2 build of the kernel only widens the lanes the
            // compiler may use across *different* output elements; the
            // per-element operation sequence is unchanged and rustc never
            // contracts mul+add into FMA, so the result is bitwise
            // identical to the scalar build.
            unsafe { saxpy_row_block_avx2(a_blk, b_blk, out_row, n, j0, j1) };
            return;
        }
    }
    saxpy_row_block_impl(a_blk, b_blk, out_row, n, j0, j1);
}

/// The tile kernel compiled with AVX2 codegen enabled, dispatched at
/// runtime by [`saxpy_row_block`]. Same source, wider vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe` only because of `#[target_feature]` — the body is the
// safe `saxpy_row_block_impl`, whose every access is slice-indexed
// (bounds-checked): `b_blk.chunks_exact(n)` never reads past `b_blk`, and
// `out_row[j..j + TILE_J]` panics rather than overruns if a caller passes
// an undersized row. The caller's only obligation is AVX2 support, checked
// at the single dispatch site.
unsafe fn saxpy_row_block_avx2(
    a_blk: &[f64],
    b_blk: &[f64],
    out_row: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    saxpy_row_block_impl(a_blk, b_blk, out_row, n, j0, j1);
}

/// Rows processed together by the quad-row kernel. Four rows × [`TILE_J`]
/// columns gives eight independent vector accumulator chains — enough to
/// hide FP add latency on one core — and amortizes each `b` tile load over
/// four rows.
const TILE_R: usize = 4;

/// Quad-row register-tiled update: `out4` holds [`TILE_R`] consecutive
/// output rows (contiguous, stride `n`), `a_blks` the matching `k` segments
/// of the four `a` rows. Each output element still accumulates in
/// ascending-`k` order with the reference's zero skip — bitwise identical
/// to four successive [`saxpy_row_block`] calls.
#[inline]
fn saxpy_quad_block(
    a_blks: [&[f64]; TILE_R],
    b_blk: &[f64],
    out4: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just checked (std caches the CPUID
            // probe), which discharges the `#[target_feature]` obligation —
            // the callee body is safe code indexing only the caller's four
            // disjoint-band output rows through bounds-checked slice ops;
            // see `saxpy_row_block` for why codegen width cannot change the
            // bits.
            unsafe { saxpy_quad_block_avx2(a_blks, b_blk, out4, n, j0, j1) };
            return;
        }
    }
    saxpy_quad_block_impl(a_blks, b_blk, out4, n, j0, j1);
}

/// The quad-row kernel compiled with AVX2 codegen enabled, dispatched at
/// runtime by [`saxpy_quad_block`]. Same source, wider vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe` only because of `#[target_feature]` — the body is the
// safe `saxpy_quad_block_impl`: `out4` is indexed with `q * n + j` for
// `q < TILE_R`, `j + TILE_J <= j1 <= n`, all through bounds-checked slice
// ops, and the four `a_blks` rows come from the caller's disjoint row
// band, so no access can alias another worker's rows. The caller's only
// obligation is AVX2 support, checked at the single dispatch site.
unsafe fn saxpy_quad_block_avx2(
    a_blks: [&[f64]; TILE_R],
    b_blk: &[f64],
    out4: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    saxpy_quad_block_impl(a_blks, b_blk, out4, n, j0, j1);
}

#[inline(always)]
fn saxpy_quad_block_impl(
    a_blks: [&[f64]; TILE_R],
    b_blk: &[f64],
    out4: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    let mut j = j0;
    while j + TILE_J <= j1 {
        let mut acc = [[0.0f64; TILE_J]; TILE_R];
        for (q, acc_q) in acc.iter_mut().enumerate() {
            acc_q.copy_from_slice(&out4[q * n + j..q * n + j + TILE_J]);
        }
        for (k, b_row) in b_blk.chunks_exact(n).enumerate() {
            // lint: allow(panic) reason=the loop guard pins j + TILE_J <= j1 <= n, so the slice is exactly TILE_J long and the conversion cannot fail
            let b: &[f64; TILE_J] = b_row[j..j + TILE_J].try_into().unwrap();
            for (q, acc_q) in acc.iter_mut().enumerate() {
                let aik = a_blks[q][k];
                if aik == 0.0 {
                    continue;
                }
                for t in 0..TILE_J {
                    acc_q[t] += aik * b[t];
                }
            }
        }
        for (q, acc_q) in acc.iter().enumerate() {
            out4[q * n + j..q * n + j + TILE_J].copy_from_slice(acc_q);
        }
        j += TILE_J;
    }
    if j < j1 {
        for (q, a_blk) in a_blks.iter().enumerate() {
            for (&aik, b_row) in a_blk.iter().zip(b_blk.chunks_exact(n)) {
                if aik == 0.0 {
                    continue;
                }
                for (o, &bv) in out4[q * n + j..q * n + j1].iter_mut().zip(&b_row[j..j1]) {
                    *o += aik * bv;
                }
            }
        }
    }
}

#[inline(always)]
fn saxpy_row_block_impl(
    a_blk: &[f64],
    b_blk: &[f64],
    out_row: &mut [f64],
    n: usize,
    j0: usize,
    j1: usize,
) {
    let mut j = j0;
    while j + TILE_J <= j1 {
        let mut acc = [0.0f64; TILE_J];
        acc.copy_from_slice(&out_row[j..j + TILE_J]);
        for (&aik, b_row) in a_blk.iter().zip(b_blk.chunks_exact(n)) {
            if aik == 0.0 {
                continue;
            }
            // Fixed-size view: one length check, then check-free indexing
            // the compiler keeps entirely in vector registers.
            // lint: allow(panic) reason=the loop guard pins j + TILE_J <= j1 <= n, so the slice is exactly TILE_J long and the conversion cannot fail
            let b: &[f64; TILE_J] = b_row[j..j + TILE_J].try_into().unwrap();
            for t in 0..TILE_J {
                acc[t] += aik * b[t];
            }
        }
        out_row[j..j + TILE_J].copy_from_slice(&acc);
        j += TILE_J;
    }
    if j < j1 {
        for (&aik, b_row) in a_blk.iter().zip(b_blk.chunks_exact(n)) {
            if aik == 0.0 {
                continue;
            }
            for (o, &bv) in out_row[j..j1].iter_mut().zip(&b_row[j..j1]) {
                *o += aik * bv;
            }
        }
    }
}

/// Deterministic `fault/kernel_nan` injection site (DESIGN.md §11): when
/// the installed fault plan fires, one seeded-deterministically-chosen
/// entry of the kernel output is poisoned to NaN after the kernel
/// completes, exactly as a numeric overflow would surface. The NaN then
/// travels the normal divergence-detection path
/// (`BbgnnError::NumericalDivergence`). One relaxed load when off.
#[inline]
fn maybe_poison_kernel_output(out: &mut DenseMatrix) {
    if let Some(shot) = bbgnn_supervise::fault_at("fault/kernel_nan") {
        let idx = shot.pick(out.as_slice().len());
        if let Some(v) = out.as_mut_slice().get_mut(idx) {
            *v = f64::NAN;
        }
    }
}

/// Blocked, row-partitioned `out = a * b`.
///
/// `out` is fully overwritten (no pre-zeroing needed). Bitwise identical to
/// [`matmul_ref`] for every thread count: per output element the `k`
/// accumulation runs in ascending order with the same `aik == 0.0` skip
/// (adding `aik * b` for `aik == 0` is a bitwise no-op on a `+0.0`-seeded
/// accumulator, so the skip never changes a bit).
///
/// # Panics
/// Panics on shape mismatch between `a`, `b`, and `out`.
pub fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix, pool: &ThreadPool) {
    let _t = bbgnn_obs::kernel_timer("kernel/matmul");
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "matmul dimension mismatch: {m}x{ka} * {kb}x{n}");
    assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");
    let parallel = 2usize
        .saturating_mul(m)
        .saturating_mul(ka)
        .saturating_mul(n)
        >= PAR_MIN_FLOPS;
    let adata = a.as_slice();
    let bdata = b.as_slice();
    pool.for_each_row_band(out.as_mut_slice(), n, parallel, |row0, band| {
        band.fill(0.0);
        if n == 0 {
            return;
        }
        let rows_here = band.len() / n;
        let mut k0 = 0;
        while k0 < ka {
            let k1 = (k0 + BLOCK_K).min(ka);
            let b_blk = &bdata[k0 * n..k1 * n];
            let mut j0 = 0;
            while j0 < n.max(1) {
                let j1 = (j0 + BLOCK_J).min(n);
                let a_blk = |r: usize| &adata[(row0 + r) * ka + k0..(row0 + r) * ka + k1];
                let mut r = 0;
                while r + TILE_R <= rows_here {
                    let out4 = &mut band[r * n..(r + TILE_R) * n];
                    saxpy_quad_block(
                        [a_blk(r), a_blk(r + 1), a_blk(r + 2), a_blk(r + 3)],
                        b_blk,
                        out4,
                        n,
                        j0,
                        j1,
                    );
                    r += TILE_R;
                }
                while r < rows_here {
                    let out_row = &mut band[r * n..(r + 1) * n];
                    saxpy_row_block(a_blk(r), b_blk, out_row, n, j0, j1);
                    r += 1;
                }
                j0 = j1.max(j0 + 1);
            }
            k0 = k1;
        }
    });
    maybe_poison_kernel_output(out);
}

/// Row-partitioned `out = a^T * b` without materializing the transpose.
///
/// Each output row is a column of `a`; the column is gathered into a
/// contiguous per-block buffer and fed to the same register-tiled kernel as
/// [`matmul_into`]. Per output element accumulation stays ascending in `k`
/// (blocks ascend, `k` ascends within a block) with the reference's zero
/// skip, so results are bitwise identical to [`matmul_tn_ref`] for every
/// thread count.
///
/// # Panics
/// Panics on shape mismatch.
pub fn matmul_tn_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix, pool: &ThreadPool) {
    let _t = bbgnn_obs::kernel_timer("kernel/matmul_tn");
    let (m, c) = a.shape();
    assert_eq!(m, b.rows(), "matmul_tn dimension mismatch");
    let n = b.cols();
    assert_eq!(out.shape(), (c, n), "matmul_tn output shape mismatch");
    let parallel = 2usize.saturating_mul(m).saturating_mul(c).saturating_mul(n) >= PAR_MIN_FLOPS;
    let adata = a.as_slice();
    let bdata = b.as_slice();
    pool.for_each_row_band(out.as_mut_slice(), n, parallel, |row0, band| {
        band.fill(0.0);
        if n == 0 {
            return;
        }
        let rows_here = band.len() / n;
        let mut k0 = 0;
        while k0 < m {
            let k1 = (k0 + BLOCK_K).min(m);
            let kb = k1 - k0;
            let b_blk = &bdata[k0 * n..k1 * n];
            let mut r0 = 0;
            while r0 < rows_here {
                let r1 = (r0 + TILE_J).min(rows_here);
                // Gather columns `row0 + r0 .. row0 + r1` of the `a` block in
                // one stride-`c` sweep — consecutive columns share cache
                // lines, so the sweep costs the same line traffic as a
                // single column.
                let mut a_cols = [0.0f64; TILE_J * BLOCK_K];
                for k in 0..kb {
                    let base = (k0 + k) * c + row0;
                    for (t, &v) in adata[base + r0..base + r1].iter().enumerate() {
                        a_cols[t * BLOCK_K + k] = v;
                    }
                }
                let a_col = |r: usize| &a_cols[(r - r0) * BLOCK_K..(r - r0) * BLOCK_K + kb];
                let mut r = r0;
                while r + TILE_R <= r1 {
                    let out4 = &mut band[r * n..(r + TILE_R) * n];
                    let mut j0 = 0;
                    while j0 < n.max(1) {
                        let j1 = (j0 + BLOCK_J).min(n);
                        saxpy_quad_block(
                            [a_col(r), a_col(r + 1), a_col(r + 2), a_col(r + 3)],
                            b_blk,
                            out4,
                            n,
                            j0,
                            j1,
                        );
                        j0 = j1.max(j0 + 1);
                    }
                    r += TILE_R;
                }
                while r < r1 {
                    let out_row = &mut band[r * n..(r + 1) * n];
                    let mut j0 = 0;
                    while j0 < n.max(1) {
                        let j1 = (j0 + BLOCK_J).min(n);
                        saxpy_row_block(a_col(r), b_blk, out_row, n, j0, j1);
                        j0 = j1.max(j0 + 1);
                    }
                    r += 1;
                }
                r0 = r1;
            }
            k0 = k1;
        }
    });
}

/// Row-partitioned `out = a * b^T` without materializing the transpose.
///
/// Each output element is an independent ascending-`k` dot product exactly
/// as in [`matmul_nt_ref`], so results are bitwise identical for every
/// thread count.
///
/// # Panics
/// Panics on shape mismatch.
pub fn matmul_nt_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix, pool: &ThreadPool) {
    let _t = bbgnn_obs::kernel_timer("kernel/matmul_nt");
    let (m, c) = a.shape();
    assert_eq!(c, b.cols(), "matmul_nt dimension mismatch");
    let r2 = b.rows();
    assert_eq!(out.shape(), (m, r2), "matmul_nt output shape mismatch");
    let parallel = 2usize
        .saturating_mul(m)
        .saturating_mul(c)
        .saturating_mul(r2)
        >= PAR_MIN_FLOPS;
    let adata = a.as_slice();
    let bdata = b.as_slice();
    pool.for_each_row_band(out.as_mut_slice(), r2, parallel, |row0, band| {
        if r2 == 0 {
            return;
        }
        for (r, out_row) in band.chunks_mut(r2).enumerate() {
            let a_row = &adata[(row0 + r) * c..(row0 + r) * c + c];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &bdata[j * c..(j + 1) * c];
                let mut acc = 0.0;
                for k in 0..c {
                    acc += a_row[k] * b_row[k];
                }
                *o = acc;
            }
        }
    });
}

/// Row-partitioned sparse × dense `out = s * b`.
///
/// CSR rows map one-to-one onto output rows, so bands are disjoint and the
/// per-row accumulation order (CSR column order) matches [`spmm_ref`]
/// exactly — bitwise identical for every thread count.
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_into(s: &CsrMatrix, b: &DenseMatrix, out: &mut DenseMatrix, pool: &ThreadPool) {
    let _t = bbgnn_obs::kernel_timer("kernel/spmm");
    assert_eq!(s.cols(), b.rows(), "spmm dimension mismatch");
    let n = b.cols();
    assert_eq!(out.shape(), (s.rows(), n), "spmm output shape mismatch");
    let parallel = 2usize.saturating_mul(s.nnz()).saturating_mul(n) >= PAR_MIN_FLOPS;
    let bdata = b.as_slice();
    pool.for_each_row_band(out.as_mut_slice(), n, parallel, |row0, band| {
        band.fill(0.0);
        if n == 0 {
            return;
        }
        let rows_here = band.len() / n;
        for r in 0..rows_here {
            let out_row = &mut band[r * n..(r + 1) * n];
            // Register-tiled: a tile of the output row stays in local
            // accumulators across the whole nnz sweep, so `out_row` is
            // stored once per tile instead of updated once per nonzero.
            // Accumulation order per element is the CSR column order of
            // [`spmm_ref`] — bitwise identical.
            let mut j = 0;
            while j + TILE_J <= n {
                let mut acc = [0.0f64; TILE_J];
                for (c, v) in s.row_iter(row0 + r) {
                    let b = &bdata[c * n + j..c * n + j + TILE_J];
                    for t in 0..TILE_J {
                        acc[t] += v * b[t];
                    }
                }
                out_row[j..j + TILE_J].copy_from_slice(&acc);
                j += TILE_J;
            }
            if j < n {
                for (c, v) in s.row_iter(row0 + r) {
                    let b_row = &bdata[c * n..(c + 1) * n];
                    for (o, &bv) in out_row[j..].iter_mut().zip(&b_row[j..]) {
                        *o += v * bv;
                    }
                }
            }
        }
    });
    maybe_poison_kernel_output(out);
}

/// Sequential `out = s^T * b` (backward pass of SpMM).
///
/// The transpose product scatters into output rows indexed by CSR *column*,
/// so disjoint output-row partitioning does not apply; parallelizing it
/// would need atomics or per-thread copies, both of which break the bitwise
/// determinism contract. It stays sequential by design — in GCN training it
/// touches the same nnz as the forward SpMM and is not the bottleneck.
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_t_into(s: &CsrMatrix, b: &DenseMatrix, out: &mut DenseMatrix) {
    let _t = bbgnn_obs::kernel_timer("kernel/spmm_t");
    assert_eq!(s.rows(), b.rows(), "spmm_t dimension mismatch");
    let n = b.cols();
    assert_eq!(out.shape(), (s.cols(), n), "spmm_t output shape mismatch");
    out.as_mut_slice().fill(0.0);
    if n == 0 {
        return;
    }
    let rows = s.rows();
    for i in 0..rows {
        let b_row = b.row(i);
        for (c, v) in s.row_iter(i) {
            let out_row = out.row_mut(c);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += v * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace arena.
// ---------------------------------------------------------------------------

/// Retention cap for the workspace arena, in `f64` elements (≈256 MB).
/// Buffers returned beyond the cap are dropped to the allocator.
const WORKSPACE_CAP_F64: usize = 32 << 20;

/// A buffer arena recycling `Vec<f64>` allocations between hot-path calls.
///
/// Buffers are keyed by **exact length**, which keeps every stored element
/// initialized (no `set_len`, no `unsafe`) — a recycled buffer is handed
/// back with stale-but-valid contents and the kernels overwrite it fully
/// (or [`ExecContext::alloc_zeroed`] clears it). Training loops that
/// allocate the same tensor shapes every epoch hit the arena from epoch 2
/// onward.
#[derive(Debug, Default)]
pub struct Workspace {
    pools: HashMap<usize, Vec<Vec<f64>>>,
    held: usize,
    /// Elements currently lent out (taken or freshly allocated, not yet
    /// given back). `held + lent` is the arena's total footprint.
    lent: usize,
    /// Monotonic high-water mark of `held + lent`, in elements. Survives
    /// [`clear`](Self::clear) so a run's peak is reportable at shutdown.
    peak: usize,
    reuse_hits: usize,
}

impl Workspace {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a recycled buffer of exactly `len` elements, if one is held.
    /// Contents are stale; the caller must overwrite or zero them.
    pub fn take(&mut self, len: usize) -> Option<Vec<f64>> {
        let buf = self.pools.get_mut(&len)?.pop()?;
        self.held -= len;
        self.lent += len;
        self.reuse_hits += 1;
        Some(buf)
    }

    /// Records a fresh allocation of `len` elements made on a
    /// [`take`](Self::take) miss, so the lent total (and peak) covers
    /// buffers the arena will later receive via [`give`](Self::give).
    /// This is the only site where the footprint can grow — a `take` hit
    /// just moves elements from held to lent — so the peak check lives
    /// here and in the obs/supervise bridge it calls.
    pub fn note_alloc(&mut self, len: usize) {
        self.lent += len;
        let total = self.held + self.lent;
        if total > self.peak {
            let delta_bytes = (total - self.peak) * std::mem::size_of::<f64>();
            self.peak = total;
            // The counter sums deltas, so its final value is the peak in
            // bytes; the supervise high-water mark lets a `mem` budget trip
            // at the next check site. Both are one relaxed load when off.
            bbgnn_obs::counter("exec/peak_bytes", delta_bytes as u64);
            if bbgnn_supervise::enabled() {
                bbgnn_supervise::note_mem(self.peak_bytes() as u64);
            }
        }
    }

    /// Returns a buffer to the arena; dropped instead if the retention cap
    /// would be exceeded or the buffer is empty. Either way the buffer is
    /// no longer lent.
    pub fn give(&mut self, buf: Vec<f64>) {
        let len = buf.len();
        self.lent = self.lent.saturating_sub(len);
        if len == 0 || self.held + len > WORKSPACE_CAP_F64 {
            return;
        }
        self.held += len;
        self.pools.entry(len).or_default().push(buf);
    }

    /// Total `f64` elements currently retained.
    pub fn held(&self) -> usize {
        self.held
    }

    /// High-water mark of the arena footprint (retained + lent) in bytes.
    /// Monotonic for the life of the workspace.
    pub fn peak_bytes(&self) -> usize {
        self.peak * std::mem::size_of::<f64>()
    }

    /// Number of allocations served from recycled buffers so far.
    pub fn reuse_hits(&self) -> usize {
        self.reuse_hits
    }

    /// Drops every retained buffer. The peak is deliberately kept: it
    /// reports the run's high-water mark, not the current footprint.
    pub fn clear(&mut self) {
        self.pools.clear();
        self.held = 0;
    }
}

// ---------------------------------------------------------------------------
// Execution context.
// ---------------------------------------------------------------------------

/// Thread pool + workspace bundle threaded through every compute layer.
///
/// One context is created per training/attack run (`Rc<ExecContext>`) and
/// shared by every [`crate::DenseMatrix`] product and autodiff tape in that
/// run, so gradient buffers are recycled across epochs instead of
/// reallocated. The context is deliberately `!Sync` (single-owner
/// workspace); the *kernels* spread work across threads internally.
#[derive(Debug)]
pub struct ExecContext {
    pool: ThreadPool,
    workspace: RefCell<Workspace>,
}

impl ExecContext {
    /// A context running kernels on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            pool: ThreadPool::new(threads),
            workspace: RefCell::new(Workspace::new()),
        }
    }

    /// A context with the process-wide [`env_threads`] worker count.
    pub fn from_env() -> Self {
        Self::new(env_threads())
    }

    /// Convenience: `Rc::new(Self::from_env())`.
    pub fn shared_from_env() -> Rc<Self> {
        Rc::new(Self::from_env())
    }

    /// A context with `threads` workers, falling back to [`env_threads`]
    /// when `threads == 0`. This is the conventional meaning of a
    /// `threads: usize` field on attacker / benchmark configs: `0` defers
    /// to `BBGNN_THREADS`, any other value pins the count explicitly
    /// (useful for thread-count-invariance tests).
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            Self::from_env()
        } else {
            Self::new(threads)
        }
    }

    /// Worker count used by this context's kernels.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying scoped thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Number of allocations served from the workspace so far.
    pub fn reuse_hits(&self) -> usize {
        self.workspace.borrow().reuse_hits()
    }

    /// High-water mark of this context's workspace footprint in bytes
    /// (see [`Workspace::peak_bytes`]).
    pub fn peak_bytes(&self) -> usize {
        self.workspace.borrow().peak_bytes()
    }

    /// Takes a `len` buffer from the workspace (stale contents) or
    /// allocates a zeroed one.
    fn take_buf(&self, len: usize) -> Vec<f64> {
        let mut ws = self.workspace.borrow_mut();
        if let Some(buf) = ws.take(len) {
            return buf;
        }
        ws.note_alloc(len);
        vec![0.0; len]
    }

    /// A `rows × cols` matrix backed by a recycled buffer, zeroed.
    pub fn alloc_zeroed(&self, rows: usize, cols: usize) -> DenseMatrix {
        let mut buf = self.take_buf(rows * cols);
        buf.fill(0.0);
        DenseMatrix::from_vec(rows, cols, buf)
    }

    /// A copy of `src` backed by a recycled buffer.
    pub fn alloc_copy(&self, src: &DenseMatrix) -> DenseMatrix {
        let mut buf = self.take_buf(src.rows() * src.cols());
        buf.copy_from_slice(src.as_slice());
        DenseMatrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Returns a matrix's buffer to the workspace for reuse.
    pub fn recycle(&self, m: DenseMatrix) {
        self.workspace.borrow_mut().give(m.into_vec());
    }

    /// `a * b` on the pool, output backed by a recycled buffer.
    pub fn matmul(&self, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(a.rows(), b.cols(), self.take_buf(a.rows() * b.cols()));
        matmul_into(a, b, &mut out, &self.pool);
        out
    }

    /// `a^T * b` on the pool, output backed by a recycled buffer.
    pub fn matmul_tn(&self, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(a.cols(), b.cols(), self.take_buf(a.cols() * b.cols()));
        matmul_tn_into(a, b, &mut out, &self.pool);
        out
    }

    /// `a * b^T` on the pool, output backed by a recycled buffer.
    pub fn matmul_nt(&self, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(a.rows(), b.rows(), self.take_buf(a.rows() * b.rows()));
        matmul_nt_into(a, b, &mut out, &self.pool);
        out
    }

    /// Sparse × dense `s * b` on the pool, output backed by a recycled
    /// buffer.
    pub fn spmm(&self, s: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(s.rows(), b.cols(), self.take_buf(s.rows() * b.cols()));
        spmm_into(s, b, &mut out, &self.pool);
        out
    }

    /// Sequential `s^T * b` (see [`spmm_t_into`]), output backed by a
    /// recycled buffer.
    pub fn spmm_t(&self, s: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::from_vec(s.cols(), b.cols(), self.take_buf(s.cols() * b.cols()));
        spmm_t_into(s, b, &mut out);
        out
    }

    /// Elementwise map of `a`, output backed by a recycled buffer.
    pub fn unary(&self, a: &DenseMatrix, f: impl Fn(f64) -> f64) -> DenseMatrix {
        let mut buf = self.take_buf(a.rows() * a.cols());
        for (o, &v) in buf.iter_mut().zip(a.as_slice()) {
            *o = f(v);
        }
        DenseMatrix::from_vec(a.rows(), a.cols(), buf)
    }

    /// Elementwise zip of `a` and `b`, output backed by a recycled buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn binary(
        &self,
        a: &DenseMatrix,
        b: &DenseMatrix,
        f: impl Fn(f64, f64) -> f64,
    ) -> DenseMatrix {
        assert_eq!(a.shape(), b.shape(), "binary op shape mismatch");
        let mut buf = self.take_buf(a.rows() * a.cols());
        for ((o, &x), &y) in buf.iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
            *o = f(x, y);
        }
        DenseMatrix::from_vec(a.rows(), a.cols(), buf)
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::uniform(rows, cols, 1.0, seed)
    }

    #[test]
    fn blocked_matmul_matches_reference_bitwise() {
        for &(m, k, n) in &[(3, 4, 5), (17, 129, 33), (1, 300, 1), (130, 130, 130)] {
            let a = dense(m, k, 1);
            let b = dense(k, n, 2);
            let pool = ThreadPool::new(4);
            let mut out = DenseMatrix::zeros(m, n);
            matmul_into(&a, &b, &mut out, &pool);
            assert_eq!(out, matmul_ref(&a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn workspace_recycles_exact_lengths() {
        let ws = ExecContext::new(1);
        let m = ws.alloc_zeroed(4, 5);
        ws.recycle(m);
        let hits_before = ws.reuse_hits();
        let m2 = ws.alloc_zeroed(4, 5);
        assert_eq!(ws.reuse_hits(), hits_before + 1);
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn workspace_tracks_peak_footprint_monotonically() {
        let cx = ExecContext::new(1);
        let a = cx.alloc_zeroed(10, 10);
        assert_eq!(cx.peak_bytes(), 800, "one fresh 100-element buffer");
        cx.recycle(a);
        let b = cx.alloc_zeroed(10, 10);
        assert_eq!(cx.peak_bytes(), 800, "a reuse hit adds no footprint");
        let c = cx.alloc_zeroed(10, 10);
        assert_eq!(cx.peak_bytes(), 1600, "two live buffers grow the peak");
        cx.recycle(b);
        cx.recycle(c);
        assert_eq!(cx.peak_bytes(), 1600, "peak is monotonic");
    }

    #[test]
    fn map_fold_matches_sequential_argmax() {
        let scores: Vec<f64> = (0..5000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut seq: Option<(f64, usize)> = None;
        for (i, &s) in scores.iter().enumerate() {
            if seq.map_or(true, |(bs, _)| s > bs) {
                seq = Some((s, i));
            }
        }
        let pool = ThreadPool::new(8);
        let par = pool
            .map_fold(
                scores.len(),
                |range| {
                    let mut best: Option<(f64, usize)> = None;
                    for i in range {
                        if best.map_or(true, |(bs, _)| scores[i] > bs) {
                            best = Some((scores[i], i));
                        }
                    }
                    best
                },
                |acc, item| match (acc, item) {
                    (Some((a, ai)), Some((b, bi))) => {
                        if b > a {
                            Some((b, bi))
                        } else {
                            Some((a, ai))
                        }
                    }
                    (x, None) => x,
                    (None, y) => y,
                },
            )
            .flatten();
        assert_eq!(par, seq);
    }

    #[test]
    fn pool_workers_inherit_the_submitting_threads_supervision_scope() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let scope = bbgnn_supervise::SupervisionScope::new();
        scope.activate();
        let _entered = bbgnn_supervise::enter(&scope);
        let pool = ThreadPool::new(4);

        // for_each_row_band: every worker must see the entered scope.
        let seen = AtomicUsize::new(0);
        let mut out = vec![0.0; 64];
        pool.for_each_row_band(&mut out, 8, true, |_, band| {
            if bbgnn_supervise::current_scope().is_some_and(|s| Arc::ptr_eq(&s, &scope)) {
                seen.fetch_add(1, Ordering::Relaxed);
            }
            for v in band {
                *v = 1.0;
            }
        });
        assert!(seen.load(Ordering::Relaxed) >= 1, "no worker saw the scope");

        // map_fold_coarse: scoped accounting from inside workers lands in
        // the scope (the GF-Attack rescoring shape).
        let total = pool.map_fold_coarse(
            16,
            |range| {
                bbgnn_supervise::note_queries(range.len() as u64);
                range.len()
            },
            |a, b| a + b,
        );
        assert_eq!(total, Some(16));
        assert_eq!(
            scope.queries_used(),
            16,
            "scoped accounting lost in workers"
        );
    }
}
