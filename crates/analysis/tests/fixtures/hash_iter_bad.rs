// Fixture: iterating seeded hash collections in numeric library code must
// fire `hash_iter` for every leak pattern the rule knows.
use std::collections::{HashMap, HashSet};

pub fn leaks() -> Vec<usize> {
    let seen: HashSet<usize> = HashSet::new();
    let counts: HashMap<usize, usize> = HashMap::new();
    let mut out = Vec::new();
    for v in &seen {
        out.push(*v);
    }
    out.extend(seen);
    let _keys: Vec<&usize> = counts.keys().collect();
    out
}
