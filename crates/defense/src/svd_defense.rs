//! GCN-SVD (Entezari et al. 2020) — low-rank preprocessing defense.
//!
//! Adversarial edge perturbations concentrate in the high-rank tail of the
//! adjacency spectrum, so GCN-SVD replaces the poisoned adjacency with its
//! rank-`k` approximation (negative entries clamped to zero) and trains a
//! GCN over the resulting weighted graph.

use crate::Defender;
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::{TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::svd::{randomized_svd, Svd};
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use bbgnn_store::SvdFactors;
use std::rc::Rc;

/// GCN-SVD configuration.
#[derive(Clone, Debug)]
pub struct GcnSvdConfig {
    /// Reduced rank (the paper tunes `{5, 10, 15, 50, 100, 200}`).
    pub rank: usize,
    /// Entries of the low-rank adjacency below this magnitude are dropped
    /// when rebuilding the sparse propagation matrix.
    pub sparsify_tol: f64,
    /// Training configuration of the downstream GCN.
    pub train: TrainConfig,
}

impl Default for GcnSvdConfig {
    fn default() -> Self {
        Self {
            rank: 15,
            sparsify_tol: 1e-3,
            train: TrainConfig::default(),
        }
    }
}

/// The GCN-SVD defender.
pub struct GcnSvd {
    /// Configuration.
    pub config: GcnSvdConfig,
    gcn: Gcn,
    purified_an: Option<Rc<CsrMatrix>>,
}

impl GcnSvd {
    /// Creates an untrained GCN-SVD defender.
    pub fn new(config: GcnSvdConfig) -> Self {
        let gcn = Gcn::paper_default(config.train.clone());
        Self {
            config,
            gcn,
            purified_an: None,
        }
    }

    /// Rank-`k` purified adjacency of `g` (non-negative, weighted).
    pub fn purify(&self, g: &Graph) -> CsrMatrix {
        let a = g.adjacency_dense();
        let svd = self.factorize(&a);
        let mut low = svd.reconstruct();
        low.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
        CsrMatrix::from_dense(&low, self.config.sparsify_tol)
    }

    /// The truncated SVD of the dense adjacency, warm-started from the
    /// artifact store when one is active. Keyed on the adjacency content
    /// hash (not the whole graph: a feature-only perturbation reuses the
    /// factors) plus every knob of the randomized-SVD call.
    fn factorize(&self, a: &DenseMatrix) -> Svd {
        let key = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("factors/svd")
                .hash_field("adj", a.content_hash())
                .field("rank", self.config.rank)
                .field("oversample", 8)
                .field("iters", 2)
                .field("seed", self.config.train.seed)
        });
        if let Some(key) = &key {
            if let Some(f) = bbgnn_store::lookup::<SvdFactors>(key) {
                return Svd {
                    u: f.u,
                    sigma: f.sigma,
                    v: f.v,
                };
            }
        }
        let svd = randomized_svd(a, self.config.rank, 8, 2, self.config.train.seed);
        if let Some(key) = &key {
            bbgnn_store::publish(
                key,
                &SvdFactors {
                    u: svd.u.clone(),
                    sigma: svd.sigma.clone(),
                    v: svd.v.clone(),
                },
            );
        }
        svd
    }
}

impl NodeClassifier for GcnSvd {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/svd/fit", nodes = g.num_nodes());
        let an = Rc::new(self.purify(g).gcn_normalize());
        self.purified_an = Some(Rc::clone(&an));
        self.gcn.fit_on(g, an)
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        // lint: allow(panic) reason=documented precondition — callers must fit() first
        let an = self.purified_an.as_ref().expect("model is not trained");
        self.gcn.logits_on(&g.features, an).row_argmax()
    }
}

impl Defender for GcnSvd {
    fn name(&self) -> String {
        "GCN-SVD".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn purified_adjacency_is_nonnegative_low_rank() {
        let g = DatasetSpec::CoraLike.generate(0.05, 121);
        let d = GcnSvd::new(GcnSvdConfig {
            rank: 10,
            ..Default::default()
        });
        let purified = d.purify(&g);
        for u in 0..purified.rows() {
            for (_, w) in purified.row_iter(u) {
                assert!(w >= 0.0, "negative weight survived clamping");
            }
        }
    }

    #[test]
    fn trains_and_predicts() {
        let g = DatasetSpec::CoraLike.generate(0.06, 122);
        let mut d = GcnSvd::new(GcnSvdConfig {
            rank: 20,
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        d.fit(&g);
        let acc = d.test_accuracy(&g);
        // Low-rank truncation costs some clean accuracy (cf. Table IV where
        // GCN-SVD is the weakest on the clean graph) but stays usable.
        assert!(acc > 0.4, "GCN-SVD accuracy {acc} too low");
    }

    #[test]
    fn higher_rank_preserves_more_signal() {
        let g = DatasetSpec::CoraLike.generate(0.06, 123);
        let d5 = GcnSvd::new(GcnSvdConfig {
            rank: 5,
            ..Default::default()
        });
        let d50 = GcnSvd::new(GcnSvdConfig {
            rank: 50,
            ..Default::default()
        });
        let a = g.adjacency_dense();
        let e5 = d5.purify(&g).to_dense().sub(&a).frobenius_norm();
        let e50 = d50.purify(&g).to_dense().sub(&a).frobenius_norm();
        assert!(e50 < e5, "rank 50 must approximate better than rank 5");
    }
}
