//! Structured failure handling for the `bbgnn` workspace.
//!
//! Every fallible subsystem — iterative linear algebra, GNN training,
//! dataset IO, the experiment harness — reports failures through one
//! taxonomy, [`BbgnnError`], so a table runner can distinguish "this cell's
//! training diverged under a poisoned graph" (expected, retry with a
//! perturbed seed) from "the dataset directory is truncated" (fatal,
//! surface immediately). [`RetryPolicy`] encodes the paper-reproduction
//! retry discipline: bounded attempts, *deterministic* seed perturbation
//! (so a resumed sweep replays identically), and exponential backoff for
//! IO-class failures only.

#![deny(missing_docs)]

use std::fmt;
use std::time::Duration;

/// Convenience alias used across the workspace.
pub type BbgnnResult<T> = Result<T, BbgnnError>;

/// The workspace-wide error taxonomy.
///
/// Variants are grouped by recovery strategy:
///
/// * [`NumericalDivergence`](BbgnnError::NumericalDivergence) and
///   [`ConvergenceFailure`](BbgnnError::ConvergenceFailure) are *retryable*
///   with a perturbed seed (and often degrade gracefully before erroring);
/// * [`InvalidGraph`](BbgnnError::InvalidGraph) and
///   [`InvalidConfig`](BbgnnError::InvalidConfig) are caller errors and
///   never retried;
/// * [`DatasetIo`](BbgnnError::DatasetIo) is retryable with backoff
///   (transient filesystem conditions);
/// * [`ExperimentAborted`](BbgnnError::ExperimentAborted) wraps a panic or
///   exhausted retry budget for one experiment cell;
/// * [`Cancelled`](BbgnnError::Cancelled) and
///   [`BudgetExceeded`](BbgnnError::BudgetExceeded) come from the
///   supervision layer (DESIGN.md §11) and are *never* retried — retrying
///   cannot un-cancel a run or refill a spent budget.
#[derive(Clone, Debug, PartialEq)]
pub enum BbgnnError {
    /// A numeric quantity left the finite range (NaN/∞ loss, gradient, or
    /// matrix entry).
    NumericalDivergence {
        /// What diverged (e.g. `"training loss"`, `"input matrix entry"`).
        what: String,
        /// The offending value, if representable (`NaN` is preserved).
        value: f64,
    },
    /// An iterative method exhausted its iteration budget above tolerance.
    ConvergenceFailure {
        /// Method name (`"jacobi_svd"`, `"lanczos"`, ...).
        method: String,
        /// Iterations (or sweeps/restarts) performed.
        iters: usize,
        /// Residual at the point of giving up.
        residual: f64,
    },
    /// A graph violated a structural invariant.
    InvalidGraph {
        /// Human-readable description of the violated invariant.
        reason: String,
        /// First offending node, when the violation is per-node.
        node: Option<usize>,
        /// First offending edge, when the violation is per-edge.
        edge: Option<(usize, usize)>,
    },
    /// A dataset file or directory could not be read, written, or parsed.
    DatasetIo {
        /// Path (file or directory) involved.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// An experiment configuration value was malformed.
    InvalidConfig {
        /// The flag or environment variable at fault.
        what: String,
        /// What was wrong with it.
        message: String,
    },
    /// One experiment cell was abandoned (panic caught at the cell
    /// boundary, or every retry failed).
    ExperimentAborted {
        /// Cell identifier (e.g. `"cora/Metattack/GNAT"`).
        cell: String,
        /// The terminal cause, flattened to text.
        cause: String,
    },
    /// The run was cooperatively cancelled (SIGINT/SIGTERM or an explicit
    /// `CancelToken::cancel`). Work completed so far is preserved by the
    /// caller; the error only reports where the cancellation was observed.
    Cancelled {
        /// The check site that observed the cancellation (e.g.
        /// `"train/epoch"`, `"lanczos/restart"`).
        at: String,
    },
    /// A supervision budget (deadline, epoch/iteration cap, query budget,
    /// memory budget) ran out. Raised only where graceful degradation is
    /// impossible; loops that can return partial results flag them
    /// `degraded` instead.
    BudgetExceeded {
        /// Which budget ran out (`"deadline"`, `"epochs"`, `"queries"`,
        /// `"memory"`).
        resource: String,
        /// The configured limit, in the resource's native unit.
        limit: u64,
        /// The check site that observed the exceedance.
        at: String,
    },
    /// A lower-level error wrapped with additional context.
    Context {
        /// What the caller was doing.
        message: String,
        /// The underlying error.
        source: Box<BbgnnError>,
    },
}

impl BbgnnError {
    /// Wraps `self` with a context message (innermost first when printed).
    pub fn context(self, message: impl Into<String>) -> Self {
        BbgnnError::Context {
            message: message.into(),
            source: Box::new(self),
        }
    }

    /// The innermost (root-cause) error, skipping context wrappers.
    pub fn root_cause(&self) -> &BbgnnError {
        match self {
            BbgnnError::Context { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// Whether a retry with a perturbed seed could plausibly succeed.
    /// [`Cancelled`](BbgnnError::Cancelled) and
    /// [`BudgetExceeded`](BbgnnError::BudgetExceeded) are categorically not
    /// retryable: a retry would consume time the supervisor already said the
    /// run does not have.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.root_cause(),
            BbgnnError::NumericalDivergence { .. }
                | BbgnnError::ConvergenceFailure { .. }
                | BbgnnError::DatasetIo { .. }
        )
    }

    /// Whether this is a supervision stop ([`Cancelled`](BbgnnError::Cancelled)
    /// or [`BudgetExceeded`](BbgnnError::BudgetExceeded)) under any context
    /// wrapping. `FaultRunner` records these as `degraded` cells without
    /// retrying.
    pub fn is_supervision_stop(&self) -> bool {
        matches!(
            self.root_cause(),
            BbgnnError::Cancelled { .. } | BbgnnError::BudgetExceeded { .. }
        )
    }

    /// Whether retries should sleep with exponential backoff (IO-class
    /// failures; compute failures retry immediately).
    pub fn wants_backoff(&self) -> bool {
        matches!(self.root_cause(), BbgnnError::DatasetIo { .. })
    }
}

impl fmt::Display for BbgnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BbgnnError::NumericalDivergence { what, value } => {
                write!(f, "numerical divergence: {what} became {value}")
            }
            BbgnnError::ConvergenceFailure {
                method,
                iters,
                residual,
            } => {
                write!(f, "{method} failed to converge after {iters} iterations (residual {residual:.3e})")
            }
            BbgnnError::InvalidGraph { reason, node, edge } => {
                write!(f, "invalid graph: {reason}")?;
                if let Some(v) = node {
                    write!(f, " (node {v})")?;
                }
                if let Some((u, v)) = edge {
                    write!(f, " (edge {u}-{v})")?;
                }
                Ok(())
            }
            BbgnnError::DatasetIo { path, message } => {
                write!(f, "dataset IO error at {path}: {message}")
            }
            BbgnnError::InvalidConfig { what, message } => {
                write!(f, "invalid configuration {what}: {message}")
            }
            BbgnnError::ExperimentAborted { cell, cause } => {
                write!(f, "experiment cell {cell} aborted: {cause}")
            }
            BbgnnError::Cancelled { at } => {
                write!(f, "cancelled at {at}")
            }
            BbgnnError::BudgetExceeded {
                resource,
                limit,
                at,
            } => {
                write!(f, "{resource} budget ({limit}) exceeded at {at}")
            }
            BbgnnError::Context { message, source } => {
                write!(f, "{message}: {source}")
            }
        }
    }
}

impl std::error::Error for BbgnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BbgnnError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Extension adding `.context(...)` to `Result<T, BbgnnError>`.
pub trait ErrorContext<T> {
    /// Wraps the error side with a fixed message.
    fn context(self, message: impl Into<String>) -> BbgnnResult<T>;

    /// Wraps the error side with a lazily built message.
    fn with_context(self, f: impl FnOnce() -> String) -> BbgnnResult<T>;
}

impl<T> ErrorContext<T> for BbgnnResult<T> {
    fn context(self, message: impl Into<String>) -> BbgnnResult<T> {
        self.map_err(|e| e.context(message))
    }

    fn with_context(self, f: impl FnOnce() -> String) -> BbgnnResult<T> {
        self.map_err(|e| e.context(f()))
    }
}

/// Checks a slice for non-finite entries, returning the index and value of
/// the first offender. Shared guardrail for matrices, gradients, losses.
pub fn first_non_finite(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Bounded, deterministic retry discipline for experiment cells and
/// iterative numerics.
///
/// * every attempt `i` derives its seed as
///   [`seed_for_attempt`](RetryPolicy::seed_for_attempt)`(base, i)` — a
///   fixed odd-constant perturbation, so re-running a sweep (e.g. after a
///   checkpoint resume) replays the exact same retry sequence;
/// * IO-class failures sleep `backoff_base * 2^attempt` (capped) between
///   attempts; compute failures retry immediately.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = try once).
    pub max_retries: usize,
    /// Base sleep for IO backoff.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Deterministic seed perturbation: attempt 0 uses `base` unchanged,
    /// attempt `i` mixes in an odd-constant multiple so seeds never collide
    /// across nearby bases.
    pub fn seed_for_attempt(base: u64, attempt: usize) -> u64 {
        base.wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Backoff duration before retry `attempt` (1-based) of an IO failure.
    pub fn backoff_for_attempt(&self, attempt: usize) -> Duration {
        let factor = 1u32 << attempt.min(16) as u32;
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_max, |d| d.min(self.backoff_max))
    }

    /// Runs `op` up to `1 + max_retries` times. `op` receives the attempt
    /// index and that attempt's perturbed seed. Non-retryable errors (e.g.
    /// [`BbgnnError::InvalidGraph`]) abort immediately; IO-class errors
    /// back off exponentially before the next attempt.
    ///
    /// Backoff sleeps go through `std::thread::sleep`; tests exercising the
    /// retry path should use [`run_with_sleep`](RetryPolicy::run_with_sleep)
    /// with a recording no-op sleeper instead of burning wall-clock time.
    ///
    /// Returns the value together with the number of attempts used.
    pub fn run<T>(
        &self,
        base_seed: u64,
        op: impl FnMut(usize, u64) -> BbgnnResult<T>,
    ) -> BbgnnResult<(T, usize)> {
        // lint: allow(clock) reason=the one real backoff sleeper; tests inject via run_with_sleep
        self.run_with_sleep(base_seed, op, std::thread::sleep)
    }

    /// [`run`](RetryPolicy::run) with an injectable backoff clock: `sleep`
    /// is called with each backoff duration instead of
    /// `std::thread::sleep`. This is the seam fault-path tests use to
    /// assert backoff schedules without real sleeping, and the seam a
    /// supervised runner uses to make backoff waits cancellation-aware.
    pub fn run_with_sleep<T>(
        &self,
        base_seed: u64,
        mut op: impl FnMut(usize, u64) -> BbgnnResult<T>,
        mut sleep: impl FnMut(Duration),
    ) -> BbgnnResult<(T, usize)> {
        let mut last_err = None;
        for attempt in 0..=self.max_retries {
            let seed = Self::seed_for_attempt(base_seed, attempt);
            match op(attempt, seed) {
                Ok(v) => return Ok((v, attempt + 1)),
                Err(e) => {
                    if !e.is_retryable() || attempt == self.max_retries {
                        return Err(e);
                    }
                    if e.wants_backoff() {
                        sleep(self.backoff_for_attempt(attempt + 1));
                    }
                    last_err = Some(e);
                }
            }
        }
        // Unreachable: the loop always returns. Kept for totality.
        Err(last_err.unwrap_or(BbgnnError::ExperimentAborted {
            cell: String::new(),
            cause: "retry loop exited without result".into(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_structure() {
        let e = BbgnnError::ConvergenceFailure {
            method: "lanczos".into(),
            iters: 60,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("lanczos") && s.contains("60"));
        let g = BbgnnError::InvalidGraph {
            reason: "self-loop".into(),
            node: None,
            edge: Some((3, 3)),
        };
        assert!(g.to_string().contains("edge 3-3"));
    }

    #[test]
    fn context_chains_and_root_cause() {
        let e = BbgnnError::DatasetIo {
            path: "/tmp/x".into(),
            message: "missing".into(),
        }
        .context("loading cora")
        .context("running table IV");
        let s = e.to_string();
        assert!(s.starts_with("running table IV: loading cora:"));
        assert!(matches!(e.root_cause(), BbgnnError::DatasetIo { .. }));
        assert!(e.is_retryable());
        assert!(e.wants_backoff());
    }

    #[test]
    fn invalid_graph_is_not_retryable() {
        let e = BbgnnError::InvalidGraph {
            reason: "NaN feature".into(),
            node: Some(1),
            edge: None,
        };
        assert!(!e.is_retryable());
    }

    #[test]
    fn seed_perturbation_is_deterministic_and_distinct() {
        let s0 = RetryPolicy::seed_for_attempt(7, 0);
        assert_eq!(s0, 7, "attempt 0 must use the base seed");
        let s1 = RetryPolicy::seed_for_attempt(7, 1);
        let s2 = RetryPolicy::seed_for_attempt(7, 2);
        assert_ne!(s1, s2);
        assert_eq!(
            s1,
            RetryPolicy::seed_for_attempt(7, 1),
            "perturbation must be deterministic"
        );
    }

    #[test]
    fn run_retries_then_succeeds() {
        let policy = RetryPolicy {
            max_retries: 3,
            ..Default::default()
        };
        let mut seeds = Vec::new();
        let (value, attempts) = policy
            .run(100, |attempt, seed| {
                seeds.push(seed);
                if attempt < 2 {
                    Err(BbgnnError::NumericalDivergence {
                        what: "loss".into(),
                        value: f64::NAN,
                    })
                } else {
                    Ok(seed)
                }
            })
            .expect("third attempt succeeds");
        assert_eq!(attempts, 3);
        assert_eq!(seeds[0], 100);
        assert_eq!(value, RetryPolicy::seed_for_attempt(100, 2));
    }

    #[test]
    fn run_aborts_on_non_retryable() {
        let policy = RetryPolicy {
            max_retries: 5,
            ..Default::default()
        };
        let mut calls = 0;
        let err = policy
            .run(0, |_, _| -> BbgnnResult<()> {
                calls += 1;
                Err(BbgnnError::InvalidConfig {
                    what: "--scale".into(),
                    message: "bad".into(),
                })
            })
            .unwrap_err();
        assert_eq!(calls, 1, "non-retryable errors must not be retried");
        assert!(matches!(err, BbgnnError::InvalidConfig { .. }));
    }

    #[test]
    fn run_exhausts_budget() {
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            ..Default::default()
        };
        let mut calls = 0;
        let err = policy
            .run(0, |_, _| -> BbgnnResult<()> {
                calls += 1;
                Err(BbgnnError::ConvergenceFailure {
                    method: "m".into(),
                    iters: 1,
                    residual: 1.0,
                })
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(matches!(err, BbgnnError::ConvergenceFailure { .. }));
    }

    #[test]
    fn supervision_stops_are_never_retryable() {
        let c = BbgnnError::Cancelled {
            at: "train/epoch".into(),
        };
        assert!(!c.is_retryable());
        assert!(c.is_supervision_stop());
        let b = BbgnnError::BudgetExceeded {
            resource: "deadline".into(),
            limit: 1,
            at: "lanczos/restart".into(),
        }
        .context("fitting surrogate");
        assert!(!b.is_retryable());
        assert!(b.is_supervision_stop(), "context wrapping must not hide it");
        assert!(b.to_string().contains("deadline budget (1) exceeded"));
        assert!(!BbgnnError::DatasetIo {
            path: "x".into(),
            message: "y".into()
        }
        .is_supervision_stop());
    }

    #[test]
    fn run_with_sleep_records_backoff_without_sleeping() {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
        };
        let mut slept = Vec::new();
        let err = policy
            .run_with_sleep(
                0,
                |_, _| -> BbgnnResult<()> {
                    Err(BbgnnError::DatasetIo {
                        path: "/tmp/x".into(),
                        message: "flaky".into(),
                    })
                },
                |d| slept.push(d),
            )
            .unwrap_err();
        assert!(matches!(err, BbgnnError::DatasetIo { .. }));
        // 3 retries → 3 backoffs, exponentially grown, all virtual.
        assert_eq!(
            slept,
            vec![
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(80),
            ]
        );
    }

    #[test]
    fn cancelled_mid_retry_aborts_the_loop() {
        let policy = RetryPolicy {
            max_retries: 5,
            ..Default::default()
        };
        let mut calls = 0;
        let err = policy
            .run_with_sleep(
                0,
                |_, _| -> BbgnnResult<()> {
                    calls += 1;
                    Err(BbgnnError::Cancelled {
                        at: "bench/cell".into(),
                    })
                },
                |_| {},
            )
            .unwrap_err();
        assert_eq!(calls, 1, "a cancelled run must not burn retries");
        assert!(err.is_supervision_stop());
    }

    #[test]
    fn first_non_finite_finds_offender() {
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        let (i, v) = first_non_finite(&[1.0, f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(i, 1);
        assert!(v.is_nan());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(35),
            ..Default::default()
        };
        assert_eq!(p.backoff_for_attempt(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for_attempt(10), Duration::from_millis(35));
    }
}
