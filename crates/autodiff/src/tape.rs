//! The autodiff tape: node storage, forward constructors, and the backward
//! pass.
//!
//! Every tape carries an [`ExecContext`] (shared via `Rc` across the tapes
//! of a training run): matrix products run on the context's blocked
//! multi-threaded kernels, and all forward values, backward deltas, and
//! gradient buffers are drawn from — and on `Drop` returned to — the
//! context's workspace arena. From the second epoch of a training loop
//! onward the tape performs essentially no heap allocation.

use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext};
use std::rc::Rc;

/// Handle to a tensor on a [`Tape`].
///
/// Ids are only meaningful for the tape that produced them; mixing tapes is
/// a logic error caught by debug assertions at best.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

/// Recorded operation of a tape node. Constants referenced by ops are
/// `Rc`-shared so cloning the op is cheap.
enum Op {
    /// Variable or constant leaf.
    Leaf,
    /// `A @ B`.
    MatMul(TensorId, TensorId),
    /// `S @ B` with a constant sparse left factor.
    SpMM(Rc<CsrMatrix>, TensorId),
    /// `A + B`.
    Add(TensorId, TensorId),
    /// `A - B`.
    Sub(TensorId, TensorId),
    /// Elementwise `A ∘ B`.
    Hadamard(TensorId, TensorId),
    /// `c * A`.
    ScalarMul(TensorId, f64),
    /// `A + C` with constant `C` (the constant is folded at forward time).
    AddConst(TensorId),
    /// `A ∘ C` with constant `C`.
    HadamardConst(TensorId, Rc<DenseMatrix>),
    /// `max(x, 0)`.
    Relu(TensorId),
    /// `x > 0 ? x : slope * x`.
    LeakyRelu(TensorId, f64),
    /// Logistic sigmoid.
    Sigmoid(TensorId),
    /// `e^x`.
    Exp(TensorId),
    /// `ln(max(x, eps))`.
    Ln(TensorId),
    /// `max(x, eps)^p` (clamp only applied for non-integer or negative `p`).
    PowScalar(TensorId, f64),
    /// Matrix transpose.
    Transpose(TensorId),
    /// Row sums as an `n × 1` column.
    RowSum(TensorId),
    /// Sum of all entries as a `1 × 1` scalar tensor.
    SumAll(TensorId),
    /// `y[i][j] = x[i][j] * s[i]`, `s` an `n × 1` tensor.
    ScaleRows(TensorId, TensorId),
    /// `y[i][j] = x[i][j] * s[j]`, `s` an `m × 1` tensor (`m = cols`).
    ScaleCols(TensorId, TensorId),
    /// Row-wise softmax.
    SoftmaxRows(TensorId),
    /// Row-wise softmax over entries where `mask != 0`; other entries are 0.
    MaskedSoftmaxRows(TensorId, Rc<DenseMatrix>),
    /// Mean softmax cross-entropy of `logits` rows listed in `rows` against
    /// `labels` (full-length label vector).
    CrossEntropy(TensorId, Rc<Vec<usize>>, Rc<Vec<usize>>),
    /// `x ∘ mask` where the keep-probability scaling is baked into `mask`.
    Dropout(TensorId, Rc<DenseMatrix>),
    /// `y[i][j] = s[i] + d[j]` from column tensors `s` (r×1), `d` (c×1).
    AddOuter(TensorId, TensorId),
    /// Horizontal concatenation.
    ConcatCols(Vec<TensorId>),
    /// Scalar `Σ_i ‖x[i,:]‖_p`.
    RowLpNormSum(TensorId, f64),
    /// Scalar `Σ_{(v,u) ∈ E} ‖x[v,:] − C[u,:]‖_p` over the edges of a
    /// constant adjacency.
    NeighborLpNormSum(TensorId, Rc<CsrMatrix>, Rc<DenseMatrix>, f64),
    /// `y[i][j] = x[i][j] + b[0][j]` with a `1 × c` bias tensor.
    AddBias(TensorId, TensorId),
}

struct Node {
    op: Op,
    value: DenseMatrix,
    /// Constants never receive gradients.
    is_const: bool,
}

/// Numerical floor used by `ln` / fractional `pow` to avoid NaNs.
const CLAMP_EPS: f64 = 1e-12;

/// A reverse-mode autodiff tape over [`DenseMatrix`] values.
pub struct Tape {
    ctx: Rc<ExecContext>,
    nodes: Vec<Node>,
    grads: Vec<Option<DenseMatrix>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Tape {
    /// Returns every node value and gradient buffer to the context's
    /// workspace so the next tape on the same context reuses them.
    fn drop(&mut self) {
        let ctx = Rc::clone(&self.ctx);
        for node in self.nodes.drain(..) {
            ctx.recycle(node.value);
        }
        for g in self.grads.drain(..).flatten() {
            ctx.recycle(g);
        }
    }
}

impl Tape {
    /// Creates an empty tape with a fresh [`ExecContext`] (thread count
    /// from `BBGNN_THREADS`). Loops building many tapes should share one
    /// context via [`Tape::with_context`] to get cross-tape buffer reuse.
    pub fn new() -> Self {
        Self::with_context(Rc::new(ExecContext::from_env()))
    }

    /// Creates an empty tape running on (and recycling buffers through)
    /// `ctx`.
    pub fn with_context(ctx: Rc<ExecContext>) -> Self {
        Self {
            ctx,
            nodes: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// The execution context this tape runs on.
    pub fn context(&self) -> &Rc<ExecContext> {
        &self.ctx
    }

    fn push(&mut self, op: Op, value: DenseMatrix, is_const: bool) -> TensorId {
        self.nodes.push(Node {
            op,
            value,
            is_const,
        });
        self.grads.push(None);
        TensorId(self.nodes.len() - 1)
    }

    /// Registers a differentiable leaf (a model parameter or an attack
    /// variable).
    pub fn var(&mut self, value: DenseMatrix) -> TensorId {
        self.push(Op::Leaf, value, false)
    }

    /// Registers a non-differentiable leaf.
    pub fn constant(&mut self, value: DenseMatrix) -> TensorId {
        self.push(Op::Leaf, value, true)
    }

    /// Value of tensor `id`.
    pub fn value(&self, id: TensorId) -> &DenseMatrix {
        &self.nodes[id.0].value
    }

    /// Gradient of the last [`Tape::backward`] output with respect to `id`,
    /// if any was accumulated.
    pub fn grad(&self, id: TensorId) -> Option<&DenseMatrix> {
        self.grads[id.0].as_ref()
    }

    /// Shape of tensor `id`.
    pub fn shape(&self, id: TensorId) -> (usize, usize) {
        self.nodes[id.0].value.shape()
    }

    // ----- forward constructors -------------------------------------------------

    /// `a @ b`.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self
            .ctx
            .matmul(&self.nodes[a.0].value, &self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), v, false)
    }

    /// `s @ b` with a constant sparse matrix `s`.
    pub fn spmm(&mut self, s: Rc<CsrMatrix>, b: TensorId) -> TensorId {
        let v = self.ctx.spmm(&s, &self.nodes[b.0].value);
        self.push(Op::SpMM(s, b), v, false)
    }

    /// `a + b`.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self
            .ctx
            .binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x + y);
        self.push(Op::Add(a, b), v, false)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self
            .ctx
            .binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x - y);
        self.push(Op::Sub(a, b), v, false)
    }

    /// Elementwise `a ∘ b`.
    pub fn hadamard(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self
            .ctx
            .binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x * y);
        self.push(Op::Hadamard(a, b), v, false)
    }

    /// `c * a`.
    pub fn scalar_mul(&mut self, a: TensorId, c: f64) -> TensorId {
        let v = self.ctx.unary(&self.nodes[a.0].value, |x| x * c);
        self.push(Op::ScalarMul(a, c), v, false)
    }

    /// `a + c` with a constant matrix.
    pub fn add_const(&mut self, a: TensorId, c: Rc<DenseMatrix>) -> TensorId {
        let v = self.ctx.binary(&self.nodes[a.0].value, &c, |x, y| x + y);
        self.push(Op::AddConst(a), v, false)
    }

    /// `a - c` with a constant matrix (stored as `AddConst` of `-c`).
    pub fn sub_const(&mut self, a: TensorId, c: &DenseMatrix) -> TensorId {
        self.add_const(a, Rc::new(c.scale(-1.0)))
    }

    /// Elementwise `a ∘ c` with a constant matrix.
    pub fn hadamard_const(&mut self, a: TensorId, c: Rc<DenseMatrix>) -> TensorId {
        let v = self.ctx.binary(&self.nodes[a.0].value, &c, |x, y| x * y);
        self.push(Op::HadamardConst(a, c), v, false)
    }

    /// ReLU.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.ctx.unary(&self.nodes[a.0].value, |x| x.max(0.0));
        self.push(Op::Relu(a), v, false)
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&mut self, a: TensorId, slope: f64) -> TensorId {
        let v = self.ctx.unary(
            &self.nodes[a.0].value,
            |x| if x > 0.0 { x } else { slope * x },
        );
        self.push(Op::LeakyRelu(a, slope), v, false)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self
            .ctx
            .unary(&self.nodes[a.0].value, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v, false)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        let v = self.ctx.unary(&self.nodes[a.0].value, f64::exp);
        self.push(Op::Exp(a), v, false)
    }

    /// Elementwise natural log, clamped below at `1e-12`.
    pub fn ln(&mut self, a: TensorId) -> TensorId {
        let v = self
            .ctx
            .unary(&self.nodes[a.0].value, |x| x.max(CLAMP_EPS).ln());
        self.push(Op::Ln(a), v, false)
    }

    /// Elementwise power `x^p`; negative bases are clamped to `1e-12` when
    /// `p` is not a non-negative integer.
    pub fn pow_scalar(&mut self, a: TensorId, p: f64) -> TensorId {
        let clamp = p < 0.0 || p.fract() != 0.0;
        let v = self.ctx.unary(&self.nodes[a.0].value, |x| {
            let x = if clamp { x.max(CLAMP_EPS) } else { x };
            x.powf(p)
        });
        self.push(Op::PowScalar(a, p), v, false)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.transpose();
        self.push(Op::Transpose(a), v, false)
    }

    /// Row sums as an `n × 1` tensor.
    pub fn row_sum(&mut self, a: TensorId) -> TensorId {
        let sums = self.nodes[a.0].value.row_sums();
        let n = sums.len();
        self.push(Op::RowSum(a), DenseMatrix::from_vec(n, 1, sums), false)
    }

    /// Sum of all entries as a `1 × 1` tensor.
    pub fn sum_all(&mut self, a: TensorId) -> TensorId {
        let s = self.nodes[a.0].value.sum();
        self.push(Op::SumAll(a), DenseMatrix::from_vec(1, 1, vec![s]), false)
    }

    /// `y[i][j] = x[i][j] * s[i]`, with `s` an `n × 1` tensor.
    pub fn scale_rows(&mut self, x: TensorId, s: TensorId) -> TensorId {
        let scales: Vec<f64> = self.nodes[s.0].value.as_slice().to_vec();
        let v = self.nodes[x.0].value.scale_rows(&scales);
        self.push(Op::ScaleRows(x, s), v, false)
    }

    /// `y[i][j] = x[i][j] * s[j]`, with `s` an `m × 1` tensor.
    pub fn scale_cols(&mut self, x: TensorId, s: TensorId) -> TensorId {
        let scales: Vec<f64> = self.nodes[s.0].value.as_slice().to_vec();
        let v = self.nodes[x.0].value.scale_cols(&scales);
        self.push(Op::ScaleCols(x, s), v, false)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: TensorId) -> TensorId {
        let mut v = self.ctx.alloc_copy(&self.nodes[a.0].value);
        for i in 0..v.rows() {
            softmax_slice(v.row_mut(i));
        }
        self.push(Op::SoftmaxRows(a), v, false)
    }

    /// Row-wise softmax over entries where `mask != 0`; all-masked rows
    /// yield zero rows.
    pub fn masked_softmax_rows(&mut self, a: TensorId, mask: Rc<DenseMatrix>) -> TensorId {
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!((r, c), mask.shape(), "mask shape mismatch");
        let mut v = self.ctx.alloc_zeroed(r, c);
        let x = &self.nodes[a.0].value;
        for i in 0..r {
            masked_softmax_slice(x.row(i), mask.row(i), v.row_mut(i));
        }
        self.push(Op::MaskedSoftmaxRows(a, mask), v, false)
    }

    /// Mean softmax cross-entropy over the rows listed in `rows`:
    /// `-(1/|rows|) Σ_{r ∈ rows} log softmax(logits[r])[labels[r]]`.
    ///
    /// `labels` must cover every index in `rows`.
    pub fn cross_entropy(
        &mut self,
        logits: TensorId,
        labels: Rc<Vec<usize>>,
        rows: Rc<Vec<usize>>,
    ) -> TensorId {
        assert!(!rows.is_empty(), "cross_entropy over an empty row set");
        let x = &self.nodes[logits.0].value;
        let mut loss = 0.0;
        for &r in rows.iter() {
            let row = x.row(r);
            let lse = log_sum_exp(row);
            loss -= row[labels[r]] - lse;
        }
        loss /= rows.len() as f64;
        self.push(
            Op::CrossEntropy(logits, labels, rows),
            DenseMatrix::from_vec(1, 1, vec![loss]),
            false,
        )
    }

    /// Inverted dropout with keep-scaling baked into the generated mask.
    /// `p` is the drop probability; training determinism comes from `seed`.
    pub fn dropout(&mut self, a: TensorId, p: f64, seed: u64) -> TensorId {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        let (r, c) = self.shape(a);
        let mask = if p == 0.0 {
            DenseMatrix::filled(r, c, 1.0)
        } else {
            let u = DenseMatrix::uniform(r, c, 1.0, seed); // U(-1, 1)
            let keep = 1.0 - p;
            let scale = 1.0 / keep;
            // Map U(-1,1) -> keep with probability `keep`.
            u.map(|x| if (x + 1.0) / 2.0 < keep { scale } else { 0.0 })
        };
        let mask = Rc::new(mask);
        let v = self.ctx.binary(&self.nodes[a.0].value, &mask, |x, y| x * y);
        self.push(Op::Dropout(a, mask), v, false)
    }

    /// `y[i][j] = s[i] + d[j]` from column tensors `s` (r×1) and `d` (c×1).
    pub fn add_outer(&mut self, s: TensorId, d: TensorId) -> TensorId {
        let sv = &self.nodes[s.0].value;
        let dv = &self.nodes[d.0].value;
        assert_eq!(sv.cols(), 1, "add_outer: s must be a column");
        assert_eq!(dv.cols(), 1, "add_outer: d must be a column");
        let (r, c) = (sv.rows(), dv.rows());
        let mut v = DenseMatrix::zeros(r, c);
        for i in 0..r {
            let si = sv.get(i, 0);
            for j in 0..c {
                v.set(i, j, si + dv.get(j, 0));
            }
        }
        self.push(Op::AddOuter(s, d), v, false)
    }

    /// Horizontal concatenation `[a₀ | a₁ | …]`.
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|&p| self.shape(p).1).sum();
        let mut v = DenseMatrix::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.rows(), rows, "concat_cols: row mismatch");
            for i in 0..rows {
                v.row_mut(i)[off..off + pv.cols()].copy_from_slice(pv.row(i));
            }
            off += pv.cols();
        }
        self.push(Op::ConcatCols(parts.to_vec()), v, false)
    }

    /// Scalar `Σ_i ‖x[i,:]‖_p` — PEEGA's self-view difference (Eq. 5 of the
    /// paper, with the constant term subtracted beforehand).
    pub fn row_lp_norm_sum(&mut self, x: TensorId, p: f64) -> TensorId {
        let xv = &self.nodes[x.0].value;
        let s: f64 = (0..xv.rows()).map(|i| xv.row_lp_norm(i, p)).sum();
        self.push(
            Op::RowLpNormSum(x, p),
            DenseMatrix::from_vec(1, 1, vec![s]),
            false,
        )
    }

    /// Scalar `Σ_{(v,u) ∈ E(adj)} ‖x[v,:] − c[u,:]‖_p` — PEEGA's global-view
    /// difference (Eq. 6), where `adj` holds the *original* topology and `c`
    /// the original aggregated representations.
    pub fn neighbor_lp_norm_sum(
        &mut self,
        x: TensorId,
        adj: Rc<CsrMatrix>,
        c: Rc<DenseMatrix>,
        p: f64,
    ) -> TensorId {
        let xv = &self.nodes[x.0].value;
        assert_eq!(
            xv.cols(),
            c.cols(),
            "neighbor_lp_norm_sum: feature dims differ"
        );
        let mut s = 0.0;
        let mut diff = vec![0.0; xv.cols()];
        for v in 0..adj.rows() {
            let xr = xv.row(v);
            for (u, w) in adj.row_iter(v) {
                if w == 0.0 {
                    continue;
                }
                let cu = c.row(u);
                for (d, (a, b)) in diff.iter_mut().zip(xr.iter().zip(cu)) {
                    *d = a - b;
                }
                s += bbgnn_linalg::dense::lp_norm(&diff, p);
            }
        }
        self.push(
            Op::NeighborLpNormSum(x, adj, c, p),
            DenseMatrix::from_vec(1, 1, vec![s]),
            false,
        )
    }

    /// Broadcast-add of a `1 × c` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: TensorId, b: TensorId) -> TensorId {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(bv.rows(), 1, "add_bias: bias must be 1 × c");
        assert_eq!(bv.cols(), xv.cols(), "add_bias: width mismatch");
        let mut v = self.ctx.alloc_copy(xv);
        for i in 0..v.rows() {
            for (o, &bb) in v.row_mut(i).iter_mut().zip(bv.row(0)) {
                *o += bb;
            }
        }
        self.push(Op::AddBias(x, b), v, false)
    }

    // ----- backward -------------------------------------------------------------

    /// Runs the backward pass from the scalar tensor `output` (must be
    /// `1 × 1`), filling gradients for every differentiable ancestor.
    ///
    /// # Panics
    /// Panics if `output` is not `1 × 1`.
    pub fn backward(&mut self, output: TensorId) {
        assert_eq!(
            self.shape(output),
            (1, 1),
            "backward requires a scalar output"
        );
        for g in &mut self.grads {
            if let Some(old) = g.take() {
                self.ctx.recycle(old);
            }
        }
        self.grads[output.0] = Some(DenseMatrix::from_vec(1, 1, vec![1.0]));
        for idx in (0..=output.0).rev() {
            let Some(grad) = self.grads[idx].take() else {
                continue;
            };
            // lint: allow(check_site) reason=backward is one uninterruptible unit of work; the §11 check sits at the epoch boundary in the train loop
            self.propagate(idx, &grad);
            self.grads[idx] = Some(grad);
        }
    }

    fn accumulate(&mut self, id: TensorId, delta: DenseMatrix) {
        if self.nodes[id.0].is_const {
            self.ctx.recycle(delta);
            return;
        }
        match &mut self.grads[id.0] {
            Some(g) => {
                g.axpy(1.0, &delta);
                self.ctx.recycle(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, idx: usize, g: &DenseMatrix) {
        // Clone the op descriptor cheaply via match on borrowed data; we
        // compute deltas from immutable borrows, then accumulate.
        enum Delta {
            One(TensorId, DenseMatrix),
            Two(TensorId, DenseMatrix, TensorId, DenseMatrix),
            Many(Vec<(TensorId, DenseMatrix)>),
            None,
        }
        let delta = {
            let ctx = &self.ctx;
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => Delta::None,
                Op::MatMul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    Delta::Two(*a, ctx.matmul_nt(g, bv), *b, ctx.matmul_tn(av, g))
                }
                Op::SpMM(s, b) => Delta::One(*b, ctx.spmm_t(s, g)),
                Op::Add(a, b) => Delta::Two(*a, ctx.alloc_copy(g), *b, ctx.alloc_copy(g)),
                Op::Sub(a, b) => Delta::Two(*a, ctx.alloc_copy(g), *b, ctx.unary(g, |x| -x)),
                Op::Hadamard(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    Delta::Two(
                        *a,
                        ctx.binary(g, bv, |x, y| x * y),
                        *b,
                        ctx.binary(g, av, |x, y| x * y),
                    )
                }
                Op::ScalarMul(a, c) => {
                    let c = *c;
                    Delta::One(*a, ctx.unary(g, |x| x * c))
                }
                Op::AddConst(a) => Delta::One(*a, ctx.alloc_copy(g)),
                Op::HadamardConst(a, c) => Delta::One(*a, ctx.binary(g, c, |x, y| x * y)),
                Op::Relu(a) => {
                    let av = &self.nodes[a.0].value;
                    Delta::One(
                        *a,
                        ctx.binary(g, av, |gg, x| if x > 0.0 { gg } else { 0.0 }),
                    )
                }
                Op::LeakyRelu(a, slope) => {
                    let av = &self.nodes[a.0].value;
                    let s = *slope;
                    Delta::One(
                        *a,
                        ctx.binary(g, av, move |gg, x| if x > 0.0 { gg } else { s * gg }),
                    )
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    Delta::One(*a, ctx.binary(g, y, |gg, yy| gg * yy * (1.0 - yy)))
                }
                Op::Exp(a) => Delta::One(*a, ctx.binary(g, &node.value, |x, y| x * y)),
                Op::Ln(a) => {
                    let av = &self.nodes[a.0].value;
                    Delta::One(*a, ctx.binary(g, av, |gg, x| gg / x.max(CLAMP_EPS)))
                }
                Op::PowScalar(a, p) => {
                    let av = &self.nodes[a.0].value;
                    let p = *p;
                    let clamp = p < 0.0 || p.fract() != 0.0;
                    Delta::One(
                        *a,
                        ctx.binary(g, av, move |gg, x| {
                            let x = if clamp { x.max(CLAMP_EPS) } else { x };
                            gg * p * x.powf(p - 1.0)
                        }),
                    )
                }
                Op::Transpose(a) => Delta::One(*a, g.transpose()),
                Op::RowSum(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = ctx.alloc_zeroed(r, c);
                    for i in 0..r {
                        let gi = g.get(i, 0);
                        for v in d.row_mut(i) {
                            *v = gi;
                        }
                    }
                    Delta::One(*a, d)
                }
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = ctx.alloc_zeroed(r, c);
                    d.as_mut_slice().fill(g.get(0, 0));
                    Delta::One(*a, d)
                }
                Op::ScaleRows(x, s) => {
                    let xv = &self.nodes[x.0].value;
                    let sv = &self.nodes[s.0].value;
                    let mut dx = ctx.alloc_copy(g);
                    let mut ds = ctx.alloc_zeroed(sv.rows(), 1);
                    for i in 0..xv.rows() {
                        let si = sv.get(i, 0);
                        let mut acc = 0.0;
                        for (d, &xx) in dx.row_mut(i).iter_mut().zip(xv.row(i)) {
                            acc += *d * xx;
                            *d *= si;
                        }
                        ds.set(i, 0, acc);
                    }
                    Delta::Two(*x, dx, *s, ds)
                }
                Op::ScaleCols(x, s) => {
                    let xv = &self.nodes[x.0].value;
                    let sv = &self.nodes[s.0].value;
                    let mut dx = ctx.alloc_copy(g);
                    let mut ds = ctx.alloc_zeroed(sv.rows(), 1);
                    for i in 0..xv.rows() {
                        let xr = xv.row(i);
                        for (j, d) in dx.row_mut(i).iter_mut().enumerate() {
                            ds.add_at(j, 0, *d * xr[j]);
                            *d *= sv.get(j, 0);
                        }
                    }
                    Delta::Two(*x, dx, *s, ds)
                }
                Op::SoftmaxRows(a) => {
                    let y = &node.value;
                    let mut d = ctx.alloc_zeroed(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yr = y.row(i);
                        let gr = g.row(i);
                        let dot: f64 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                        for (j, dv) in d.row_mut(i).iter_mut().enumerate() {
                            *dv = yr[j] * (gr[j] - dot);
                        }
                    }
                    Delta::One(*a, d)
                }
                Op::MaskedSoftmaxRows(a, mask) => {
                    let y = &node.value;
                    let mut d = ctx.alloc_zeroed(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yr = y.row(i);
                        let gr = g.row(i);
                        let mr = mask.row(i);
                        let dot: f64 = yr
                            .iter()
                            .zip(gr.iter().zip(mr))
                            .map(|(&yy, (&gg, &mm))| if mm != 0.0 { yy * gg } else { 0.0 })
                            .sum();
                        for (j, dv) in d.row_mut(i).iter_mut().enumerate() {
                            if mr[j] != 0.0 {
                                *dv = yr[j] * (gr[j] - dot);
                            }
                        }
                    }
                    Delta::One(*a, d)
                }
                Op::CrossEntropy(logits, labels, rows) => {
                    let x = &self.nodes[logits.0].value;
                    let scale = g.get(0, 0) / rows.len() as f64;
                    let mut d = ctx.alloc_zeroed(x.rows(), x.cols());
                    for &r in rows.iter() {
                        let row = x.row(r);
                        let lse = log_sum_exp(row);
                        let dr = d.row_mut(r);
                        for (j, dv) in dr.iter_mut().enumerate() {
                            let p = (row[j] - lse).exp();
                            *dv += scale * (p - if j == labels[r] { 1.0 } else { 0.0 });
                        }
                    }
                    Delta::One(*logits, d)
                }
                Op::Dropout(a, mask) => Delta::One(*a, ctx.binary(g, mask, |x, y| x * y)),
                Op::AddOuter(s, d) => {
                    let rs = g.row_sums();
                    let cs = g.col_sums();
                    let n = rs.len();
                    let m = cs.len();
                    Delta::Two(
                        *s,
                        DenseMatrix::from_vec(n, 1, rs),
                        *d,
                        DenseMatrix::from_vec(m, 1, cs),
                    )
                }
                Op::ConcatCols(parts) => {
                    let mut deltas = Vec::with_capacity(parts.len());
                    let mut off = 0;
                    for &p in parts {
                        let (r, c) = self.nodes[p.0].value.shape();
                        let mut d = ctx.alloc_zeroed(r, c);
                        for i in 0..r {
                            d.row_mut(i).copy_from_slice(&g.row(i)[off..off + c]);
                        }
                        deltas.push((p, d));
                        off += c;
                    }
                    Delta::Many(deltas)
                }
                Op::RowLpNormSum(x, p) => {
                    let xv = &self.nodes[x.0].value;
                    let gg = g.get(0, 0);
                    let mut d = ctx.alloc_zeroed(xv.rows(), xv.cols());
                    for i in 0..xv.rows() {
                        lp_norm_grad(xv.row(i), *p, gg, d.row_mut(i));
                    }
                    Delta::One(*x, d)
                }
                Op::NeighborLpNormSum(x, adj, c, p) => {
                    let xv = &self.nodes[x.0].value;
                    let gg = g.get(0, 0);
                    let mut d = ctx.alloc_zeroed(xv.rows(), xv.cols());
                    let mut diff = vec![0.0; xv.cols()];
                    let mut partial = vec![0.0; xv.cols()];
                    for v in 0..adj.rows() {
                        let xr = xv.row(v);
                        for (u, w) in adj.row_iter(v) {
                            if w == 0.0 {
                                continue;
                            }
                            let cu = c.row(u);
                            for (dd, (a, b)) in diff.iter_mut().zip(xr.iter().zip(cu)) {
                                *dd = a - b;
                            }
                            partial.iter_mut().for_each(|v| *v = 0.0);
                            lp_norm_grad(&diff, *p, gg, &mut partial);
                            for (dv, &pv) in d.row_mut(v).iter_mut().zip(&partial) {
                                *dv += pv;
                            }
                        }
                    }
                    Delta::One(*x, d)
                }
                Op::AddBias(x, b) => {
                    let cs = g.col_sums();
                    let m = cs.len();
                    Delta::Two(*x, ctx.alloc_copy(g), *b, DenseMatrix::from_vec(1, m, cs))
                }
            }
        };
        match delta {
            Delta::None => {}
            Delta::One(a, d) => self.accumulate(a, d),
            Delta::Two(a, da, b, db) => {
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Delta::Many(ds) => {
                for (id, d) in ds {
                    self.accumulate(id, d);
                }
            }
        }
    }
}

/// In-place softmax of a slice (numerically stabilized).
///
/// A row of all `-∞` (no admissible entry) produces an **all-zero row**,
/// uniform with [`masked_softmax_slice`]'s all-masked convention — not NaN,
/// which `exp(-∞ − -∞)` would otherwise yield. The zero row also backprops
/// a zero (not NaN) gradient, since the softmax Jacobian vanishes with the
/// outputs.
fn softmax_slice(row: &mut [f64]) {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Masked softmax: `out[j] = exp(x[j]) / Σ_{mask} exp(x[k])` on masked
/// entries, 0 elsewhere. All-masked rows produce all zeros.
fn masked_softmax_slice(x: &[f64], mask: &[f64], out: &mut [f64]) {
    let mut max = f64::NEG_INFINITY;
    for (v, &m) in x.iter().zip(mask) {
        if m != 0.0 {
            max = max.max(*v);
        }
    }
    if max == f64::NEG_INFINITY {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let mut sum = 0.0;
    for ((o, &v), &m) in out.iter_mut().zip(x).zip(mask) {
        if m != 0.0 {
            *o = (v - max).exp();
            sum += *o;
        } else {
            *o = 0.0;
        }
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Numerically stable `log Σ exp`.
pub(crate) fn log_sum_exp(row: &[f64]) -> f64 {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max + row.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

/// Accumulates `scale * ∂‖v‖_p / ∂v` into `out`.
///
/// Subgradient conventions: at `v[j] = 0` the `p = 1` subgradient 0 is used;
/// a zero vector contributes nothing for any `p`.
fn lp_norm_grad(v: &[f64], p: f64, scale: f64, out: &mut [f64]) {
    if p == 1.0 {
        for (o, &x) in out.iter_mut().zip(v) {
            *o += scale * x.signum() * if x == 0.0 { 0.0 } else { 1.0 };
        }
    } else if p == 2.0 {
        let norm = bbgnn_linalg::dense::lp_norm(v, 2.0);
        if norm > 0.0 {
            for (o, &x) in out.iter_mut().zip(v) {
                *o += scale * x / norm;
            }
        }
    } else {
        let norm = bbgnn_linalg::dense::lp_norm(v, p);
        if norm > 0.0 {
            let k = norm.powf(1.0 - p);
            for (o, &x) in out.iter_mut().zip(v) {
                if x != 0.0 {
                    *o += scale * k * x.abs().powf(p - 1.0) * x.signum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_chain_value() {
        let mut t = Tape::new();
        let a = t.var(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.var(DenseMatrix::identity(2));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c), t.value(a));
    }

    #[test]
    fn backward_through_sum_of_matmul() {
        // f = sum(A @ B); df/dA = ones @ B^T, df/dB = A^T @ ones.
        let mut t = Tape::new();
        let av = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bv = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let a = t.var(av.clone());
        let b = t.var(bv.clone());
        let c = t.matmul(a, b);
        let s = t.sum_all(c);
        t.backward(s);
        let ones = DenseMatrix::filled(2, 2, 1.0);
        assert!(t.grad(a).unwrap().max_abs_diff(&ones.matmul_nt(&bv)) < 1e-12);
        assert!(t.grad(b).unwrap().max_abs_diff(&av.matmul_tn(&ones)) < 1e-12);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut t = Tape::new();
        let a = t.var(DenseMatrix::filled(2, 2, 1.0));
        let c = t.constant(DenseMatrix::filled(2, 2, 3.0));
        let h = t.hadamard(a, c);
        let s = t.sum_all(h);
        t.backward(s);
        assert!(t.grad(c).is_none());
        assert!(t.grad(a).is_some());
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let mut t = Tape::new();
        let logits = t.var(DenseMatrix::zeros(3, 4));
        let loss = t.cross_entropy(logits, Rc::new(vec![0, 1, 2]), Rc::new(vec![0, 1, 2]));
        assert!((t.value(loss).get(0, 0) - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::uniform(4, 5, 3.0, 8));
        let y = t.softmax_rows(x);
        for s in t.value(y).row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn masked_softmax_ignores_masked_entries() {
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::from_rows(&[&[1.0, 100.0, 1.0]]));
        let mask = Rc::new(DenseMatrix::from_rows(&[&[1.0, 0.0, 1.0]]));
        let y = t.masked_softmax_rows(x, mask);
        assert_eq!(t.value(y).get(0, 1), 0.0);
        assert!((t.value(y).get(0, 0) - 0.5).abs() < 1e-12);
    }

    /// A row of all `-∞` logits (every entry inadmissible) must yield an
    /// all-zero softmax row — uniform with the masked variant — and a
    /// zero (not NaN) gradient through backward.
    #[test]
    fn softmax_all_neg_inf_row_is_zero_with_zero_gradient() {
        let inf = f64::NEG_INFINITY;
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::from_rows(&[
            &[inf, inf, inf],
            &[0.0, 0.0, inf],
        ]));
        let y = t.softmax_rows(x);
        assert_eq!(t.value(y).row(0), &[0.0, 0.0, 0.0], "degenerate row");
        assert!((t.value(y).get(1, 0) - 0.5).abs() < 1e-12, "healthy row");
        assert_eq!(t.value(y).get(1, 2), 0.0, "-inf entry in a finite row");
        let s = t.sum_all(y);
        t.backward(s);
        let g = t.grad(x).unwrap();
        for j in 0..3 {
            assert_eq!(g.get(0, j), 0.0, "zero row ⇒ zero gradient, not NaN");
        }
    }

    /// All-masked (empty-mask) rows of the masked softmax: zero row and
    /// zero backprop gradient, no NaN anywhere.
    #[test]
    fn masked_softmax_empty_mask_row_is_zero_with_zero_gradient() {
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::from_rows(&[&[5.0, 1.0], &[2.0, 3.0]]));
        let mask = Rc::new(DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]));
        let y = t.masked_softmax_rows(x, mask);
        assert_eq!(t.value(y).row(0), &[0.0, 0.0]);
        let row1_sum: f64 = t.value(y).row(1).iter().sum();
        assert!((row1_sum - 1.0).abs() < 1e-12);
        let s = t.sum_all(y);
        t.backward(s);
        let g = t.grad(x).unwrap();
        assert_eq!(g.row(0), &[0.0, 0.0], "empty-mask row ⇒ zero gradient");
        for v in g.as_slice() {
            assert!(v.is_finite(), "gradient contains a non-finite value");
        }
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::uniform(3, 3, 1.0, 1));
        let y = t.dropout(x, 0.0, 0);
        assert_eq!(t.value(y), t.value(x));
    }

    #[test]
    fn dropout_scales_to_preserve_expectation() {
        let mut t = Tape::new();
        let x = t.var(DenseMatrix::filled(100, 100, 1.0));
        let y = t.dropout(x, 0.5, 3);
        let mean = t.value(y).sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_twice_resets_gradients() {
        let mut t = Tape::new();
        let a = t.var(DenseMatrix::filled(2, 2, 2.0));
        let s = t.sum_all(a);
        t.backward(s);
        t.backward(s);
        assert!(
            t.grad(a)
                .unwrap()
                .max_abs_diff(&DenseMatrix::filled(2, 2, 1.0))
                < 1e-12
        );
    }

    #[test]
    fn concat_cols_values() {
        let mut t = Tape::new();
        let a = t.var(DenseMatrix::filled(2, 1, 1.0));
        let b = t.var(DenseMatrix::filled(2, 2, 2.0));
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.shape(c), (2, 3));
        assert_eq!(t.value(c).row(0), &[1.0, 2.0, 2.0]);
    }
}
