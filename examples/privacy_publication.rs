//! Graph publication under privacy constraints — the paper's motivating
//! scenario from the introduction.
//!
//! An Internet platform wants to publish a user graph but perturbs it
//! first so that downstream GNNs cannot recover sensitive attributes.
//! PEEGA doubles as the perturbation engine: by maximizing the
//! representation difference (Def. 3), the published graph's GNN-learned
//! node representations drift away from the originals. This example sweeps
//! the perturbation rate and reports, per rate:
//!
//! * downstream GCN accuracy on the published graph (the "privacy" axis —
//!   lower means attributes are harder to recover);
//! * the self-view representation drift `Σ_v ‖ĥ_v − h_v‖₂` that PEEGA
//!   maximizes;
//! * graph-statistics drift (edge count, homophily) as a utility proxy.
//!
//! ```sh
//! cargo run --release --example privacy_publication
//! ```

use bbgnn::prelude::*;

fn main() {
    let graph = DatasetSpec::CiteseerLike.generate(0.12, 11);
    println!(
        "user graph: {} nodes, {} edges, homophily {:.3}\n",
        graph.num_nodes(),
        graph.num_edges(),
        edge_homophily(&graph)
    );
    let clean_prop = graph.propagate(2);

    println!(
        "{:>5} {:>10} {:>12} {:>8} {:>10} {:>11} {:>14}",
        "rate", "GCN acc", "repr drift", "edges", "homophily", "clustering", "utility drift"
    );
    for &rate in &[0.0, 0.05, 0.1, 0.15, 0.2] {
        let published = if rate == 0.0 {
            graph.clone()
        } else {
            let mut engine = Peega::new(PeegaConfig {
                rate,
                ..Default::default()
            });
            engine.attack(&graph).poisoned
        };
        let mut gcn = Gcn::paper_default(TrainConfig::default());
        gcn.fit(&published);
        let acc = gcn.test_accuracy(&published);

        let drift: f64 = {
            let prop = published.propagate(2);
            (0..graph.num_nodes())
                .map(|v| {
                    let d: Vec<f64> = prop
                        .row(v)
                        .iter()
                        .zip(clean_prop.row(v))
                        .map(|(a, b)| a - b)
                        .collect();
                    bbgnn::linalg::dense::lp_norm(&d, 2.0)
                })
                .sum()
        };
        let stats = graph_stats(&published);
        println!(
            "{:>5.2} {:>10.4} {:>12.2} {:>8} {:>10.3} {:>11.4} {:>14.4}",
            rate,
            acc,
            drift,
            stats.edges,
            edge_homophily(&published),
            stats.clustering,
            utility_drift(&graph, &published)
        );
    }
    println!("\nHigher rates push representations further from the originals (more");
    println!("privacy) at the cost of graph utility — the trade-off the paper's");
    println!("introduction motivates for privacy-preserving data publication.");
}
