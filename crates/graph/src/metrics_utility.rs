//! Graph-utility statistics for the privacy-publication scenario: when a
//! platform perturbs a graph before release (the paper's introduction),
//! these summaries quantify how much analytic utility the published graph
//! retains.

use crate::Graph;

/// Summary statistics of a graph's topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global (mean local) clustering coefficient.
    pub clustering: f64,
    /// Fraction of isolated nodes.
    pub isolated_fraction: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_nodes();
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mean_degree = degrees.iter().sum::<usize>() as f64 / n as f64;
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    GraphStats {
        nodes: n,
        edges: g.num_edges(),
        mean_degree,
        max_degree,
        clustering: average_clustering(g),
        isolated_fraction: isolated as f64 / n as f64,
    }
}

/// Mean local clustering coefficient: for each node with degree ≥ 2, the
/// fraction of neighbor pairs that are themselves connected; nodes with
/// degree < 2 contribute 0 (the networkx convention).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for v in 0..n {
        let neigh: Vec<usize> = g.neighbors(v).collect();
        let d = neigh.len();
        if d < 2 {
            continue;
        }
        let mut closed = 0usize;
        for i in 0..d {
            for j in (i + 1)..d {
                if g.has_edge(neigh[i], neigh[j]) {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (d * (d - 1) / 2) as f64;
    }
    total / n as f64
}

/// Relative utility drift between an original graph and its published
/// (perturbed) version: mean absolute relative change across edge count,
/// mean degree, and clustering. 0 = identical utility profile.
pub fn utility_drift(original: &Graph, published: &Graph) -> f64 {
    let a = graph_stats(original);
    let b = graph_stats(published);
    let rel = |x: f64, y: f64| {
        if x == 0.0 && y == 0.0 {
            0.0
        } else {
            (x - y).abs() / x.abs().max(y.abs())
        }
    };
    (rel(a.edges as f64, b.edges as f64)
        + rel(a.mean_degree, b.mean_degree)
        + rel(a.clustering, b.clustering))
        / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits::Split;
    use bbgnn_linalg::DenseMatrix;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 plus pendant 3 and isolated 4.
        Graph::new(
            5,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            DenseMatrix::identity(5),
            vec![0; 5],
            1,
            Split::trivial(5),
        )
    }

    #[test]
    fn clustering_of_known_graph() {
        let g = triangle_plus_tail();
        // Nodes 0, 1: coefficient 1 (their 2 neighbors are connected).
        // Node 2: neighbors {0,1,3}; of 3 pairs, only (0,1) closed => 1/3.
        // Nodes 3, 4: degree < 2 => 0.
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 5.0;
        assert!((average_clustering(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn stats_of_known_graph() {
        let s = graph_stats(&triangle_plus_tail());
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 3);
        assert!((s.mean_degree - 8.0 / 5.0).abs() < 1e-12);
        assert!((s.isolated_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn utility_drift_zero_for_identical_graphs() {
        let g = triangle_plus_tail();
        assert_eq!(utility_drift(&g, &g), 0.0);
    }

    #[test]
    fn utility_drift_grows_with_perturbation() {
        let g = triangle_plus_tail();
        let mut light = g.clone();
        light.flip_edge(3, 4);
        // Heavy: dismantle the triangle entirely (clustering 0.47 -> 0).
        let mut heavy = light.clone();
        heavy.flip_edge(0, 1);
        heavy.flip_edge(1, 2);
        heavy.flip_edge(0, 2);
        assert!(utility_drift(&g, &light) < utility_drift(&g, &heavy));
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let edges: Vec<(usize, usize)> = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let g = Graph::new(
            5,
            &edges,
            DenseMatrix::identity(5),
            vec![0; 5],
            1,
            Split::trivial(5),
        );
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }
}
