//! DICE — "Delete Internally, Connect Externally" (Waniek et al. 2018).
//!
//! A label-aware heuristic baseline: each budgeted modification either
//! deletes an edge between same-label nodes or adds an edge between
//! different-label nodes, chosen uniformly at random. DICE needs labels
//! (gray-box) but no gradients, so it sits between the random control and
//! the optimization-based attackers — a useful calibration point for how
//! much of Fig. 2's Add+Diff pattern alone explains attack strength.

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// DICE configuration.
#[derive(Clone, Debug)]
pub struct DiceConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Probability of a deletion (vs. an addition) per step.
    pub delete_prob: f64,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiceConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            delete_prob: 0.5,
            attacker_nodes: AttackerNodes::All,
            seed: 0,
        }
    }
}

/// The DICE heuristic attacker.
#[derive(Clone, Debug)]
pub struct Dice {
    /// Configuration.
    pub config: DiceConfig,
}

impl Dice {
    /// Creates a DICE attacker.
    pub fn new(config: DiceConfig) -> Self {
        Self { config }
    }
}

impl Attacker for Dice {
    fn name(&self) -> &'static str {
        "DICE"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let cfg = &self.config;
        let n = g.num_nodes();
        let budget = budget_for(g, cfg.rate);
        let _span = bbgnn_obs::span!("attack/dice", nodes = n, budget = budget);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut poisoned = g.clone();
        let mut touched = std::collections::HashSet::new();
        let mut done = 0usize;
        let mut guard = 0usize;
        let mut truncated = false;
        while done < budget && guard < budget * 500 + 2000 {
            // Cooperative stop site (DESIGN.md §11): flips so far are kept.
            if crate::should_stop("attack/dice/flip") {
                truncated = true;
                break;
            }
            guard += 1;
            let delete = rng.gen::<f64>() < cfg.delete_prob;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || !cfg.attacker_nodes.edge_allowed(u, v) {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if touched.contains(&key) {
                continue;
            }
            let same_label = g.labels[u] == g.labels[v];
            if delete {
                // Delete internally: same-label existing edge.
                if same_label && poisoned.has_edge(u, v) {
                    poisoned.remove_edge(u, v);
                    touched.insert(key);
                    done += 1;
                }
            } else {
                // Connect externally: different-label non-edge.
                if !same_label && !poisoned.has_edge(u, v) {
                    poisoned.add_edge(u, v);
                    touched.insert(key);
                    done += 1;
                }
            }
        }
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;
    use bbgnn_graph::metrics::edge_diff_breakdown;

    #[test]
    fn respects_budget_and_pattern() {
        let g = DatasetSpec::CoraLike.generate(0.05, 621);
        let mut atk = Dice::new(DiceConfig {
            rate: 0.1,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips <= budget_for(&g, 0.1));
        let d = edge_diff_breakdown(&g, &r.poisoned);
        // By construction, only Del+Same and Add+Diff occur.
        assert_eq!(d.add_same, 0);
        assert_eq!(d.del_diff, 0);
        assert!(d.add_diff > 0 || d.del_same > 0);
    }

    #[test]
    fn delete_prob_extremes() {
        let g = DatasetSpec::CoraLike.generate(0.05, 622);
        let mut only_add = Dice::new(DiceConfig {
            delete_prob: 0.0,
            ..Default::default()
        });
        let d = edge_diff_breakdown(&g, &only_add.attack(&g).poisoned);
        assert_eq!(d.del_same + d.del_diff, 0);
        let mut only_del = Dice::new(DiceConfig {
            delete_prob: 1.0,
            ..Default::default()
        });
        let d = edge_diff_breakdown(&g, &only_del.attack(&g).poisoned);
        assert_eq!(d.add_same + d.add_diff, 0);
    }

    #[test]
    fn is_deterministic() {
        let g = DatasetSpec::CoraLike.generate(0.05, 623);
        let run = || {
            let mut atk = Dice::new(DiceConfig {
                seed: 9,
                ..Default::default()
            });
            atk.attack(&g).poisoned.edges().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
