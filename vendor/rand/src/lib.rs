//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`seq::SliceRandom`]
//! (`shuffle` / `choose`). Streams are deterministic given a seed but are
//! **not** bit-compatible with upstream `rand`; the workspace only relies
//! on determinism, never on specific streams.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the standard
//! public-domain construction (Blackman & Vigna).

#![deny(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Lemire multiply-shift: unbiased enough for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span == 1 << 64 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5usize..5);
    }
}
