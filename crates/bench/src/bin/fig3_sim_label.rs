//! Fig. 3 — cross-label neighborhood similarity under Metattack at
//! perturbation rates r ∈ {0, 0.5, 1, 5}, with the GCN accuracy per rate.
//!
//! Reproduction target: the clean graph shows high intra-label (diagonal)
//! and low inter-label similarity; as r grows, inter-label similarity
//! rises, contexts blur, and accuracy falls.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::gcn_accuracy};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig3_sim_label"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);

    // The paper's r = 5 flips 5× the edge count — at miniature scale the
    // densified graph makes Metattack's dense gradient loop very slow, so
    // the sweep is capped at 1.0 by default (the trend saturates earlier).
    let rates = [0.0, 0.5, 1.0];
    let mut summary = Table::new(&["ptb rate", "intra-label sim", "inter-label sim", "GCN acc"]);
    for &r in &rates {
        let poisoned = if r == 0.0 {
            g.clone()
        } else {
            let mut atk = Metattack::new(MetattackConfig {
                rate: r,
                retrain_every: 20,
                ..Default::default()
            });
            atk.attack(&g).poisoned
        };
        let sim = cross_label_similarity(&poisoned);
        let (intra, inter) = intra_inter_similarity(&sim);
        let acc = gcn_accuracy(&poisoned, cfg.runs, cfg.seed);

        println!("\n--- similarity matrix at r = {r} (Acc = {acc}) ---");
        let mut matrix = Table::new(
            &std::iter::once("label".to_string())
                .chain((0..g.num_classes).map(|c| format!("y{c}")))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );
        for i in 0..g.num_classes {
            let mut row = vec![format!("y{i}")];
            for j in 0..g.num_classes {
                row.push(format!("{:.3}", sim.get(i, j)));
            }
            matrix.push_row(row);
        }
        print!("{}", matrix.render());

        summary.push_row(vec![
            format!("{r}"),
            format!("{intra:.4}"),
            format!("{inter:.4}"),
            acc.to_string(),
        ]);
    }
    println!();
    summary.emit(&cfg.out_dir, "fig3_sim_label");
    println!("\npaper: rising r blurs contexts (inter-label similarity up, accuracy down).");
}
