//! Zero-dependency observability: hierarchical spans, monotonically-timed
//! events, and typed counters, drained to a JSONL trace file.
//!
//! The paper's evaluation is a grid of long-running train/attack/defend
//! loops; when a cell stalls or converges to garbage, final numbers alone
//! cannot say *where* the time or the divergence came from. This crate is
//! the substrate every layer hangs its instrumentation on:
//!
//! * **Spans** ([`span!`]) — RAII guards with per-thread parent tracking.
//!   A span emits an `open` record on creation and a `close` record on
//!   drop; nesting is the thread's lexical guard nesting.
//! * **Events** ([`event!`]) — point-in-time records with typed fields
//!   (the per-epoch training timeline, per-perturbation attack steps).
//! * **Counters** ([`counter`]) — monotone named totals (edges flipped,
//!   SpMM calls, retries, early-stops), aggregated per-thread and drained
//!   as `ctr` records when a thread's outermost span closes, the thread
//!   exits, or [`flush`] is called.
//! * **Kernel timers** ([`kernel_timer`]) — per-kernel call-count and
//!   wall-time aggregates cheap enough for the matmul/SpMM hot paths
//!   (one `HashMap` bump per call; no record per call).
//! * **Live mirror** ([`live`]) — an opt-in process-wide mirror of
//!   counter totals for in-process progress snapshots (`bbgnn-serve`
//!   polls it); works with or without a trace sink and never changes
//!   what the sink receives.
//!
//! ## Overhead contract
//!
//! Tracing is **disabled by default** and every entry point first performs
//! a single relaxed atomic load. Disabled, a span is a no-op struct, an
//! event macro short-circuits before evaluating its fields, and a kernel
//! timer never reads the clock — the instrumented kernels regress by well
//! under the 3% budget (CI enforces this against `BENCH_kernels.json`).
//! Tracing **observes only**: enabling it never changes a result byte.
//!
//! ## Enabling
//!
//! Set `BBGNN_TRACE=/path/to/trace.jsonl` (honored by
//! [`init_from_env`], which every experiment binary calls via its config
//! parser) or pass `--trace path` to a bench binary. The `trace_report`
//! binary aggregates a trace into per-phase self/total-time tables and
//! per-epoch training curves.
//!
//! ## Schema (one JSON object per line, hand-rolled like the checkpoint
//! format — no serde)
//!
//! | record | fields |
//! |---|---|
//! | `{"t":"open", "id":N, "par":P, "tid":T, "us":U, "name":"...", "f":{...}}` | span start; `par` 0 = root |
//! | `{"t":"close","id":N, "tid":T, "us":U}` | span end |
//! | `{"t":"ev",  "name":"...", "span":N, "tid":T, "us":U, "f":{...}}` | event inside span `N` (0 = none) |
//! | `{"t":"ctr", "name":"...", "tid":T, "add":D}` | counter increment total |
//! | `{"t":"ctr", "name":"...", "tid":T, "calls":C, "ns":W}` | kernel timer aggregate |
//!
//! Timestamps `us` are microseconds since trace init (monotonic,
//! `Instant`-based). Span ids are process-unique; parents are tracked per
//! thread (a span opened on a worker thread roots at `par: 0`).

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Fast-path gate: one relaxed load decides every entry point. Derived —
/// true iff sink-backed tracing ([`TRACE_ON`]) or the live mirror
/// ([`LIVE`]) is on; [`recompute_gate`] keeps it in sync.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Sink-backed tracing requested ([`init_to_writer`] / [`shutdown`]).
static TRACE_ON: AtomicBool = AtomicBool::new(false);
/// Live-mirror requested ([`live::enable`] / [`live::disable`]).
static LIVE: AtomicBool = AtomicBool::new(false);
/// Process-wide counter totals mirrored for [`live::snapshot`].
static LIVE_TOTALS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Re-derives the fast-path gate from the two opt-in switches.
fn recompute_gate() {
    ENABLED.store(
        TRACE_ON.load(Ordering::SeqCst) || LIVE.load(Ordering::SeqCst),
        Ordering::SeqCst,
    );
}
/// Bumped on every (re)init/shutdown so guards outliving a sink stay quiet.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Process-unique span ids; 0 is reserved for "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Small dense per-thread ids for the `tid` field.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// The active sink, if any.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Monotonic time base shared by every record.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// A typed field value for span/event records.
///
/// JSON has no non-finite numbers; NaN/inf floats serialize as `null`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float (non-finite renders as `null`).
    F(f64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::B(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::S(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::S(v)
    }
}

fn write_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F(_) => out.push_str("null"),
        Value::S(s) => write_json_escaped(out, s),
        Value::B(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn write_fields(out: &mut String, fields: &[(&str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_escaped(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// Per-thread trace state: span stack, counter aggregates, thread id.
struct ThreadState {
    tid: u64,
    stack: Vec<u64>,
    counters: HashMap<&'static str, u64>,
    kernels: HashMap<&'static str, (u64, u64)>, // (calls, ns)
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            counters: HashMap::new(),
            kernels: HashMap::new(),
        }
    }

    /// Emits `ctr` records for every non-zero aggregate and clears them.
    /// When the live mirror is on, the counter totals are additionally
    /// folded into [`LIVE_TOTALS`] — the record bytes are unchanged.
    fn drain_counters(&mut self) {
        if self.counters.is_empty() && self.kernels.is_empty() {
            return;
        }
        if LIVE.load(Ordering::Relaxed) && !self.counters.is_empty() {
            if let Ok(mut totals) = LIVE_TOTALS.lock() {
                for (name, add) in &self.counters {
                    *totals.entry(name).or_insert(0) += add;
                }
            }
        }
        let mut lines = String::new();
        // Deterministic order keeps traces easy to diff.
        let mut names: Vec<&&'static str> = self.counters.keys().collect();
        names.sort_unstable();
        for name in names {
            let add = self.counters[name];
            let _ = write!(lines, "{{\"t\":\"ctr\",\"name\":");
            write_json_escaped(&mut lines, name);
            let _ = writeln!(lines, ",\"tid\":{},\"add\":{add}}}", self.tid);
        }
        let mut knames: Vec<&&'static str> = self.kernels.keys().collect();
        knames.sort_unstable();
        for name in knames {
            let (calls, ns) = self.kernels[name];
            let _ = write!(lines, "{{\"t\":\"ctr\",\"name\":");
            write_json_escaped(&mut lines, name);
            let _ = writeln!(
                lines,
                ",\"tid\":{},\"calls\":{calls},\"ns\":{ns}}}",
                self.tid
            );
        }
        self.counters.clear();
        self.kernels.clear();
        write_raw(&lines);
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // Scoped worker threads die at the end of every parallel region;
        // their aggregates must reach the sink without an explicit flush.
        if enabled() {
            self.drain_counters();
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Microseconds since trace init on the monotonic clock.
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Appends pre-formatted record text (may hold several lines) to the sink.
fn write_raw(text: &str) {
    if text.is_empty() {
        return;
    }
    if let Ok(mut guard) = SINK.lock() {
        if let Some(out) = guard.as_mut() {
            // Best-effort: a full disk must not take the experiment down.
            let _ = out.write_all(text.as_bytes());
        }
    }
}

/// Whether tracing is currently enabled (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Routes the trace to an arbitrary writer (tests use an in-memory buffer).
pub fn init_to_writer(out: Box<dyn Write + Send>) {
    flush();
    if let Ok(mut guard) = SINK.lock() {
        *guard = Some(out);
    }
    EPOCH.get_or_init(Instant::now);
    GENERATION.fetch_add(1, Ordering::SeqCst);
    TRACE_ON.store(true, Ordering::SeqCst);
    recompute_gate();
}

/// Opens (truncating) `path` as the JSONL trace sink and enables tracing.
pub fn init_to_path(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    init_to_writer(Box::new(file));
    Ok(())
}

/// Enables tracing when `BBGNN_TRACE` names a path; returns whether
/// tracing is now on. A path that cannot be created is reported on stderr
/// and tracing stays off (observability must never kill an experiment).
pub fn init_from_env() -> bool {
    match std::env::var("BBGNN_TRACE") {
        Ok(path) if !path.trim().is_empty() => match init_to_path(path.trim()) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("warning: BBGNN_TRACE={path}: {e}; tracing disabled");
                false
            }
        },
        _ => enabled(),
    }
}

/// Drains the calling thread's counter aggregates and flushes the sink.
pub fn flush() {
    if !enabled() {
        return;
    }
    TLS.with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            t.drain_counters();
        }
    });
    if let Ok(mut guard) = SINK.lock() {
        if let Some(out) = guard.as_mut() {
            let _ = out.flush();
        }
    }
}

/// Flushes, disables sink-backed tracing, and closes the sink. The live
/// mirror (if on) stays on: a server can stop writing a trace file without
/// losing its progress counters.
pub fn shutdown() {
    flush();
    TRACE_ON.store(false, Ordering::SeqCst);
    recompute_gate();
    GENERATION.fetch_add(1, Ordering::SeqCst);
    if let Ok(mut guard) = SINK.lock() {
        *guard = None;
    }
}

/// Opt-in in-process mirror of counter totals, for live progress
/// snapshots (the `bbgnn-serve` `GET /jobs/:id` endpoint reads it).
///
/// While enabled, every counter drain additionally folds the drained
/// totals into a process-wide map; [`snapshot`](live::snapshot) returns
/// the accumulated totals sorted by name. The mirror works with or
/// without a trace sink — enabling it turns the counter entry points on
/// (spans/events stay byte-identical when a sink *is* attached; without
/// one their records are formatted and dropped). Off (the default) it
/// costs nothing: the fast-path gate stays a single relaxed load.
pub mod live {
    use super::*;

    /// Turns the mirror on. Totals accumulate from this point.
    pub fn enable() {
        LIVE.store(true, Ordering::SeqCst);
        recompute_gate();
    }

    /// Turns the mirror off and clears the accumulated totals.
    pub fn disable() {
        LIVE.store(false, Ordering::SeqCst);
        recompute_gate();
        reset();
    }

    /// Clears the accumulated totals (the mirror stays on if it was on).
    pub fn reset() {
        if let Ok(mut totals) = LIVE_TOTALS.lock() {
            totals.clear();
        }
    }

    /// Drains the calling thread's pending counter aggregates (exactly as
    /// [`flush`](super::flush) would) and returns every mirrored total,
    /// sorted by counter name. Counters bumped on *other* live threads
    /// appear once those threads drain — at their outermost span close,
    /// thread exit, or their own `flush`.
    pub fn snapshot() -> Vec<(&'static str, u64)> {
        if LIVE.load(Ordering::Relaxed) {
            TLS.with(|tls| {
                if let Ok(mut t) = tls.try_borrow_mut() {
                    t.drain_counters();
                }
            });
        }
        LIVE_TOTALS
            .lock()
            .map(|totals| totals.iter().map(|(&k, &v)| (k, v)).collect())
            .unwrap_or_default()
    }
}

/// RAII span guard: emits `open` on creation and `close` on drop.
///
/// Nesting is per thread: the span open at guard creation (on the same
/// thread) becomes the parent. Disabled tracing yields an inert guard.
#[must_use = "a span closes when dropped; bind it (`let _span = ...`)"]
pub struct Span {
    id: u64,
    generation: u64,
}

impl Span {
    /// An inert guard (tracing disabled).
    const INERT: Span = Span {
        id: 0,
        generation: 0,
    };

    /// The span's id, 0 when inert. Exposed for event correlation tests.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        if !enabled() || self.generation != GENERATION.load(Ordering::Relaxed) {
            return; // the sink this span opened on is gone
        }
        let us = now_us();
        TLS.with(|tls| {
            let Ok(mut t) = tls.try_borrow_mut() else {
                return;
            };
            // Guards drop LIFO within a thread; pop until this id is gone
            // to stay balanced even if an intermediate guard leaked.
            while let Some(top) = t.stack.pop() {
                if top == self.id {
                    break;
                }
            }
            let mut line = String::with_capacity(64);
            let _ = writeln!(
                line,
                "{{\"t\":\"close\",\"id\":{},\"tid\":{},\"us\":{us}}}",
                self.id, t.tid
            );
            let root_closed = t.stack.is_empty();
            if root_closed {
                // The outermost span just ended: piggyback the thread's
                // counter aggregates so traces are complete without an
                // explicit flush at process end.
                t.drain_counters();
            }
            write_raw(&line);
        });
    }
}

/// Opens a span with no fields. Prefer the [`span!`] macro.
pub fn span(name: &str) -> Span {
    span_fields(name, &[])
}

/// Opens a span with typed fields. Prefer the [`span!`] macro.
pub fn span_fields(name: &str, fields: &[(&str, Value)]) -> Span {
    if !enabled() {
        return Span::INERT;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let us = now_us();
    TLS.with(|tls| {
        let Ok(mut t) = tls.try_borrow_mut() else {
            return;
        };
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"t\":\"open\",\"id\":{id},\"par\":{parent},\"tid\":{},\"us\":{us},\"name\":",
            t.tid
        );
        write_json_escaped(&mut line, name);
        if !fields.is_empty() {
            line.push_str(",\"f\":");
            write_fields(&mut line, fields);
        }
        line.push_str("}\n");
        write_raw(&line);
    });
    Span {
        id,
        generation: GENERATION.load(Ordering::Relaxed),
    }
}

/// Emits an event record inside the current span. Prefer the [`event!`]
/// macro, which skips field evaluation while tracing is disabled.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let us = now_us();
    TLS.with(|tls| {
        let Ok(t) = tls.try_borrow() else {
            return;
        };
        let span = t.stack.last().copied().unwrap_or(0);
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"t\":\"ev\",\"name\":");
        write_json_escaped(&mut line, name);
        let _ = write!(line, ",\"span\":{span},\"tid\":{},\"us\":{us}", t.tid);
        if !fields.is_empty() {
            line.push_str(",\"f\":");
            write_fields(&mut line, fields);
        }
        line.push_str("}\n");
        write_raw(&line);
    });
}

/// Adds `delta` to the named counter (aggregated per thread, drained as a
/// `ctr` record — see the module docs for when).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    TLS.with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            *t.counters.entry(name).or_insert(0) += delta;
        }
    });
}

/// Wall-time guard for a kernel invocation: on drop, adds one call and the
/// elapsed nanoseconds to the named kernel aggregate. Inert (never reads
/// the clock) while tracing is disabled.
#[must_use = "the timer records on drop; bind it (`let _t = ...`)"]
pub struct KernelTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        if !enabled() {
            return;
        }
        let ns = start.elapsed().as_nanos() as u64;
        TLS.with(|tls| {
            if let Ok(mut t) = tls.try_borrow_mut() {
                let e = t.kernels.entry(self.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += ns;
            }
        });
    }
}

/// Starts a kernel timer (see [`KernelTimer`]).
#[inline]
pub fn kernel_timer(name: &'static str) -> KernelTimer {
    KernelTimer {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Opens a [`Span`]: `span!("peega/step")` or
/// `span!("bench/cell", key = "cora/PEEGA", attempt = 1u64)`.
///
/// Field values go through [`Value::from`]; field names are the bare
/// identifiers. Returns the guard — bind it to a local.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_fields($name, &[$((stringify!($k), $crate::Value::from($v))),+])
        } else {
            $crate::span($name) // inert: enabled() re-checked inside
        }
    };
}

/// Emits an event: `event!("train/epoch", epoch = e, loss = l)`. Field
/// expressions are not evaluated while tracing is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event($name, &[$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Tests share one global sink; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(f: impl FnOnce()) -> String {
        let buf = SharedBuf::default();
        init_to_writer(Box::new(buf.clone()));
        f();
        shutdown();
        buf.text()
    }

    #[test]
    fn disabled_tracing_is_inert_and_emits_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        shutdown();
        assert!(!enabled());
        let s = span!("quiet", x = 1u64);
        assert_eq!(s.id(), 0);
        drop(s);
        event!("quiet/event", y = 2.0);
        counter("quiet/ctr", 5);
        let _t = kernel_timer("quiet/kernel");
    }

    #[test]
    fn spans_nest_and_balance_with_fields_and_counters() {
        let _g = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            let outer = span!("outer", kind = "test");
            assert_ne!(outer.id(), 0);
            {
                let _inner = span!("inner");
                event!("tick", step = 3usize, loss = 0.5, bad = f64::NAN);
                counter("edges_flipped", 2);
                counter("edges_flipped", 1);
                let _t = kernel_timer("kernel/matmul");
            }
            drop(outer);
        });
        let lines: Vec<&str> = text.lines().collect();
        let opens = lines
            .iter()
            .filter(|l| l.contains("\"t\":\"open\""))
            .count();
        let closes = lines
            .iter()
            .filter(|l| l.contains("\"t\":\"close\""))
            .count();
        assert_eq!(opens, 2);
        assert_eq!(closes, 2);
        // Nesting: the inner span's parent is the outer span's id.
        assert!(lines[0].contains("\"par\":0"));
        assert!(lines[1].contains("\"name\":\"inner\""));
        assert!(!lines[1].contains("\"par\":0"));
        // NaN fields render as null, not as invalid JSON.
        let ev = lines.iter().find(|l| l.contains("\"t\":\"ev\"")).unwrap();
        assert!(ev.contains("\"bad\":null"), "NaN must render null: {ev}");
        assert!(ev.contains("\"step\":3"));
        // Counters drained when the root span closed, with summed totals.
        let ctr = lines
            .iter()
            .find(|l| l.contains("edges_flipped"))
            .expect("counter drained at root close");
        assert!(ctr.contains("\"add\":3"), "2+1 must aggregate: {ctr}");
        assert!(
            lines
                .iter()
                .any(|l| l.contains("kernel/matmul") && l.contains("\"calls\":1")),
            "kernel aggregate missing: {text}"
        );
    }

    #[test]
    fn worker_threads_drain_counters_on_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    counter("worker/work", 7);
                });
            });
        });
        assert!(
            text.contains("worker/work") && text.contains("\"add\":7"),
            "worker-thread counters must flush at thread exit: {text}"
        );
    }

    #[test]
    fn strings_are_json_escaped() {
        let _g = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            event!("weird", msg = "a\"b\\c\nd");
        });
        assert!(text.contains(r#""msg":"a\"b\\c\nd""#), "bad escape: {text}");
    }

    #[test]
    fn live_mirror_accumulates_without_a_sink() {
        let _g = TEST_LOCK.lock().unwrap();
        shutdown();
        live::enable();
        live::reset();
        counter("live/a", 2);
        counter("live/a", 3);
        counter("live/b", 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                counter("live/a", 10);
            });
        });
        let snap = live::snapshot();
        assert_eq!(snap, vec![("live/a", 15), ("live/b", 1)]);
        // Totals persist across snapshots and keep accumulating.
        counter("live/b", 4);
        assert_eq!(live::snapshot(), vec![("live/a", 15), ("live/b", 5)]);
        live::disable();
        assert!(!enabled(), "gate must drop once both switches are off");
        assert!(live::snapshot().is_empty(), "disable clears the mirror");
    }

    #[test]
    fn live_mirror_survives_trace_shutdown_and_keeps_bytes_identical() {
        let _g = TEST_LOCK.lock().unwrap();
        live::enable();
        live::reset();
        let with_live = capture(|| {
            counter("live/traced", 6);
        });
        // The mirror saw the total, and the trace record is the same as a
        // mirror-free run would write.
        assert_eq!(live::snapshot(), vec![("live/traced", 6)]);
        assert!(enabled(), "live keeps the gate on after sink shutdown");
        live::disable();
        let without_live = capture(|| {
            counter("live/traced", 6);
        });
        assert_eq!(
            with_live, without_live,
            "the live mirror must not change trace bytes"
        );
    }
}
