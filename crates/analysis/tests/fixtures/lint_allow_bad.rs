// Fixture: malformed waiver directives must fire the `lint_allow`
// meta-rule instead of silently suppressing nothing.
pub fn malformed(v: &[usize]) -> usize {
    // lint: allow(unwrap) reason=this rule name does not exist
    let a = v.first().copied().unwrap_or(0);
    // lint: allow(panic)
    let b = v.last().copied().unwrap_or(0);
    a + b
}
