//! End-to-end checkpoint/resume: a sweep killed mid-run and re-invoked
//! with the same configuration must produce a byte-identical final report.
//!
//! The kill is simulated by abandoning the harness mid-sweep — exactly
//! what SIGKILL leaves behind, since every completed cell is persisted
//! (atomically) before the next one starts and the harness holds no
//! unflushed state.

use bbgnn_bench::config::ExpConfig;
use bbgnn_bench::fault::{CellValue, FaultRunner};
use bbgnn_bench::report::Table;
use bbgnn_errors::BbgnnError;

const CELLS: usize = 6;

fn test_cfg(tag: &str) -> ExpConfig {
    let out = std::env::temp_dir().join(format!("bbgnn_resume_{tag}"));
    let _ = std::fs::remove_dir_all(&out);
    ExpConfig {
        out_dir: out.display().to_string(),
        ..ExpConfig::default()
    }
}

/// Deterministic stand-in for an expensive evaluation: the value depends
/// on the seed the harness hands the cell, so any seed drift across a
/// resume would change the output.
fn expensive_eval(seed: u64, i: usize) -> String {
    format!(
        "{:.3}",
        (seed.wrapping_mul(2654435761) % 1000) as f64 / 1000.0 + i as f64
    )
}

/// Runs the sweep, returning the rendered report — or `None` when
/// "killed" after `stop_after` cells.
fn run_sweep(cfg: &ExpConfig, stop_after: Option<usize>) -> Option<String> {
    let mut harness = FaultRunner::new(cfg, "resume_test");
    let mut table = Table::new(&["cell", "value"]);
    for i in 0..CELLS {
        if stop_after == Some(i) {
            return None; // simulated SIGKILL: no cleanup, no finalization
        }
        let v = harness.cell(&format!("cell{i}"), cfg.seed, |seed| {
            Ok(CellValue::clean(expensive_eval(seed, i)))
        });
        table.push_row(vec![format!("cell{i}"), v]);
    }
    Some(table.render())
}

#[test]
fn killed_sweep_resumes_byte_identical() {
    // Reference: one uninterrupted run.
    let cfg_ref = test_cfg("reference");
    let reference = run_sweep(&cfg_ref, None).expect("uninterrupted run completes");

    // Interrupted: killed after 3 of 6 cells, then re-invoked.
    let cfg = test_cfg("killed");
    assert!(run_sweep(&cfg, Some(3)).is_none());
    let resumed = run_sweep(&cfg, None).expect("resumed run completes");

    assert_eq!(resumed, reference, "resumed report must be byte-identical");

    let _ = std::fs::remove_dir_all(&cfg_ref.out_dir);
    let _ = std::fs::remove_dir_all(&cfg.out_dir);
}

#[test]
fn resume_skips_completed_cells() {
    let cfg = test_cfg("skip");
    assert!(run_sweep(&cfg, Some(4)).is_none());

    let mut harness = FaultRunner::new(&cfg, "resume_test");
    let mut evaluated = 0;
    for i in 0..CELLS {
        harness.cell(&format!("cell{i}"), cfg.seed, |seed| {
            evaluated += 1;
            Ok(CellValue::clean(expensive_eval(seed, i)))
        });
    }
    assert_eq!(
        harness.stats().cached,
        4,
        "the 4 pre-kill cells must replay from checkpoint"
    );
    assert_eq!(evaluated, 2, "only the unfinished cells may re-run");
    let _ = std::fs::remove_dir_all(&cfg.out_dir);
}

#[test]
fn resume_replays_failed_and_retried_cells_identically() {
    let cfg = test_cfg("outcomes");
    let run = |kill: bool| -> Vec<String> {
        let mut harness = FaultRunner::with_policy(
            &cfg,
            "resume_test",
            bbgnn_errors::RetryPolicy {
                max_retries: 1,
                backoff_base: std::time::Duration::ZERO,
                backoff_max: std::time::Duration::ZERO,
            },
        );
        let mut out = Vec::new();
        // A cell that always fails...
        out.push(
            harness.cell("doomed", cfg.seed, |_| -> Result<CellValue, BbgnnError> {
                Err(BbgnnError::NumericalDivergence {
                    what: "loss".into(),
                    value: f64::NAN,
                })
            }),
        );
        // ...and one that succeeds only on the retry seed.
        out.push(harness.cell("flaky", cfg.seed, |seed| {
            if seed == cfg.seed {
                panic!("first-attempt blowup");
            }
            Ok(CellValue::clean(format!("{seed}")))
        }));
        if !kill {
            out.push(harness.cell("tail", cfg.seed, |seed| {
                Ok(CellValue::clean(expensive_eval(seed, 2)))
            }));
        }
        out
    };
    let first = run(true);
    let second = run(false);
    assert_eq!(
        first[..2],
        second[..2],
        "failed and retried cells must resume verbatim"
    );
    let _ = std::fs::remove_dir_all(&cfg.out_dir);
}
