//! Behavioural tests of the tape API beyond raw gradient correctness:
//! shape contracts, scalar plumbing, composite model shapes, and the
//! optimizer loop on tape-built objectives.

use bbgnn_autodiff::optim::{Adam, Sgd};
use bbgnn_autodiff::Tape;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

#[test]
fn values_are_available_immediately() {
    let mut t = Tape::new();
    let a = t.var(DenseMatrix::filled(2, 2, 3.0));
    let b = t.scalar_mul(a, 2.0);
    assert_eq!(t.value(b).get(0, 0), 6.0);
    assert_eq!(t.shape(b), (2, 2));
}

#[test]
fn grad_is_none_before_backward() {
    let mut t = Tape::new();
    let a = t.var(DenseMatrix::filled(1, 1, 1.0));
    assert!(t.grad(a).is_none());
}

#[test]
fn gradient_accumulates_over_shared_subexpressions() {
    // f = sum(a ∘ a) => df/da = 2a (a is used twice by the same node).
    let mut t = Tape::new();
    let av = DenseMatrix::from_rows(&[&[2.0, -3.0]]);
    let a = t.var(av.clone());
    let sq = t.hadamard(a, a);
    let s = t.sum_all(sq);
    t.backward(s);
    assert!(t.grad(a).unwrap().max_abs_diff(&av.scale(2.0)) < 1e-12);
}

#[test]
fn diamond_graph_gradients() {
    // f = sum((a+a) ∘ a): df/da = 4a via two paths.
    let mut t = Tape::new();
    let av = DenseMatrix::from_rows(&[&[1.5, 0.5]]);
    let a = t.var(av.clone());
    let twice = t.add(a, a);
    let prod = t.hadamard(twice, a);
    let s = t.sum_all(prod);
    t.backward(s);
    assert!(t.grad(a).unwrap().max_abs_diff(&av.scale(4.0)) < 1e-12);
}

#[test]
#[should_panic(expected = "backward requires a scalar")]
fn backward_on_matrix_panics() {
    let mut t = Tape::new();
    let a = t.var(DenseMatrix::zeros(2, 2));
    t.backward(a);
}

#[test]
#[should_panic(expected = "empty row set")]
fn cross_entropy_without_rows_panics() {
    let mut t = Tape::new();
    let a = t.var(DenseMatrix::zeros(2, 2));
    let _ = t.cross_entropy(a, Rc::new(vec![0, 0]), Rc::new(vec![]));
}

#[test]
fn relu_then_spmm_composition() {
    let mut t = Tape::new();
    let s = Rc::new(CsrMatrix::from_triplets(
        2,
        2,
        vec![(0, 1, 1.0), (1, 0, 1.0)],
    ));
    let x = t.var(DenseMatrix::from_rows(&[&[-1.0, 2.0], &[3.0, -4.0]]));
    let r = t.relu(x);
    let y = t.spmm(s, r);
    // spmm swaps rows of relu(x) = [[0,2],[3,0]].
    assert_eq!(t.value(y).row(0), &[3.0, 0.0]);
    assert_eq!(t.value(y).row(1), &[0.0, 2.0]);
}

#[test]
fn two_layer_gcn_shape_contract() {
    // n=5 nodes, d=4 features, h=3 hidden, k=2 classes.
    let mut t = Tape::new();
    let an = Rc::new(CsrMatrix::from_dense(&DenseMatrix::identity(5), 0.0));
    let x = t.constant(DenseMatrix::uniform(5, 4, 1.0, 1));
    let w0 = t.var(DenseMatrix::uniform(4, 3, 1.0, 2));
    let w1 = t.var(DenseMatrix::uniform(3, 2, 1.0, 3));
    let xw = t.matmul(x, w0);
    let h = t.spmm(Rc::clone(&an), xw);
    let h = t.relu(h);
    let hw = t.matmul(h, w1);
    let logits = t.spmm(an, hw);
    assert_eq!(t.shape(logits), (5, 2));
    let loss = t.cross_entropy(logits, Rc::new(vec![0, 1, 0, 1, 0]), Rc::new(vec![0, 1, 2]));
    t.backward(loss);
    assert_eq!(t.grad(w0).unwrap().shape(), (4, 3));
    assert_eq!(t.grad(w1).unwrap().shape(), (3, 2));
}

#[test]
fn adam_beats_sgd_on_ill_conditioned_quadratic() {
    // Loss = sum(w ∘ scales ∘ w) with wildly different curvatures: Adam's
    // per-coordinate scaling should converge much further in equal steps.
    let scales = Rc::new(DenseMatrix::from_rows(&[&[100.0, 0.01]]));
    let start = DenseMatrix::from_rows(&[&[1.0, 1.0]]);
    let run = |use_adam: bool| -> f64 {
        let mut params = vec![start.clone()];
        let mut adam = Adam::new(0.05, 0.0, &params);
        let sgd = Sgd::new(0.001, 0.0);
        for _ in 0..200 {
            let mut t = Tape::new();
            let w = t.var(params[0].clone());
            let sw = t.hadamard_const(w, Rc::clone(&scales));
            let q = t.hadamard(sw, w);
            let loss = t.sum_all(q);
            t.backward(loss);
            let g = t.grad(w).cloned().unwrap();
            if use_adam {
                adam.step(&mut params, &[Some(&g)]);
            } else {
                sgd.step(&mut params, &[Some(&g)]);
            }
        }
        params[0].as_slice().iter().map(|v| v.abs()).sum()
    };
    assert!(run(true) < run(false));
}

#[test]
fn gradcheck_utility_detects_wrong_gradient() {
    // Deliberately break a gradient by building a non-differentiablly-
    // consistent function of the probe (value depends on input, analytic
    // gradient is zero because the path goes through a constant).
    let err = bbgnn_autodiff::gradcheck::max_gradient_error(
        &[DenseMatrix::filled(1, 1, 2.0)],
        1e-5,
        |t, ids| {
            // Copy the input's VALUE into a constant: no gradient flows,
            // but finite differences see the change.
            let frozen = t.value(ids[0]).clone();
            let c = t.constant(frozen);
            let sq = t.hadamard(c, c);
            t.sum_all(sq)
        },
    );
    assert!(
        err > 1.0,
        "checker must flag the broken gradient, err = {err}"
    );
}

#[test]
fn dropout_masks_differ_across_seeds() {
    let mut t = Tape::new();
    let x = t.var(DenseMatrix::filled(10, 10, 1.0));
    let a = t.dropout(x, 0.5, 1);
    let b = t.dropout(x, 0.5, 2);
    assert_ne!(t.value(a), t.value(b));
}

#[test]
fn sub_const_matches_manual_subtraction() {
    let mut t = Tape::new();
    let c = DenseMatrix::filled(2, 2, 1.5);
    let x = t.var(DenseMatrix::filled(2, 2, 5.0));
    let y = t.sub_const(x, &c);
    assert_eq!(t.value(y).get(0, 0), 3.5);
}
