//! Attack/defense-as-a-service on the existing workspace stack.
//!
//! `bbgnn-serve` turns the scenario layer into a long-running service:
//! clients `POST /jobs` a [`JobSpec`](bbgnn_scenario::job::JobSpec) (the
//! same typed spec the bench binaries run), poll `GET /jobs/:id` for
//! progress snapshots — or subscribe to `GET /jobs/:id/events` for a live
//! SSE stream of them — and `DELETE /jobs/:id` to cancel. A pool of
//! `--workers N` job runners executes submissions concurrently; each job
//! runs under its own supervision scope, so a cancel, deadline, or
//! exhausted budget stops exactly that job and never a co-tenant (SIGINT
//! still drains everything — it lives in the process-default domain).
//! Queued jobs dequeue instantly on DELETE; running jobs wind down
//! cooperatively at the same check sites SIGINT uses. Completed results
//! are shared through the content-addressed store, so a duplicate
//! submission (same graph, config, and seed — the spec [`fingerprint`])
//! replays the recorded value with zero training work.
//!
//! Wire format, queue/admission semantics, and the store-sharing
//! anti-aliasing rules are specified in DESIGN.md §12; `README.md` has a
//! curl walkthrough.
//!
//! Layering:
//!
//! * [`http`] — the hand-rolled, bounded HTTP/1.1 subset with keep-alive
//!   and SSE framing (no deps);
//! * [`state`] — job table, bounded FIFO queue, store-backed records;
//! * [`server`] — accept loop, per-connection threads, the worker pool.
//!
//! [`fingerprint`]: bbgnn_scenario::job::JobSpec::fingerprint

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod http;
pub mod server;
pub mod state;

pub use server::Server;
pub use state::{JobPhase, JobRecord, Refused, ServerState};
