//! Per-scope isolation under real concurrency (DESIGN.md §11): a scope's
//! cancel or exhausted budget must never stop a sibling scope, and scope
//! budget counters must never bleed between concurrently-running scopes.
//!
//! This file is also the nightly ThreadSanitizer target for the scope
//! type (see `.github/workflows/sanitizers.yml`): every test genuinely
//! races scope reads/writes across threads.

use bbgnn_supervise::{
    enter, note_epochs, note_queries, stop_reason, RunBudget, Stop, SupervisionScope,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

#[test]
fn cancelling_one_scope_never_stops_a_sibling() {
    let victim = SupervisionScope::new();
    let sibling = SupervisionScope::new();
    victim.activate();
    sibling.activate();
    let barrier = Arc::new(Barrier::new(3));
    let stop_victim = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let scope = Arc::clone(&victim);
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop_victim);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                // Spin at a check site until the cancel lands.
                loop {
                    match stop_reason("test/victim") {
                        Some(Stop::Cancelled) => break,
                        Some(other) => panic!("expected a cancel, got {other:?}"),
                        None => std::hint::spin_loop(),
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        {
            let scope = Arc::clone(&sibling);
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop_victim);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                // Keep checking until the victim has stopped; the sibling
                // must never observe a stop of its own.
                while !stop.load(Ordering::Relaxed) {
                    assert!(
                        stop_reason("test/sibling").is_none(),
                        "sibling scope observed a foreign stop"
                    );
                }
                assert!(stop_reason("test/sibling").is_none());
            });
        }
        barrier.wait();
        victim.cancel();
    });
    assert!(victim.is_cancelled());
    assert!(!sibling.is_cancelled());
}

#[test]
fn scope_counters_never_bleed_across_concurrent_scopes() {
    const N: u64 = 10_000;
    let a = SupervisionScope::new();
    let b = SupervisionScope::new();
    a.activate();
    b.activate();
    let barrier = Arc::new(Barrier::new(2));

    std::thread::scope(|s| {
        {
            let scope = Arc::clone(&a);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                for _ in 0..N {
                    note_epochs(1);
                }
            });
        }
        {
            let scope = Arc::clone(&b);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                for _ in 0..N {
                    note_queries(2);
                }
            });
        }
    });

    assert_eq!(a.epochs_used(), N);
    assert_eq!(a.queries_used(), 0, "queries bled into scope a");
    assert_eq!(b.queries_used(), 2 * N);
    assert_eq!(b.epochs_used(), 0, "epochs bled into scope b");
}

#[test]
fn exhausting_one_scopes_budget_leaves_the_sibling_running() {
    let bounded = SupervisionScope::new();
    let unbounded = SupervisionScope::new();
    bounded.install_budget(&RunBudget {
        epochs: Some(100),
        ..Default::default()
    });
    unbounded.activate();
    let barrier = Arc::new(Barrier::new(2));

    std::thread::scope(|s| {
        {
            let scope = Arc::clone(&bounded);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                let mut stopped = None;
                for _ in 0..1_000 {
                    if let Some(stop) = stop_reason("train/epoch") {
                        stopped = Some(stop);
                        break;
                    }
                    note_epochs(1);
                }
                match stopped {
                    Some(Stop::Budget {
                        resource: "epochs",
                        limit: 100,
                    }) => {}
                    other => panic!("expected the epochs budget to trip, got {other:?}"),
                }
            });
        }
        {
            let scope = Arc::clone(&unbounded);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let _e = enter(&scope);
                barrier.wait();
                for _ in 0..1_000 {
                    assert!(
                        stop_reason("train/epoch").is_none(),
                        "unbounded sibling observed a foreign budget stop"
                    );
                    note_epochs(1);
                }
            });
        }
    });

    assert_eq!(bounded.epochs_used(), 100);
    assert_eq!(unbounded.epochs_used(), 1_000);
}

#[test]
fn default_domain_is_untouched_by_scoped_activity() {
    let scope = SupervisionScope::new();
    scope.install_budget(&RunBudget {
        queries: Some(1),
        ..Default::default()
    });
    {
        let _e = enter(&scope);
        note_queries(1);
        assert!(stop_reason("attack/scan").is_some());
    }
    // Off the scope's thread-local entry, supervision is off again: the
    // scope's budget and counters must not have activated the default
    // domain.
    assert!(!bbgnn_supervise::enabled());
    assert!(stop_reason("attack/scan").is_none());
}
