//! Targeted attacks (the Nettack setting of Table I), built on PEEGA's
//! objective restricted to a single victim node.
//!
//! The paper's PEEGA is untargeted, but its Def. 3 objective localizes
//! naturally: summing the representation difference over a single victim
//! `t` (and its neighborhood for the global view) yields a black-box
//! targeted attack with a per-victim budget — the scenario Nettack
//! pioneered with gray-box access. [`TargetedPeega`] runs that localized
//! PEEGA per victim; [`target_success_rate`] measures the fraction of
//! victims whose prediction a freshly-trained GCN gets wrong afterwards.

use crate::peega::{ObjectiveNodes, Peega, PeegaConfig};
use crate::{AttackResult, Attacker};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use std::time::Instant;

/// Targeted-PEEGA configuration.
#[derive(Clone, Debug)]
pub struct TargetedPeegaConfig {
    /// Victim nodes.
    pub targets: Vec<usize>,
    /// Modification budget per victim (Nettack uses the victim degree + 2;
    /// use [`TargetedPeegaConfig::degree_budget`] for that convention).
    pub budget_per_target: usize,
    /// Base PEEGA hyper-parameters (`rate` is ignored; the budget comes
    /// from `budget_per_target`).
    pub base: PeegaConfig,
}

impl TargetedPeegaConfig {
    /// The Nettack budget convention: `deg(t) + 2` modifications per
    /// victim, configured per target when the attack runs.
    pub fn degree_budget(targets: Vec<usize>, base: PeegaConfig) -> Self {
        Self {
            targets,
            budget_per_target: 0,
            base,
        }
    }
}

/// The targeted black-box attacker.
#[derive(Clone, Debug)]
pub struct TargetedPeega {
    /// Configuration.
    pub config: TargetedPeegaConfig,
}

impl TargetedPeega {
    /// Creates a targeted attacker.
    pub fn new(config: TargetedPeegaConfig) -> Self {
        Self { config }
    }

    fn budget_for_target(&self, g: &Graph, t: usize) -> usize {
        if self.config.budget_per_target > 0 {
            self.config.budget_per_target
        } else {
            g.degree(t) + 2
        }
    }
}

impl Attacker for TargetedPeega {
    fn name(&self) -> &'static str {
        "PEEGA-T"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let _span = bbgnn_obs::span!("attack/targeted", nodes = g.num_nodes());
        assert!(
            !self.config.targets.is_empty(),
            "no victim nodes configured"
        );
        let mut poisoned = g.clone();
        let mut truncated = false;
        for &t in &self.config.targets {
            // Cooperative stop site (DESIGN.md §11): victims attacked so
            // far keep their perturbations; the rest go untouched.
            if crate::should_stop("attack/targeted/victim") {
                truncated = true;
                break;
            }
            assert!(t < g.num_nodes(), "victim {t} out of range");
            let budget = self.budget_for_target(&poisoned, t);
            // Localize: the objective sums over the victim only, and the
            // rate is set so the budget matches the per-target allowance.
            let rate = budget as f64 / poisoned.num_edges().max(1) as f64;
            let mut local = Peega::new(PeegaConfig {
                rate,
                objective_nodes: ObjectiveNodes::Custom(vec![t]),
                ..self.config.base.clone()
            });
            let r = local.attack(&poisoned);
            truncated |= r.truncated;
            poisoned = r.poisoned;
        }
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: g.feature_difference(&poisoned),
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

/// Fraction of `targets` misclassified by `model` on `g` — the targeted-
/// attack success metric (1.0 = every victim flipped).
pub fn target_success_rate(model: &dyn NodeClassifier, g: &Graph, targets: &[usize]) -> f64 {
    assert!(!targets.is_empty(), "no targets to evaluate");
    let preds = model.predict(g);
    let wrong = targets.iter().filter(|&&t| preds[t] != g.labels[t]).count();
    wrong as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_gnn::gcn::Gcn;
    use bbgnn_gnn::train::TrainConfig;
    use bbgnn_graph::datasets::DatasetSpec;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn pick_targets(g: &Graph, k: usize, seed: u64) -> Vec<usize> {
        // Victims from the test split with degree ≥ 2 (standard Nettack
        // victim selection keeps classifiable nodes).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pool: Vec<usize> = g
            .split
            .test
            .iter()
            .copied()
            .filter(|&v| g.degree(v) >= 2)
            .collect();
        pool.shuffle(&mut rng);
        pool.truncate(k);
        pool
    }

    #[test]
    fn budgets_are_local_and_bounded() {
        let g = DatasetSpec::CoraLike.generate(0.06, 631);
        let targets = pick_targets(&g, 3, 1);
        let max_budget: usize = targets.iter().map(|&t| g.degree(t) + 2).sum();
        let mut atk = TargetedPeega::new(TargetedPeegaConfig::degree_budget(
            targets,
            PeegaConfig::default(),
        ));
        let r = atk.attack(&g);
        assert!(r.edge_flips + r.feature_flips > 0);
        assert!(
            r.edge_flips + r.feature_flips <= max_budget,
            "{} flips exceed the summed degree budgets {max_budget}",
            r.edge_flips + r.feature_flips
        );
    }

    #[test]
    fn targeted_attack_flips_more_victims_than_it_leaves() {
        let g = DatasetSpec::CoraLike.generate(0.08, 632);
        let targets = pick_targets(&g, 8, 2);
        // Baseline: victims a clean-graph GCN already gets right/wrong.
        let mut clean_gcn = Gcn::paper_default(TrainConfig::fast_test());
        clean_gcn.fit(&g);
        let before = target_success_rate(&clean_gcn, &g, &targets);

        let mut atk = TargetedPeega::new(TargetedPeegaConfig::degree_budget(
            targets.clone(),
            PeegaConfig::default(),
        ));
        let poisoned = atk.attack(&g).poisoned;
        let mut victim_gcn = Gcn::paper_default(TrainConfig::fast_test());
        victim_gcn.fit(&poisoned);
        let after = target_success_rate(&victim_gcn, &poisoned, &targets);
        assert!(
            after > before,
            "targeted attack must flip victims: success {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "no victim nodes")]
    fn empty_targets_panics() {
        let g = DatasetSpec::CoraLike.generate(0.04, 633);
        let mut atk = TargetedPeega::new(TargetedPeegaConfig {
            targets: vec![],
            budget_per_target: 3,
            base: PeegaConfig::default(),
        });
        let _ = atk.attack(&g);
    }
}
