// Fixture: an allow directive with a reason waives the `fma` finding.
pub fn axpy(a: f64, b: f64, c: f64) -> f64 {
    // lint: allow(fma) reason=fixture exercising the waiver path
    a.mul_add(b, c)
}
