//! Graph attention network (Veličković et al.) with dense masked attention.
//!
//! Each layer computes, per head, `e_{uv} = LeakyReLU(a_s·Wh_u + a_d·Wh_v)`
//! on the edges of `A + I`, normalizes with a masked row softmax, and
//! aggregates `h'_u = Σ_v α_{uv} W h_v`. The hidden layer concatenates its
//! heads; the output layer is a **single** attention head mapping the
//! concatenated `hidden_per_head × heads` features to class logits (its
//! `W_o` is `hidden_per_head·heads × classes`). This differs from the
//! original paper's multi-head-averaged output layer — one output head
//! over concatenated features is the simpler arrangement this workspace
//! uses; see `init_params` for the exact parameter layout. Attention is
//! materialized as a dense `n × n` matrix, which is fine at the graph
//! sizes this workspace targets and keeps the whole model on the autodiff
//! tape.

use crate::train::{train_node_classifier_keyed, Mode, TrainConfig, TrainReport};
use crate::NodeClassifier;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_graph::Graph;
use bbgnn_linalg::DenseMatrix;
use std::rc::Rc;

/// Two-layer GAT. The paper's baseline configuration is 8 hidden units per
/// head with 4 heads ([`Gat::paper_default`]).
pub struct Gat {
    /// Hidden units per head.
    pub hidden_per_head: usize,
    /// Number of attention heads in the hidden layer.
    pub heads: usize,
    /// Training configuration.
    pub config: TrainConfig,
    /// LeakyReLU negative slope for attention logits.
    pub neg_slope: f64,
    params: Vec<DenseMatrix>,
}

/// Parameter layout per head h of layer 1: `[W_h, a_src_h, a_dst_h]`,
/// followed by the single output head `[W_o, a_src_o, a_dst_o]`.
impl Gat {
    /// Creates an untrained GAT.
    pub fn new(hidden_per_head: usize, heads: usize, config: TrainConfig) -> Self {
        Self {
            hidden_per_head,
            heads,
            config,
            neg_slope: 0.2,
            params: Vec::new(),
        }
    }

    /// The paper's baseline: 4 heads × 8 hidden units.
    pub fn paper_default(config: TrainConfig) -> Self {
        Self::new(8, 4, config)
    }

    fn init_params(&self, in_dim: usize, num_classes: usize) -> Vec<DenseMatrix> {
        let mut params = Vec::new();
        let s = self.config.seed;
        for h in 0..self.heads {
            params.push(DenseMatrix::glorot(
                in_dim,
                self.hidden_per_head,
                s.wrapping_add(3 * h as u64),
            ));
            params.push(DenseMatrix::glorot(
                self.hidden_per_head,
                1,
                s.wrapping_add(3 * h as u64 + 1),
            ));
            params.push(DenseMatrix::glorot(
                self.hidden_per_head,
                1,
                s.wrapping_add(3 * h as u64 + 2),
            ));
        }
        let base = 3 * self.heads as u64;
        params.push(DenseMatrix::glorot(
            self.hidden_per_head * self.heads,
            num_classes,
            s.wrapping_add(base),
        ));
        params.push(DenseMatrix::glorot(
            num_classes,
            1,
            s.wrapping_add(base + 1),
        ));
        params.push(DenseMatrix::glorot(
            num_classes,
            1,
            s.wrapping_add(base + 2),
        ));
        params
    }

    /// One attention head: returns `α (X W)` for the masked attention `α`.
    fn attention_head(
        &self,
        tape: &mut Tape,
        h: TensorId,
        w: TensorId,
        a_src: TensorId,
        a_dst: TensorId,
        mask: &Rc<DenseMatrix>,
    ) -> TensorId {
        let hw = tape.matmul(h, w);
        let src = tape.matmul(hw, a_src); // n × 1
        let dst = tape.matmul(hw, a_dst); // n × 1
        let e = tape.add_outer(src, dst); // n × n
        let e = tape.leaky_relu(e, self.neg_slope);
        let alpha = tape.masked_softmax_rows(e, Rc::clone(mask));
        tape.matmul(alpha, hw)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &[DenseMatrix],
        mask: &Rc<DenseMatrix>,
        x: &DenseMatrix,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>) {
        let ids: Vec<TensorId> = params.iter().map(|p| tape.var(p.clone())).collect();
        let dropout = self.config.dropout;
        let mut h = tape.constant(x.clone());
        if let (true, Some(epoch)) = (dropout > 0.0, mode.train_epoch()) {
            h = tape.dropout(
                h,
                dropout,
                self.config.seed.wrapping_add(7000 + epoch as u64),
            );
        }
        let mut head_outputs = Vec::with_capacity(self.heads);
        for hd in 0..self.heads {
            let out =
                // lint: allow(check_site) reason=forward builds one epoch's graph; the §11 check sits at the epoch boundary in the train loop
                self.attention_head(tape, h, ids[3 * hd], ids[3 * hd + 1], ids[3 * hd + 2], mask);
            head_outputs.push(tape.relu(out));
        }
        let mut hidden = tape.concat_cols(&head_outputs);
        if let (true, Some(epoch)) = (dropout > 0.0, mode.train_epoch()) {
            hidden = tape.dropout(
                hidden,
                dropout,
                self.config.seed.wrapping_add(9000 + epoch as u64),
            );
        }
        let base = 3 * self.heads;
        let logits =
            self.attention_head(tape, hidden, ids[base], ids[base + 1], ids[base + 2], mask);
        (logits, ids)
    }

    fn attention_mask(g: &Graph) -> Rc<DenseMatrix> {
        let mut mask = g.adjacency_dense();
        for i in 0..mask.rows() {
            mask.set(i, i, 1.0);
        }
        Rc::new(mask)
    }

    /// Logits for `g` with the trained parameters.
    pub fn logits(&self, g: &Graph) -> DenseMatrix {
        assert!(!self.params.is_empty(), "model is not trained");
        let mask = Self::attention_mask(g);
        let mut tape = Tape::new();
        let (out, _) = self.forward(&mut tape, &self.params, &mask, &g.features, Mode::Eval);
        tape.value(out).clone()
    }
}

impl NodeClassifier for Gat {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let mask = Self::attention_mask(g);
        let mut params = self.init_params(g.feature_dim(), g.num_classes);
        let x = g.features.clone();
        let cfg = self.config.clone();
        let salt = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("model/gat")
                .field("hidden_per_head", self.hidden_per_head)
                .field("heads", self.heads)
                .field("neg_slope", self.neg_slope)
        });
        let this = &*self;
        let report = train_node_classifier_keyed(&mut params, g, &cfg, salt, |tape, p, mode| {
            this.forward(tape, p, &mask, &x, mode)
        });
        self.params = params;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        self.logits(g).row_argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn gat_learns_homophilous_sbm() {
        let g = DatasetSpec::CoraLike.generate(0.06, 41);
        let mut gat = Gat::new(8, 2, TrainConfig::fast_test());
        gat.fit(&g);
        let acc = gat.test_accuracy(&g);
        // Features are deliberately noisy (DESIGN.md §3); well above
        // chance (1/7) on a tiny graph is the contract.
        assert!(acc > 0.4, "GAT accuracy {acc} too low");
    }

    #[test]
    fn gat_logits_shape() {
        let g = DatasetSpec::CiteseerLike.generate(0.04, 42);
        let mut gat = Gat::new(4, 2, TrainConfig::fast_test());
        gat.fit(&g);
        assert_eq!(gat.logits(&g).shape(), (g.num_nodes(), g.num_classes));
    }

    /// Pins the documented parameter layout: per hidden head
    /// `[W_h (in × hidden), a_src (hidden × 1), a_dst (hidden × 1)]`,
    /// then a *single* output attention head over the concatenated heads
    /// `[W_o (hidden·heads × classes), a_src_o (classes × 1),
    /// a_dst_o (classes × 1)]` — not a per-head averaged output layer.
    #[test]
    fn output_layer_is_single_head_over_concatenated_features() {
        let g = DatasetSpec::CoraLike.generate(0.04, 44);
        let gat = Gat::new(8, 4, TrainConfig::fast_test());
        let params = gat.init_params(g.feature_dim(), g.num_classes);
        let (d, k) = (g.feature_dim(), g.num_classes);
        assert_eq!(params.len(), 3 * 4 + 3, "3 tensors per head + 3 output");
        for h in 0..4 {
            assert_eq!(params[3 * h].shape(), (d, 8), "W of head {h}");
            assert_eq!(params[3 * h + 1].shape(), (8, 1), "a_src of head {h}");
            assert_eq!(params[3 * h + 2].shape(), (8, 1), "a_dst of head {h}");
        }
        // One output head whose W maps all concatenated hidden features —
        // if the output layer averaged heads, this would be (8, k) instead.
        assert_eq!(params[12].shape(), (8 * 4, k), "W_o over concat heads");
        assert_eq!(params[13].shape(), (k, 1), "a_src_o");
        assert_eq!(params[14].shape(), (k, 1), "a_dst_o");
    }

    #[test]
    fn gat_attention_mask_includes_self_loops() {
        let g = DatasetSpec::CoraLike.generate(0.04, 43);
        let mask = Gat::attention_mask(&g);
        for i in 0..g.num_nodes() {
            assert_eq!(mask.get(i, i), 1.0);
        }
    }
}
