//! Fig. 6 — accuracy of GCN, Pro-GNN, and GNAT under Metattack and PEEGA
//! across perturbation rates r ∈ {0, 0.05, 0.1, 0.15, 0.2}, per dataset.
//!
//! Series are named [model]+[attack] as in the paper: GCN+M is a GCN
//! trained on the Metattack poison graph, GNAT+P is GNAT on the PEEGA
//! poison graph, and so on.
//!
//! Reproduction targets: all series fall as r grows; the GNAT series stay
//! on top; PEEGA's curves sit below Metattack's on Citeseer/Polblogs.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::evaluate_defender};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig6_ptb_sweep"));
    let specs: Vec<DatasetSpec> = DatasetSpec::paper_datasets()
        .into_iter()
        .filter(|s| cfg.dataset.as_deref().map_or(true, |d| d == s.name()))
        .collect();

    for spec in specs {
        let g = spec.generate(cfg.scale, cfg.seed);
        println!("\n### {} ###\n", spec.name());
        let defenders: Vec<(&str, DefenderKind)> = vec![
            ("GCN", DefenderKind::Gcn),
            ("ProGNN", DefenderKind::ProGnn(ProGnnConfig {
                // Reduced outer budget: this bin trains Pro-GNN 30 times
                // (5 rates x 2 attackers x runs); the full default budget
                // would dominate the whole suite's wall-clock.
                outer_epochs: 12,
                inner_epochs: 4,
                svd_every: 4,
                ..Default::default()
            })),
            (
                "GNAT",
                DefenderKind::Gnat(if spec.identity_features() {
                    GnatConfig::without_feature_view()
                } else {
                    GnatConfig::default()
                }),
            ),
        ];
        let mut headers = vec!["rate".to_string()];
        for (dname, _) in &defenders {
            headers.push(format!("{dname}+M"));
            headers.push(format!("{dname}+P"));
        }
        let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

        for &rate in &[0.0, 0.05, 0.1, 0.15, 0.2] {
            let (meta_graph, peega_graph) = if rate == 0.0 {
                (g.clone(), g.clone())
            } else {
                let mut meta = Metattack::new(MetattackConfig {
                    rate,
                    retrain_every: 5,
                    ..Default::default()
                });
                let mut peega = Peega::new(PeegaConfig { rate, ..Default::default() });
                (meta.attack(&g).poisoned, peega.attack(&g).poisoned)
            };
            let mut cells = vec![format!("{rate}")];
            for (_, kind) in &defenders {
                cells.push(evaluate_defender(kind, &meta_graph, cfg.runs, cfg.seed).to_string());
                cells.push(evaluate_defender(kind, &peega_graph, cfg.runs, cfg.seed).to_string());
            }
            eprintln!("[{} r={rate} done]", spec.name());
            table.push_row(cells);
        }
        table.emit(&cfg.out_dir, &format!("fig6_ptb_sweep_{}", spec.name()));
    }
    println!("\npaper: accuracy falls with r; GNAT (green) stays above Pro-GNN and GCN.");
}
