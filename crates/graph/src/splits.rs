//! Train/valid/test node splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Disjoint train/valid/test node index sets.
///
/// The paper follows the 10% / 10% / 80% convention of Zügner et al.; use
/// [`Split::random`] with `(0.1, 0.1)` to reproduce it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Split {
    /// Labeled training nodes `V^la`.
    pub train: Vec<usize>,
    /// Validation nodes.
    pub valid: Vec<usize>,
    /// Test nodes (labels hidden from black-box components).
    pub test: Vec<usize>,
}

impl Split {
    /// A degenerate split where every node is in every set — convenient for
    /// unit tests that don't care about splits.
    pub fn trivial(n: usize) -> Self {
        let all: Vec<usize> = (0..n).collect();
        Self {
            train: all.clone(),
            valid: all.clone(),
            test: all,
        }
    }

    /// Random split with the given train/valid fractions (the rest is
    /// test), deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if the fractions are not in `(0, 1)` or sum to ≥ 1.
    pub fn random(n: usize, train_frac: f64, valid_frac: f64, seed: u64) -> Self {
        assert!(
            train_frac > 0.0 && valid_frac > 0.0,
            "fractions must be positive"
        );
        assert!(
            train_frac + valid_frac < 1.0,
            "train+valid must leave room for test"
        );
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_train = ((n as f64) * train_frac).round().max(1.0) as usize;
        let n_valid = ((n as f64) * valid_frac).round().max(1.0) as usize;
        let mut train = idx[..n_train].to_vec();
        let mut valid = idx[n_train..n_train + n_valid].to_vec();
        let mut test = idx[n_train + n_valid..].to_vec();
        train.sort_unstable();
        valid.sort_unstable();
        test.sort_unstable();
        Self { train, valid, test }
    }

    /// Number of nodes covered by the three sets.
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_split_is_a_partition() {
        let s = Split::random(100, 0.1, 0.1, 7);
        assert_eq!(s.train.len(), 10);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 80);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100, "sets must be disjoint and cover all nodes");
    }

    #[test]
    fn random_split_is_deterministic() {
        assert_eq!(
            Split::random(50, 0.2, 0.2, 3).train,
            Split::random(50, 0.2, 0.2, 3).train
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            Split::random(200, 0.1, 0.1, 1).train,
            Split::random(200, 0.1, 0.1, 2).train
        );
    }

    #[test]
    #[should_panic(expected = "leave room for test")]
    fn overfull_split_panics() {
        let _ = Split::random(10, 0.6, 0.5, 0);
    }
}
