//! The [`Graph`] container and its edit operations.

use crate::splits::Split;
use crate::validate::{validate_parts, ValidationPolicy};
use bbgnn_errors::BbgnnResult;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::collections::BTreeSet;

/// An undirected, unweighted graph with binary node features and (partial)
/// node labels — the `G(V, A, X, Y)` of the paper.
///
/// The adjacency is stored as sorted neighbor sets for O(log d) edge
/// queries and cheap edit operations; dense/CSR views are materialized on
/// demand. Self-loops are excluded from the stored adjacency (the GCN
/// normalization adds them).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Sorted neighbor set per node.
    neighbors: Vec<BTreeSet<usize>>,
    /// Number of undirected edges (`‖A‖₀` in the paper's budget).
    num_edges: usize,
    /// Node features, `n × d_x`, entries in {0, 1}.
    pub features: DenseMatrix,
    /// Node labels, length `n` (test labels exist for evaluation but are
    /// hidden from black-box components by convention).
    pub labels: Vec<usize>,
    /// Number of classes `|Y|`.
    pub num_classes: usize,
    /// Train/valid/test node splits.
    pub split: Split,
}

impl Graph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    /// Panics if features row count, labels length, or edge endpoints are
    /// inconsistent with each other.
    pub fn new(
        n: usize,
        edges: &[(usize, usize)],
        features: DenseMatrix,
        labels: Vec<usize>,
        num_classes: usize,
        split: Split,
    ) -> Self {
        // Graph::new historically tolerated self-loops (silently dropped),
        // so the validating path declares them to stay a drop-in.
        Self::try_new_with(
            n,
            edges,
            features,
            labels,
            num_classes,
            split,
            &ValidationPolicy::with_self_loops(),
        )
        // lint: allow(panic) reason=documented infallible facade — try_new_with is the recoverable path
        .unwrap_or_else(|e| panic!("Graph::new: {e}"))
    }

    /// Fallible [`Graph::new`]: validates the input (finite features,
    /// in-bounds edges/labels/splits, no self-loops) and returns
    /// [`InvalidGraph`](bbgnn_errors::BbgnnError::InvalidGraph) naming the
    /// first offending node or edge instead of panicking.
    pub fn try_new(
        n: usize,
        edges: &[(usize, usize)],
        features: DenseMatrix,
        labels: Vec<usize>,
        num_classes: usize,
        split: Split,
    ) -> BbgnnResult<Self> {
        Self::try_new_with(
            n,
            edges,
            features,
            labels,
            num_classes,
            split,
            &ValidationPolicy::default(),
        )
    }

    /// [`Graph::try_new`] with an explicit [`ValidationPolicy`] (e.g. for
    /// inputs that legitimately declare self-loops).
    pub fn try_new_with(
        n: usize,
        edges: &[(usize, usize)],
        features: DenseMatrix,
        labels: Vec<usize>,
        num_classes: usize,
        split: Split,
        policy: &ValidationPolicy,
    ) -> BbgnnResult<Self> {
        validate_parts(n, edges, &features, &labels, num_classes, &split, policy)?;
        let mut g = Self {
            neighbors: vec![BTreeSet::new(); n],
            num_edges: 0,
            features,
            labels,
            num_classes,
            split,
        };
        for &(u, v) in edges {
            // Declared self-loops are excluded from the stored adjacency
            // (the GCN normalization re-adds them).
            g.add_edge(u, v);
        }
        Ok(g)
    }

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected edges `‖A‖₀`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Feature dimensionality `d_x`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors[u].contains(&v)
    }

    /// Degree of `u` (self-loops excluded).
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors[u].len()
    }

    /// Iterator over the neighbors of `u`, ascending.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors[u].iter().copied()
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Adds the undirected edge `{u, v}`; returns `false` if it already
    /// existed or is a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v || self.neighbors[u].contains(&v) {
            return false;
        }
        self.neighbors[u].insert(v);
        self.neighbors[v].insert(u);
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`; returns `false` if absent.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if !self.neighbors[u].remove(&v) {
            return false;
        }
        self.neighbors[v].remove(&u);
        self.num_edges -= 1;
        true
    }

    /// Toggles the undirected edge `{u, v}` (the attacker's topology
    /// modification). Returns `true` if the edge now exists.
    pub fn flip_edge(&mut self, u: usize, v: usize) -> bool {
        if self.has_edge(u, v) {
            self.remove_edge(u, v);
            false
        } else {
            self.add_edge(u, v);
            true
        }
    }

    /// Toggles feature bit `(v, i)` (the attacker's feature perturbation).
    /// Returns the new value.
    pub fn flip_feature(&mut self, v: usize, i: usize) -> f64 {
        let new = if self.features.get(v, i) == 0.0 {
            1.0
        } else {
            0.0
        };
        self.features.set(v, i, new);
        new
    }

    /// Adjacency as CSR (symmetric, 0/1, no self-loops).
    pub fn adjacency_csr(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let triplets = self
            .neighbors
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().map(move |&v| (u, v, 1.0)));
        CsrMatrix::from_triplets(n, n, triplets)
    }

    /// Adjacency as a dense matrix.
    pub fn adjacency_dense(&self) -> DenseMatrix {
        let n = self.num_nodes();
        let mut a = DenseMatrix::zeros(n, n);
        for (u, ns) in self.neighbors.iter().enumerate() {
            for &v in ns {
                a.set(u, v, 1.0);
            }
        }
        a
    }

    /// GCN-normalized adjacency `D^{-1/2}(A + I)D^{-1/2}` as CSR.
    pub fn normalized_adjacency(&self) -> CsrMatrix {
        self.adjacency_csr().gcn_normalize()
    }

    /// `A_n^k X` — the linear propagation the paper uses as the black-box
    /// surrogate (Eq. 7 with `W` dropped).
    pub fn propagate(&self, k: usize) -> DenseMatrix {
        let an = self.normalized_adjacency();
        let mut h = self.features.clone();
        for _ in 0..k {
            h = an.spmm(&h);
        }
        h
    }

    /// Replaces the topology with the edges of `adj` (entries with
    /// `|v| > 0.5` become edges), keeping features/labels/split. Used by
    /// preprocessing defenders that purify the adjacency.
    pub fn with_adjacency(&self, adj: &CsrMatrix) -> Graph {
        let n = self.num_nodes();
        assert_eq!(adj.rows(), n, "adjacency size mismatch");
        let mut edges = Vec::new();
        for u in 0..n {
            for (v, w) in adj.row_iter(u) {
                if u < v && w.abs() > 0.5 {
                    edges.push((u, v));
                }
            }
        }
        Graph::new(
            n,
            &edges,
            self.features.clone(),
            self.labels.clone(),
            self.num_classes,
            self.split.clone(),
        )
    }

    /// Replaces the features, keeping everything else.
    pub fn with_features(&self, features: DenseMatrix) -> Graph {
        assert_eq!(features.rows(), self.num_nodes(), "feature rows mismatch");
        let mut g = self.clone();
        g.features = features;
        g
    }

    /// Number of differing undirected edges between `self` and `other`
    /// (`‖Â − A‖₀` in undirected-edge units).
    pub fn edge_difference(&self, other: &Graph) -> usize {
        assert_eq!(self.num_nodes(), other.num_nodes(), "node count mismatch");
        let mut diff = 0;
        for (u, ns) in self.neighbors.iter().enumerate() {
            diff += ns
                .iter()
                .filter(|&&v| u < v && !other.has_edge(u, v))
                .count();
        }
        for (u, ns) in other.neighbors.iter().enumerate() {
            diff += ns
                .iter()
                .filter(|&&v| u < v && !self.has_edge(u, v))
                .count();
        }
        diff
    }

    /// Number of differing feature bits (`‖X̂ − X‖₀`).
    pub fn feature_difference(&self, other: &Graph) -> usize {
        assert_eq!(
            self.features.shape(),
            other.features.shape(),
            "feature shape mismatch"
        );
        self.features
            .as_slice()
            .iter()
            .zip(other.features.as_slice())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Nodes reachable from `v` within `k` hops (excluding `v` itself),
    /// ascending — the neighborhood used by GNAT's topology graph.
    pub fn k_hop_neighbors(&self, v: usize, k: usize) -> Vec<usize> {
        let n = self.num_nodes();
        let mut dist = vec![usize::MAX; n];
        dist[v] = 0;
        let mut frontier = vec![v];
        let mut out = Vec::new();
        for d in 1..=k {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in &self.neighbors[u] {
                    if dist[w] == usize::MAX {
                        dist[w] = d;
                        next.push(w);
                        out.push(w);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out.sort_unstable();
        out
    }

    /// Deterministic FNV-1a fingerprint of the full graph state: structure
    /// (every edge, in sorted order), feature bits, labels, class count,
    /// and splits. Any single edit — one flipped edge, one flipped feature
    /// bit — changes the hash, which is the artifact store's guarantee
    /// that a perturbed graph never aliases a clean one.
    pub fn content_hash(&self) -> u64 {
        let mut h = bbgnn_linalg::content_hash::Fnv1a::new();
        h.bytes(b"graph");
        h.usize(self.num_nodes());
        h.usize(self.num_edges);
        for (u, v) in self.edges() {
            h.usize(u);
            h.usize(v);
        }
        h.u64(self.features.content_hash());
        h.usizes(&self.labels);
        h.usize(self.num_classes);
        h.usizes(&self.split.train);
        h.usizes(&self.split.valid);
        h.usizes(&self.split.test);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits::Split;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::new(
            n,
            &edges,
            DenseMatrix::identity(n),
            vec![0; n],
            1,
            Split::trivial(n),
        )
    }

    #[test]
    fn edge_bookkeeping() {
        let mut g = path_graph(4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(0, 2), "duplicate add must be a no-op");
        assert_eq!(g.num_edges(), 4);
        assert!(g.remove_edge(0, 2));
        assert!(!g.remove_edge(0, 2), "double remove must be a no-op");
        assert_eq!(g.num_edges(), 3);
        assert!(!g.add_edge(1, 1), "self-loops are rejected");
    }

    #[test]
    fn flip_edge_toggles() {
        let mut g = path_graph(3);
        assert!(!g.flip_edge(0, 1), "flip of existing edge removes it");
        assert!(g.flip_edge(0, 1), "flip again restores it");
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn flip_feature_toggles_bits() {
        let mut g = path_graph(3);
        assert_eq!(g.features.get(0, 1), 0.0);
        assert_eq!(g.flip_feature(0, 1), 1.0);
        assert_eq!(g.flip_feature(0, 1), 0.0);
    }

    #[test]
    fn adjacency_views_agree() {
        let g = path_graph(5);
        let csr = g.adjacency_csr();
        let dense = g.adjacency_dense();
        assert!(csr.to_dense().max_abs_diff(&dense) < 1e-15);
        assert_eq!(csr.nnz(), 2 * g.num_edges());
        assert_eq!(csr.asymmetry(), 0.0);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn propagate_one_hop_on_path() {
        let g = path_graph(3);
        // Degrees (with self-loop): [2, 3, 2].
        let h = g.propagate(1);
        // Node 0 row: 1/2 * e0 + 1/sqrt(6) * e1.
        assert!((h.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((h.get(0, 1) - 1.0 / 6.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(h.get(0, 2), 0.0);
    }

    #[test]
    fn edge_and_feature_difference() {
        let g = path_graph(4);
        let mut h = g.clone();
        h.flip_edge(0, 3); // add
        h.flip_edge(1, 2); // remove
        assert_eq!(g.edge_difference(&h), 2);
        assert_eq!(h.edge_difference(&g), 2);
        h.flip_feature(2, 0);
        assert_eq!(g.feature_difference(&h), 1);
    }

    #[test]
    fn k_hop_neighbors_on_path() {
        let g = path_graph(5);
        assert_eq!(g.k_hop_neighbors(0, 1), vec![1]);
        assert_eq!(g.k_hop_neighbors(0, 2), vec![1, 2]);
        assert_eq!(g.k_hop_neighbors(2, 2), vec![0, 1, 3, 4]);
        assert_eq!(g.k_hop_neighbors(0, 0), Vec::<usize>::new());
    }

    #[test]
    fn try_new_reports_first_offending_input() {
        use bbgnn_errors::BbgnnError;
        let mut x = DenseMatrix::identity(3);
        x.set(1, 0, f64::NAN);
        match Graph::try_new(3, &[(0, 1)], x, vec![0, 0, 0], 1, Split::trivial(3)) {
            Err(BbgnnError::InvalidGraph { node: Some(1), .. }) => {}
            other => panic!("expected InvalidGraph at node 1, got {other:?}"),
        }
        match Graph::try_new(
            3,
            &[(0, 1), (2, 2)],
            DenseMatrix::identity(3),
            vec![0, 0, 0],
            1,
            Split::trivial(3),
        ) {
            Err(BbgnnError::InvalidGraph {
                edge: Some((2, 2)), ..
            }) => {}
            other => panic!("expected InvalidGraph self-loop, got {other:?}"),
        }
    }

    #[test]
    fn with_adjacency_replaces_topology() {
        let g = path_graph(3);
        let new_adj = CsrMatrix::from_triplets(3, 3, vec![(0, 2, 1.0), (2, 0, 1.0)]);
        let h = g.with_adjacency(&new_adj);
        assert_eq!(h.num_edges(), 1);
        assert!(h.has_edge(0, 2));
        assert!(!h.has_edge(0, 1));
        assert_eq!(h.features, g.features);
    }

    #[test]
    fn content_hash_changes_on_any_edit() {
        let g = path_graph(5);
        let base = g.content_hash();
        assert_eq!(base, path_graph(5).content_hash(), "must be deterministic");

        let mut edited = g.clone();
        edited.flip_edge(0, 3);
        assert_ne!(base, edited.content_hash(), "one edge must matter");

        let mut feat = g.clone();
        feat.flip_feature(2, 0);
        assert_ne!(base, feat.content_hash(), "one feature bit must matter");

        let mut relabeled = g.clone();
        relabeled.labels[1] = 0; // same value: no-op edit
        assert_eq!(base, relabeled.content_hash());
    }
}
