//! Extension — evasion vs. poisoning, and cross-architecture transfer.
//!
//! The paper evaluates the *poisoning* threat model (the victim trains on
//! the attacked graph). Two complementary questions this bin answers:
//!
//! (a) **Evasion**: a GCN trained on the clean graph classifies the
//!     poisoned graph at test time (no retraining). How much weaker is
//!     the same PEEGA perturbation in the evasion regime?
//! (b) **Transfer**: PEEGA optimizes against a linear-GCN surrogate. Do
//!     its poison graphs transfer to GAT and GraphSAGE victims, whose
//!     aggregation differs?

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("ext_evasion_transfer"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);

    // ---- (a) evasion vs poisoning ----------------------------------------
    println!("\n--- (a) evasion vs poisoning (GCN, PEEGA) ---\n");
    let mut table_a = Table::new(&["rate", "clean", "evasion", "poisoning"]);
    for &rate in &[0.05, 0.1, 0.2] {
        let mut atk = Peega::new(PeegaConfig {
            rate,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut clean_accs = Vec::new();
        let mut evasion_accs = Vec::new();
        let mut poison_accs = Vec::new();
        for r in 0..cfg.runs {
            let train = TrainConfig {
                seed: cfg.seed + r as u64,
                ..Default::default()
            };
            let mut clean_model = Gcn::paper_default(train.clone());
            clean_model.fit(&g);
            clean_accs.push(clean_model.test_accuracy(&g));
            // Evasion: trained on clean, evaluated on the poisoned graph.
            evasion_accs.push(clean_model.test_accuracy(&poisoned));
            // Poisoning: trained and evaluated on the poisoned graph.
            let mut victim = Gcn::paper_default(train);
            victim.fit(&poisoned);
            poison_accs.push(victim.test_accuracy(&poisoned));
        }
        table_a.push_row(vec![
            format!("{rate}"),
            MeanStd::of(&clean_accs).to_string(),
            MeanStd::of(&evasion_accs).to_string(),
            MeanStd::of(&poison_accs).to_string(),
        ]);
        eprintln!("[rate {rate} done]");
    }
    table_a.emit(&cfg.out_dir, "ext_evasion");

    // ---- (b) cross-architecture transfer ----------------------------------
    println!("\n--- (b) PEEGA poison transfer across victim architectures ---\n");
    let mut atk = Peega::new(PeegaConfig {
        rate: cfg.rate,
        ..Default::default()
    });
    let poisoned = atk.attack(&g).poisoned;
    let mut table_b = Table::new(&["victim", "clean", "poisoned", "drop"]);
    type Builder = Box<dyn Fn(TrainConfig) -> Box<dyn NodeClassifier>>;
    let victims: Vec<(&str, Builder)> = vec![
        ("GCN", Box::new(|t| Box::new(Gcn::paper_default(t)))),
        ("GAT", Box::new(|t| Box::new(Gat::paper_default(t)))),
        ("GraphSAGE", Box::new(|t| Box::new(GraphSage::new(16, t)))),
        ("LinearGCN", Box::new(|t| Box::new(LinearGcn::new(2, t)))),
    ];
    for (name, build) in victims {
        let mut clean_accs = Vec::new();
        let mut poison_accs = Vec::new();
        for r in 0..cfg.runs {
            let train = TrainConfig {
                seed: cfg.seed + r as u64,
                ..Default::default()
            };
            let mut on_clean = build(train.clone());
            on_clean.fit(&g);
            clean_accs.push(on_clean.test_accuracy(&g));
            let mut on_poison = build(train);
            on_poison.fit(&poisoned);
            poison_accs.push(on_poison.test_accuracy(&poisoned));
        }
        let c = MeanStd::of(&clean_accs);
        let p = MeanStd::of(&poison_accs);
        table_b.push_row(vec![
            name.to_string(),
            c.to_string(),
            p.to_string(),
            format!("{:.2}", 100.0 * (c.mean - p.mean)),
        ]);
        eprintln!("[{name} done]");
    }
    table_b.emit(&cfg.out_dir, "ext_transfer");
    println!("\ntarget: poisoning ≥ evasion in damage; the attack transfers to all");
    println!("victims because it perturbs the shared propagation structure.");
}
