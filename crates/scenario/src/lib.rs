//! The Scenario/Job layer: everything the experiment binaries used to
//! re-implement per `main()`, lifted into one typed library so the same
//! cells can run from a CLI sweep, a test, or the `bbgnn-serve` queue.
//!
//! The pieces (DESIGN.md §12):
//!
//! * [`registry`] — named factories over every attacker and defender,
//!   plus by-name resolution ([`registry::attacker_by_name`] /
//!   [`registry::defender_by_name`]) replacing the per-binary match
//!   blocks; unknown names are [`InvalidConfig`] errors, never panics;
//! * [`dataset`] — the single dataset-resolution path
//!   ([`dataset::load_dataset`]): known names generate the calibrated
//!   synthetic graphs, anything else is a dataset directory read through
//!   the PR-1 `DatasetIo` error paths, so a truncated dir reports
//!   identically from every entry point;
//! * [`eval`] — attack generation and repeated-run defender evaluation
//!   (the cell bodies of Tables IV–VIII);
//! * [`job`] — [`job::JobSpec`] (the JSON wire format `bbgnn-serve`
//!   accepts) and [`job::Job`], whose [`run`](job::Job::run) drives one
//!   fault-isolated cell exactly like the bench `FaultRunner`:
//!   catch_unwind panic boundary, deterministic seed-perturbed retries,
//!   supervision check sites, store-keyed training, obs spans;
//! * [`json`] — the workspace's strict, dependency-free JSON subset
//!   (moved here from the bench crate so the server can parse request
//!   bodies without depending on the harness).
//!
//! [`InvalidConfig`]: bbgnn_errors::BbgnnError::InvalidConfig

#![deny(missing_docs)]
// This crate is below the fault boundary for both the bench binaries and
// the server: it must return errors, never crash (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dataset;
pub mod eval;
pub mod job;
pub mod json;
pub mod registry;
