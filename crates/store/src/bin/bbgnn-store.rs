//! Store maintenance CLI: `ls` / `verify` / `gc` over an artifact root.
//!
//! Thin shell over the library functions in `bbgnn_store` (the logic is
//! unit-tested there); this binary only parses flags and formats output.
//!
//! ```text
//! bbgnn-store ls     [--root DIR]
//! bbgnn-store verify [--root DIR]                 # exit 1 on corruption
//! bbgnn-store gc     [--root DIR] --live-from DIR [--live-from DIR]... [--dry-run]
//! ```
//!
//! The root defaults to `$BBGNN_STORE`.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Prints one line to stdout, exiting quietly when the reader went away:
/// `bbgnn-store ls | head` must end cleanly, not panic on the broken pipe
/// (Rust ignores SIGPIPE, so the write error is the only signal).
fn out(line: std::fmt::Arguments) {
    let stdout = std::io::stdout();
    if writeln!(stdout.lock(), "{line}").is_err() {
        std::process::exit(0);
    }
}

struct Args {
    command: String,
    root: PathBuf,
    live_from: Vec<PathBuf>,
    dry_run: bool,
}

fn usage() -> &'static str {
    "usage: bbgnn-store <ls|verify|gc> [--root DIR] [--live-from DIR]... [--dry-run]\n\
     the root defaults to $BBGNN_STORE"
}

fn parse(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or_else(|| usage().to_string())?;
    if !matches!(command.as_str(), "ls" | "verify" | "gc") {
        return Err(format!("unknown command {command:?}\n{}", usage()));
    }
    let mut root: Option<PathBuf> = std::env::var("BBGNN_STORE")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);
    let mut live_from = Vec::new();
    let mut dry_run = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                let v = argv.get(i + 1).ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(v));
                i += 2;
            }
            "--live-from" => {
                let v = argv.get(i + 1).ok_or("--live-from needs a directory")?;
                live_from.push(PathBuf::from(v));
                i += 2;
            }
            "--dry-run" => {
                dry_run = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let root = root.ok_or("no store root: pass --root DIR or set BBGNN_STORE")?;
    Ok(Args {
        command,
        root,
        live_from,
        dry_run,
    })
}

fn run(args: &Args) -> Result<ExitCode, String> {
    match args.command.as_str() {
        "ls" => {
            let entries = bbgnn_store::ls(&args.root)?;
            for e in &entries {
                match &e.status {
                    Ok(key) => out(format_args!("{:>10}  {}  {}", e.bytes, e.file, key)),
                    Err(err) => out(format_args!("{:>10}  {}  !! {}", e.bytes, e.file, err)),
                }
            }
            out(format_args!("{} artifact(s)", entries.len()));
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report = bbgnn_store::verify(&args.root)?;
            out(format_args!(
                "ok: {}  stale: {}  corrupt: {}",
                report.ok,
                report.stale.len(),
                report.corrupt.len()
            ));
            for f in &report.stale {
                out(format_args!("stale    {f}"));
            }
            for (f, why) in &report.corrupt {
                out(format_args!("corrupt  {f}: {why}"));
            }
            if report.corrupt.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::FAILURE)
            }
        }
        "gc" => {
            let report = bbgnn_store::gc(&args.root, &args.live_from, args.dry_run)?;
            let verb = if args.dry_run {
                "would remove"
            } else {
                "removed"
            };
            out(format_args!(
                "live: {}  {verb}: {}",
                report.live.len(),
                report.removed.len()
            ));
            for f in &report.removed {
                out(format_args!("{verb}  {f}"));
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv).and_then(|args| run(&args)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bbgnn-store: {e}");
            ExitCode::from(2)
        }
    }
}
