//! `bbgnn-serve` — attack/defense evaluation as a service.
//!
//! ```text
//! bbgnn-serve [--addr HOST:PORT] [--queue N] [--workers N] [infra flags]
//!   --addr     bind address (default 127.0.0.1:8787; port 0 = pick free)
//!   --queue    pending-job admission bound (default 16)
//!   --workers  concurrent job runners (default 1); the core budget is
//!              split evenly across the pool
//!   plus the shared infra flags: --threads --trace --store --deadline
//!   --budget --faults (see bbgnn_bench::cli::InfraFlags)
//! ```
//!
//! The actual bound address is printed on startup (load-bearing with
//! `--addr 127.0.0.1:0`: tests and scripts parse it). The server drains
//! on `POST /shutdown` or SIGINT/SIGTERM and exits once in-flight jobs
//! have wound down.

use bbgnn_bench::cli::{extract_flag, parse_value, InfraFlags};
use bbgnn_serve::Server;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!(
            "usage: bbgnn-serve --addr HOST:PORT --queue N --workers N {}",
            InfraFlags::USAGE
        );
        return;
    }
    let parsed = extract_flag(&args, "--addr").and_then(|(addr, rest)| {
        extract_flag(&rest, "--queue").and_then(|(queue, rest)| {
            extract_flag(&rest, "--workers").map(|(workers, rest)| (addr, queue, workers, rest))
        })
    });
    let (addr, queue, workers, rest) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let addr = addr.unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let capacity: usize = match queue {
        None => 16,
        Some(q) => match parse_value(Some(&q), "--queue", "an integer ≥ 1") {
            Ok(0) | Err(_) => {
                eprintln!("error: --queue expects an integer ≥ 1, got {q:?}");
                std::process::exit(2);
            }
            Ok(n) => n,
        },
    };
    let workers: usize = match workers {
        None => 1,
        Some(w) => match parse_value(Some(&w), "--workers", "an integer ≥ 1") {
            Ok(0) | Err(_) => {
                eprintln!("error: --workers expects an integer ≥ 1, got {w:?}");
                std::process::exit(2);
            }
            Ok(n) => n,
        },
    };
    // The shared infra flags (threads/trace/store/supervision/signals) —
    // same parser, same init order as every bench binary.
    let mut infra = match InfraFlags::from_env(|name| std::env::var(name).ok()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut i = 0;
    while i < rest.len() {
        let value = rest.get(i + 1).map(String::as_str);
        match infra.consume(&rest[i], value) {
            Ok(0) => {
                eprintln!("error: unknown flag {:?} (try --help)", rest[i]);
                std::process::exit(2);
            }
            Ok(consumed) => i += consumed,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    infra.init();

    let server = match Server::start_with(&addr, capacity, workers) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("bbgnn-serve listening on http://{}", server.addr());
    println!("queue capacity: {capacity} pending jobs, {workers} worker(s)");
    server.wait();
    println!("bbgnn-serve: drained, exiting");
    bbgnn_obs::shutdown();
    bbgnn_store::shutdown();
}
