//! Incremental-vs-full equivalence property suite (DESIGN.md §13).
//!
//! For random flip sequences — additions, deletions, re-adds after a
//! resync, degree-1 endpoints, repeated candidates on the same node — the
//! incrementally maintained `H = Â_n^L X` must match a from-scratch
//! recompute **bitwise at every step** (the §13 contract pins the
//! between-resync eps at 0: the update rule recomputes touched rows in
//! the full kernel's accumulation order, so it is exact, not eps-close).
//! The thread-count invariance of the §7 kernel contract must carry over:
//! 1-thread and N-thread engines produce identical bytes.

use bbgnn_linalg::incr::{IncrConfig, IncrNorm, IncrProp};
use bbgnn_linalg::{CsrMatrix, DenseMatrix};

/// Deterministic splitmix64 — the suite's only randomness source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random sparse graph over `n` nodes, deliberately including isolated
/// and degree-1 nodes (only nodes `< n/2` get seeded edges).
fn random_edges(n: usize, m: usize, rng: &mut Rng) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for _ in 0..m {
        let u = rng.below(n / 2);
        let v = rng.below(n / 2);
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn adjacency_csr(n: usize, norm: &IncrNorm) -> CsrMatrix {
    let triplets: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|u| norm.neighbors(u).iter().map(move |&v| (u, v, 1.0)))
        .collect();
    CsrMatrix::from_triplets(n, n, triplets)
}

/// Full rescore exactly as the dense attack path does it:
/// `adjacency → gcn_normalize → L × spmm`.
fn full_propagation(n: usize, norm: &IncrNorm, x: &DenseMatrix, hops: usize) -> DenseMatrix {
    let an = adjacency_csr(n, norm).gcn_normalize();
    let mut h = x.clone();
    for _ in 0..hops {
        h = an.spmm(&h);
    }
    h
}

fn assert_bitwise(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bits differ at flat index {i} ({x:e} vs {y:e})"
        );
    }
}

/// Random add/delete/re-add sequences stay bitwise-equal to the full
/// rescore at every committed step, across resync boundaries.
#[test]
fn random_flip_sequences_match_full_rescore_bitwise() {
    let mut rng = Rng(0xbb617);
    for trial in 0..4 {
        let n = 24 + 8 * trial;
        let hops = 1 + trial % 3;
        let edges = random_edges(n, 3 * n, &mut rng);
        let x = DenseMatrix::uniform(n, 5 + trial, 1.0, 100 + trial as u64);
        let mut cfg = IncrConfig::new(hops);
        cfg.resync_stride = 7; // hit several resync boundaries mid-sequence
        let mut p = IncrProp::from_edges(n, &edges, x.clone(), &cfg);
        for step in 0..40 {
            let u = rng.below(n);
            let mut v = rng.below(n);
            if u == v {
                v = (v + 1) % n;
            }
            p.flip_edge(u, v);
            let full = full_propagation(n, p.norm(), p.features(), hops);
            assert_bitwise(
                p.propagated(),
                &full,
                &format!("trial {trial} step {step} flip ({u},{v})"),
            );
        }
    }
}

/// The adversarial structural cases the update rule has to get right:
/// degree-1 endpoints dropping to isolation, both endpoints of a flip on
/// the same node across consecutive steps, deletion followed by re-add
/// with a resync in between, and feature flips interleaved with edges.
#[test]
fn adversarial_sequences_match_full_rescore_bitwise() {
    let n = 12;
    let hops = 2;
    // Path graph: every interior node has degree 2, endpoints degree 1.
    let edges: Vec<(usize, usize)> = (0..n - 2).map(|i| (i, i + 1)).collect();
    let x = DenseMatrix::uniform(n, 4, 1.0, 42);
    let mut cfg = IncrConfig::new(hops);
    cfg.resync_stride = 3;
    let mut p = IncrProp::from_edges(n, &edges, x, &cfg);
    let sequence: &[(usize, usize)] = &[
        (0, 1),  // delete: endpoint 0 becomes isolated
        (0, 1),  // immediate re-add
        (0, 11), // connect to the isolated node (resync fires here, stride 3)
        (0, 11), // delete again: 11 re-isolated, after the resync
        (0, 11), // re-add after resync
        (5, 6),  // delete an interior edge
        (5, 7),  // same node 5 again next step
        (5, 8),  // and again (resync boundary)
        (6, 5),  // re-add (5,6) given in reversed order
    ];
    for (step, &(u, v)) in sequence.iter().enumerate() {
        p.flip_edge(u, v);
        let full = full_propagation(n, p.norm(), p.features(), hops);
        assert_bitwise(p.propagated(), &full, &format!("edge step {step}"));
    }
    // Feature flips on high- and zero-degree nodes.
    for (step, &(v, j)) in [(5usize, 0usize), (11, 3), (0, 2)].iter().enumerate() {
        let old = p.features().get(v, j);
        p.set_feature(v, j, 1.0 - old);
        let full = full_propagation(n, p.norm(), p.features(), hops);
        assert_bitwise(p.propagated(), &full, &format!("feature step {step}"));
    }
}

/// One engine on 1 thread, one on 4: identical flip sequence, identical
/// bytes at every step — the §7 kernel contract extended to the
/// incremental path (full builds and resyncs use the threaded SpMM; the
/// per-flip row repairs are serial and thread-independent by
/// construction).
#[test]
fn one_vs_many_threads_bitwise_identity() {
    let mut rng = Rng(7);
    let n = 32;
    let edges = random_edges(n, 4 * n, &mut rng);
    let x = DenseMatrix::uniform(n, 6, 1.0, 9);
    let mut cfg1 = IncrConfig::new(2);
    cfg1.resync_stride = 4;
    cfg1.threads = 1;
    let mut cfg4 = cfg1.clone();
    cfg4.threads = 4;
    let mut p1 = IncrProp::from_edges(n, &edges, x.clone(), &cfg1);
    let mut p4 = IncrProp::from_edges(n, &edges, x, &cfg4);
    assert_bitwise(p1.propagated(), p4.propagated(), "initial build");
    for step in 0..20 {
        let u = rng.below(n);
        let mut v = rng.below(n);
        if u == v {
            v = (v + 1) % n;
        }
        p1.flip_edge(u, v);
        p4.flip_edge(u, v);
        assert_bitwise(p1.propagated(), p4.propagated(), &format!("step {step}"));
        assert_eq!(p1.resynced(), p4.resynced());
    }
}

/// The virtually flipped normalized adjacency (GF-Attack's per-candidate
/// rescore input) matches a full rebuild bitwise for random candidates,
/// and never mutates the base state.
#[test]
fn virtual_flips_match_rebuild_bitwise() {
    let mut rng = Rng(0x6f);
    let n = 20;
    let edges = random_edges(n, 2 * n, &mut rng);
    let mut norm = IncrNorm::from_edges(n, &edges);
    let base_hash = norm.structure_hash();
    for _ in 0..30 {
        let u = rng.below(n);
        let mut v = rng.below(n);
        if u == v {
            v = (v + 1) % n;
        }
        let virt = norm.flipped_normalized_csr(u, v);
        // Rebuild from a really-flipped mirror.
        let existed = norm.flip_edge(u, v);
        let rebuilt = norm.normalized_csr();
        assert_eq!(virt.row_ptr(), rebuilt.row_ptr(), "row_ptr for ({u},{v})");
        assert_eq!(virt.col_indices(), rebuilt.col_indices());
        for (a, b) in virt.values().iter().zip(rebuilt.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "values for ({u},{v})");
        }
        // Undo so the next candidate starts from the same base.
        let restored = norm.flip_edge(u, v);
        assert_eq!(existed, !restored);
    }
    assert_eq!(norm.structure_hash(), base_hash, "base state mutated");
}
