//! Tables IV, V, VI — node classification accuracy (mean ± std) of every
//! model column under every attacker row at perturbation rate 0.1.
//!
//! Run one dataset with `--dataset cora|citeseer|polblogs`, or all three
//! without the flag. The best model per row is marked `(...)` like the
//! paper; the strongest attacker per column is implicit in the numbers.
//!
//! Every cell is a scenario [`Job`] run through the fault-isolated,
//! checkpointing harness (panic boundary + deterministic seed retries,
//! `results/tables_main.checkpoint.json`): kill this binary mid-sweep and
//! re-invoke it with the same flags to resume where it stopped, with
//! byte-identical output. The same jobs are reachable over HTTP through
//! `bbgnn-serve` (DESIGN.md §12).
//!
//! Reproduction targets (shape, not absolute numbers):
//! * every attacker reduces raw-GNN accuracy; GF-Attack barely does;
//! * Metattack and PEEGA are the strongest rows;
//! * GNAT takes the `(...)` mark on all (or nearly all) rows.

use bbgnn::prelude::*;
use bbgnn::scenario::dataset::paper_specs;
use bbgnn::scenario::eval::AttackRow;
use bbgnn::scenario::job::{EvalKind, EvalSpec, Job, JobSpec};
use bbgnn_bench::{
    config::ExpConfig,
    fault::FaultRunner,
    report::{mark_extreme, Table},
};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("tables_main (IV/V/VI)"));
    let specs = match paper_specs(cfg.dataset.as_deref()) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ctx = ExecContext::from_env();
    let mut harness = FaultRunner::new(&cfg, "tables_main");

    for spec in specs {
        let g = spec.generate(cfg.scale, cfg.seed);
        println!(
            "\n### {} — {} nodes, {} edges, budget δ = {} ###\n",
            spec.name(),
            g.num_nodes(),
            g.num_edges(),
            budget_for(&g, cfg.rate)
        );
        let columns = DefenderKind::paper_columns(spec.identity_features());
        let mut headers: Vec<String> = vec!["Attacker".to_string()];
        headers.extend(columns.iter().map(|c| c.name()));
        let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

        for row in AttackRow::paper_rows(cfg.rate) {
            let keys: Vec<String> = columns
                .iter()
                .map(|c| format!("{}/{}/{}", spec.name(), row.name(), c.name()))
                .collect();
            // Poisoning is the expensive shared setup of a row; skip it
            // entirely when resuming past a fully checkpointed row.
            let row_done = keys.iter().all(|k| harness.is_done(k));
            let (poisoned, result) = if row_done {
                (g.clone(), None)
            } else {
                row.poison(&g)
            };
            if let Some(r) = &result {
                eprintln!(
                    "[{}: {} edge flips, {} feature flips, {:.1}s]",
                    row.name(),
                    r.edge_flips,
                    r.feature_flips,
                    r.elapsed.as_secs_f64()
                );
            }
            let mut cells = vec![row.name()];
            for (col, key) in columns.iter().zip(&keys) {
                let job_spec = JobSpec {
                    dataset: spec.name().to_string(),
                    eval: EvalSpec {
                        kind: EvalKind::Accuracy,
                        runs: cfg.runs,
                        scale: cfg.scale,
                        rate: cfg.rate,
                    },
                    seed: cfg.seed,
                    ..JobSpec::default()
                };
                // The row's poison is shared across columns, so the job
                // gets the prepared graph (and no attacker of its own);
                // the key override preserves the historical checkpoint
                // format.
                let job = Job::from_parts(key.as_str(), job_spec, None, col.clone());
                let value = harness.job(job, &ctx, Some(&poisoned));
                eprintln!("  {} x {} = {value}", row.name(), col.name());
                cells.push(value);
            }
            table.push_row(cells);
        }
        let value_cols: Vec<usize> = (1..=columns.len()).collect();
        mark_extreme(&mut table, &value_cols, true, ("(", ")"));
        table.emit(&cfg.out_dir, &format!("table_main_{}", spec.name()));
    }
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper: GNAT holds the highest accuracy on clean and poisoned graphs;");
    println!("Metattack and PEEGA are the strongest attack rows, GF-Attack the weakest.");
}
