//! `bbgnn_analysis` — hand-rolled static analysis for the bbgnn workspace.
//!
//! The reproduction's headline contract — PEEGA/GNAT results are bitwise
//! identical across thread counts and with tracing on or off (DESIGN.md
//! §7–§8) — rests on a handful of invariants that used to live in prose:
//! no FMA contraction, no iteration over seeded hash collections in
//! numeric paths, no clock reads outside the observability layer,
//! disjoint-row `unsafe` confined to the kernel file, no panics in
//! library code, and obs names that match the documented taxonomy. This
//! crate turns those chapters into machine-checkable rules, enforced on
//! every PR by the `bbgnn-lint` binary (CI `analysis` job).
//!
//! The pass is a **zero-dependency, token-level lint** (see [`lexer`]): no
//! `syn`, no rustc internals, matching the workspace's no-external-deps
//! rule. What a lexer cannot see — actual data races, actual UB — is
//! covered dynamically by the Miri and ThreadSanitizer CI jobs this crate
//! ships alongside (DESIGN.md §9).
//!
//! Library layout:
//!
//! * [`lexer`] — comment- and string-aware Rust tokenizer;
//! * [`rules`] — the rule engine ([`rules::lint_source`] lints one file);
//! * [`allow`] — the `// lint: allow(<rule>) reason=...` waiver syntax;
//! * [`taxonomy`] — the DESIGN.md §8 span/counter name taxonomy, parsed
//!   from the embedded document (also consumed by `bbgnn_bench::trace`);
//! * [`walk`] — deterministic workspace traversal.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod taxonomy;
pub mod walk;

pub use rules::{classify, lint_source, FileKind, FileReport, Rule, Violation};
pub use taxonomy::{parse_taxonomy, Taxonomy};
pub use walk::{lint_workspace, WorkspaceReport};
