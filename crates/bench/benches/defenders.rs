//! Criterion micro-benchmarks for the Table VIII defender training-time
//! comparison.
//!
//! Each model trains on the same small clean Cora-like graph with a fixed
//! 60-epoch budget (no early stopping) so the numbers compare per-epoch
//! cost. Reproduction target: GCN cheapest, GNAT a small constant above
//! it, Pro-GNN far above everything.

use bbgnn::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_defenders(c: &mut Criterion) {
    let g = DatasetSpec::CoraLike.generate(0.05, 7);
    let train = TrainConfig {
        epochs: 60,
        patience: 0,
        dropout: 0.5,
        ..Default::default()
    };
    let mut group = c.benchmark_group("defenders");
    group.sample_size(10);

    let mut kinds: Vec<(&str, DefenderKind)> = vec![
        ("gcn", DefenderKind::Gcn),
        ("gat", DefenderKind::Gat),
        (
            "gcn_jaccard",
            DefenderKind::GcnJaccard(GcnJaccardConfig::default()),
        ),
        ("gcn_svd", DefenderKind::GcnSvd(GcnSvdConfig::default())),
        ("rgcn", DefenderKind::Rgcn(RgcnConfig::default())),
        ("simpgcn", DefenderKind::SimPGcn(SimPGcnConfig::default())),
        ("gnat", DefenderKind::Gnat(GnatConfig::default())),
    ];
    // Pro-GNN with a reduced outer budget so the benchmark terminates in
    // reasonable time — it is still the slowest by a wide margin.
    kinds.push((
        "prognn",
        DefenderKind::ProGnn(ProGnnConfig {
            outer_epochs: 10,
            inner_epochs: 3,
            ..Default::default()
        }),
    ));

    for (name, kind) in kinds {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut model = kind.build(train.clone());
                model.fit(&g);
                std::hint::black_box(model.predict(&g))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defenders);
criterion_main!(benches);
