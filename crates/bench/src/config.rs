//! Experiment configuration from CLI flags and environment variables.
//!
//! The experiment-shaped knobs (`--scale --runs --rate --seed --dataset
//! --out`) are parsed here; the cross-cutting infrastructure flags
//! (`--threads --trace --store --deadline --budget --faults`) are
//! delegated to the shared [`crate::cli`] module, which also owns the
//! init-time side-effect sequence.

use crate::cli::{invalid, parse_value, InfraFlags};
use bbgnn_errors::BbgnnResult;

/// Shared experiment knobs.
///
/// Resolution order per field: CLI flag (`--scale 0.2`) > environment
/// variable (`BBGNN_SCALE=0.2`) > default. The defaults are sized so each
/// experiment binary finishes on a laptop CPU in minutes; pass a larger
/// `--scale` to approach the paper's full dataset sizes.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Dataset scale factor in `(0, 1]` (fraction of Table III sizes).
    pub scale: f64,
    /// Repeated runs per cell (the paper uses 10).
    pub runs: usize,
    /// Perturbation rate `r` (the paper's headline tables use 0.1).
    pub rate: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional dataset filter (`--dataset cora|citeseer|polblogs`).
    pub dataset: Option<String>,
    /// Directory for CSV/JSON result dumps.
    pub out_dir: String,
    /// Kernel worker threads (`--threads N` / `BBGNN_THREADS`; `0` = the
    /// machine's available parallelism). Results are bitwise-identical for
    /// every value — this knob trades wall-clock only.
    pub threads: usize,
    /// Trace output path (`--trace out.jsonl` / `BBGNN_TRACE`). `None`
    /// (default) keeps tracing disabled at near-zero overhead. Tracing
    /// never changes experiment results — traced and untraced runs are
    /// byte-identical (enforced by the CI tracing job).
    pub trace: Option<String>,
    /// Artifact-store root (`--store dir` / `BBGNN_STORE`). `None`
    /// (default) disables caching. A warm-started run is byte-identical to
    /// a cold one — the store only skips recomputation of bit-for-bit
    /// reproducible intermediates (enforced by the CI store job).
    pub store: Option<String>,
    /// Wall-clock deadline spec (`--deadline 90s` / `BBGNN_DEADLINE`).
    /// `None` (default) leaves supervision off. On expiry, loops stop at
    /// their next check site and the run exits cleanly with degraded
    /// cells; with no deadline the run is byte-identical to pre-supervision
    /// output (zero-cost-off, enforced by the CI chaos job).
    pub deadline: Option<String>,
    /// Resource-budget spec (`--budget epochs=500,queries=2M,mem=1Gi` /
    /// `BBGNN_BUDGET`). Same degradation semantics as `deadline`.
    pub budget: Option<String>,
    /// Fault-injection plan (`--faults <seed>:<site>[@n][,...]` /
    /// `BBGNN_FAULTS`). `None` (default) injects nothing; the spec is
    /// validated against the DESIGN.md §11 site catalog at parse time.
    pub faults: Option<String>,
    /// Incremental attack rescoring (`--incremental` / `BBGNN_INCR=1`).
    /// `false` (default) keeps the dense from-scratch rescore. Flip
    /// sequences — and every table/figure byte — are identical either way
    /// (DESIGN.md §13); the flag only changes Table VII wall-clock.
    pub incremental: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 0.12,
            runs: 3,
            rate: 0.1,
            seed: 7,
            dataset: None,
            out_dir: "results".to_string(),
            threads: 0,
            trace: None,
            store: None,
            deadline: None,
            budget: None,
            faults: None,
            incremental: false,
        }
    }
}

impl ExpConfig {
    /// Parses the process arguments and environment, exiting with a usage
    /// message on malformed input. Experiment binaries call this; library
    /// code and tests use [`try_from_args`](Self::try_from_args).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::init_from(&args)
    }

    /// [`from_args`](Self::from_args) over an explicit argument list —
    /// the entry point for binaries that pre-extract their own flags
    /// (e.g. `kernel_bench --compare`) before handing the rest over.
    pub fn init_from(args: &[String]) -> Self {
        match Self::try_parse(args, |name| std::env::var(name).ok()) {
            Ok(cfg) => {
                cfg.infra().init();
                cfg
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("see --help for usage");
                std::process::exit(2);
            }
        }
    }

    /// The infrastructure half of this config, as the shared
    /// [`InfraFlags`] the init sequence consumes.
    pub fn infra(&self) -> InfraFlags {
        InfraFlags {
            threads: self.threads,
            trace: self.trace.clone(),
            store: self.store.clone(),
            deadline: self.deadline.clone(),
            budget: self.budget.clone(),
            faults: self.faults.clone(),
            incremental: self.incremental,
        }
    }

    /// Parses the process arguments and environment, reporting malformed
    /// input as [`BbgnnError::InvalidConfig`] naming the offending flag or
    /// environment variable.
    pub fn try_from_args() -> BbgnnResult<Self> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::try_parse(&args, |name| std::env::var(name).ok())
    }

    /// Testable core of [`try_from_args`](Self::try_from_args): explicit
    /// argument list and environment lookup.
    pub fn try_parse(args: &[String], env: impl Fn(&str) -> Option<String>) -> BbgnnResult<Self> {
        let mut cfg = Self::default();
        if let Some(v) = env("BBGNN_SCALE") {
            cfg.scale = parse_value(Some(&v), "BBGNN_SCALE", "a float")?;
        }
        if let Some(v) = env("BBGNN_RUNS") {
            cfg.runs = parse_value(Some(&v), "BBGNN_RUNS", "an integer")?;
        }
        if let Some(v) = env("BBGNN_RATE") {
            cfg.rate = parse_value(Some(&v), "BBGNN_RATE", "a float")?;
        }
        if let Some(v) = env("BBGNN_SEED") {
            cfg.seed = parse_value(Some(&v), "BBGNN_SEED", "an integer")?;
        }
        if let Some(v) = env("BBGNN_OUT") {
            cfg.out_dir = v;
        }
        let mut infra = InfraFlags::from_env(&env)?;
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args.get(i + 1).map(String::as_str);
            let consumed = infra.consume(flag, value)?;
            if consumed > 0 {
                i += consumed;
                continue;
            }
            match flag {
                "--scale" => cfg.scale = parse_value(value, flag, "a float")?,
                "--runs" => cfg.runs = parse_value(value, flag, "an integer")?,
                "--rate" => cfg.rate = parse_value(value, flag, "a float")?,
                "--seed" => cfg.seed = parse_value(value, flag, "an integer")?,
                "--dataset" => {
                    cfg.dataset = Some(
                        value
                            .ok_or_else(|| invalid(flag, "requires a value (name)"))?
                            .to_string(),
                    )
                }
                "--out" => {
                    cfg.out_dir = value
                        .ok_or_else(|| invalid(flag, "requires a value (dir)"))?
                        .to_string()
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale F --runs N --rate F --seed N --dataset NAME --out DIR {}",
                        InfraFlags::USAGE
                    );
                    std::process::exit(0);
                }
                other => return Err(invalid(other, "unknown flag; see --help")),
            }
            i += 2;
        }
        cfg.threads = infra.threads;
        cfg.trace = infra.trace;
        cfg.store = infra.store;
        cfg.deadline = infra.deadline;
        cfg.budget = infra.budget;
        cfg.faults = infra.faults;
        cfg.incremental = infra.incremental;
        if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
            return Err(invalid(
                "--scale / BBGNN_SCALE",
                format!("must be in (0, 1], got {}", cfg.scale),
            ));
        }
        if cfg.runs < 1 {
            return Err(invalid("--runs / BBGNN_RUNS", "need at least one run"));
        }
        if !(cfg.rate >= 0.0 && cfg.rate <= 1.0) {
            return Err(invalid(
                "--rate / BBGNN_RATE",
                format!("must be in [0, 1], got {}", cfg.rate),
            ));
        }
        Ok(cfg)
    }

    /// Kernel worker count this run will actually use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            bbgnn::exec::env_threads()
        } else {
            self.threads
        }
    }

    /// Banner line echoed at the top of every experiment's output.
    ///
    /// Threads are shown but deliberately kept out of
    /// [`fingerprint`](Self::fingerprint): the kernels are bitwise
    /// deterministic in the worker count, so a checkpoint taken at
    /// `--threads 1` is still valid when resumed at `--threads 8`.
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "== {experiment} | scale {} | runs {} | rate {} | seed {} | threads {} ==",
            self.scale,
            self.runs,
            self.rate,
            self.seed,
            self.resolved_threads()
        )
    }

    /// Checkpoint fingerprint: a resumed run must have identical knobs, or
    /// the old checkpoint is discarded (see
    /// [`Checkpoint`](crate::checkpoint::Checkpoint)).
    ///
    /// Infra knobs are deliberately omitted: §7 guarantees results are
    /// invariant to thread count and tracing, the store/out_dir only say
    /// *where* results land, deadline/budget/faults truncate or perturb a
    /// run in ways a resume is designed to heal, and `--incremental` is an
    /// execution strategy with bitwise-identical output (§13). Folding any
    /// of them in would make `--threads 1` checkpoints unusable under
    /// `--threads 8`.
    // lint: key_fields exclude(out_dir, threads, trace, store, deadline, budget, faults, incremental) reason=infra knobs; §7/§13 results are invariant to them and a resume must survive changing them
    pub fn fingerprint(&self, experiment: &str) -> String {
        format!(
            "{experiment}|scale={}|runs={}|rate={}|seed={}|dataset={}",
            self.scale,
            self.runs,
            self.rate,
            self.seed,
            self.dataset.as_deref().unwrap_or("all")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_errors::BbgnnError;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let c = ExpConfig::default();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.runs >= 1);
        assert!(c.rate > 0.0);
    }

    #[test]
    fn banner_mentions_experiment() {
        let c = ExpConfig::default();
        assert!(c.banner("table4").contains("table4"));
    }

    #[test]
    fn flags_override_env_override_defaults() {
        let env = |name: &str| (name == "BBGNN_SCALE").then(|| "0.3".to_string());
        let c = ExpConfig::try_parse(&argv(&["--runs", "5"]), env).unwrap();
        assert_eq!(c.scale, 0.3);
        assert_eq!(c.runs, 5);
        assert_eq!(c.rate, ExpConfig::default().rate);
    }

    #[test]
    fn malformed_flag_names_the_flag() {
        let err = ExpConfig::try_parse(&argv(&["--scale", "big"]), no_env).unwrap_err();
        match err {
            BbgnnError::InvalidConfig { what, message } => {
                assert_eq!(what, "--scale");
                assert!(
                    message.contains("\"big\""),
                    "message must quote the value: {message}"
                );
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn malformed_env_names_the_variable() {
        let env = |name: &str| (name == "BBGNN_SEED").then(|| "7.5".to_string());
        let err = ExpConfig::try_parse(&[], env).unwrap_err();
        match err {
            BbgnnError::InvalidConfig { what, .. } => assert_eq!(what, "BBGNN_SEED"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn missing_value_and_unknown_flag_are_reported() {
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--seed"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--seed"
        ));
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--frobnicate", "1"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--frobnicate"
        ));
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        assert!(ExpConfig::try_parse(&argv(&["--scale", "1.5"]), no_env).is_err());
        assert!(ExpConfig::try_parse(&argv(&["--runs", "0"]), no_env).is_err());
        assert!(ExpConfig::try_parse(&argv(&["--rate", "-0.1"]), no_env).is_err());
    }

    #[test]
    fn threads_flag_and_env_are_parsed_and_validated() {
        let c = ExpConfig::try_parse(&argv(&["--threads", "4"]), no_env).unwrap();
        assert_eq!(c.threads, 4);
        assert_eq!(c.resolved_threads(), 4);
        let env = |name: &str| (name == "BBGNN_THREADS").then(|| "2".to_string());
        let c = ExpConfig::try_parse(&[], env).unwrap();
        assert_eq!(c.threads, 2);
        // 0 = auto resolves to at least one worker.
        let c = ExpConfig::try_parse(&[], no_env).unwrap();
        assert!(c.resolved_threads() >= 1);
        // A typo'd value is a loud error here, not a silent fall-back.
        let env = |name: &str| (name == "BBGNN_THREADS").then(|| "many".to_string());
        assert!(matches!(
            ExpConfig::try_parse(&[], env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "BBGNN_THREADS"
        ));
    }

    #[test]
    fn trace_flag_and_env_are_parsed() {
        let c = ExpConfig::try_parse(&argv(&["--trace", "out.jsonl"]), no_env).unwrap();
        assert_eq!(c.trace.as_deref(), Some("out.jsonl"));
        let env = |name: &str| (name == "BBGNN_TRACE").then(|| "env.jsonl".to_string());
        let c = ExpConfig::try_parse(&[], env).unwrap();
        assert_eq!(c.trace.as_deref(), Some("env.jsonl"));
        // Flag wins over env, default is off.
        let env = |name: &str| (name == "BBGNN_TRACE").then(|| "env.jsonl".to_string());
        let c = ExpConfig::try_parse(&argv(&["--trace", "flag.jsonl"]), env).unwrap();
        assert_eq!(c.trace.as_deref(), Some("flag.jsonl"));
        assert_eq!(ExpConfig::try_parse(&[], no_env).unwrap().trace, None);
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--trace"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--trace"
        ));
    }

    #[test]
    fn fingerprint_ignores_trace() {
        // Tracing never changes results, so a checkpoint from an untraced
        // run must be resumable under --trace (and vice versa).
        let a = ExpConfig {
            trace: Some("t.jsonl".to_string()),
            ..Default::default()
        };
        let b = ExpConfig::default();
        assert_eq!(a.fingerprint("t"), b.fingerprint("t"));
    }

    #[test]
    fn store_flag_and_env_are_parsed_and_fingerprint_ignores_store() {
        let c = ExpConfig::try_parse(&argv(&["--store", "cache"]), no_env).unwrap();
        assert_eq!(c.store.as_deref(), Some("cache"));
        let env = |name: &str| (name == "BBGNN_STORE").then(|| "envcache".to_string());
        let c = ExpConfig::try_parse(&[], env).unwrap();
        assert_eq!(c.store.as_deref(), Some("envcache"));
        assert_eq!(ExpConfig::try_parse(&[], no_env).unwrap().store, None);
        // A warm-started run is byte-identical to a cold one, so a
        // checkpoint from a store-less run must be resumable with --store
        // (and vice versa).
        let a = ExpConfig {
            store: Some("cache".to_string()),
            ..Default::default()
        };
        assert_eq!(a.fingerprint("t"), ExpConfig::default().fingerprint("t"));
    }

    #[test]
    fn deadline_and_budget_flags_are_validated_and_fingerprint_ignored() {
        let c = ExpConfig::try_parse(
            &argv(&["--deadline", "90s", "--budget", "epochs=5,mem=1Gi"]),
            no_env,
        )
        .unwrap();
        assert_eq!(c.deadline.as_deref(), Some("90s"));
        assert_eq!(c.budget.as_deref(), Some("epochs=5,mem=1Gi"));
        // Malformed specs are loud config errors naming the flag.
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--deadline", "soonish"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--deadline"
        ));
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--budget", "steps=3"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--budget"
        ));
        // Supervision only truncates work — completed checkpoint cells stay
        // valid — so the knobs stay out of the fingerprint and a bounded
        // run can resume an unbounded one (and vice versa).
        let a = ExpConfig {
            deadline: Some("90s".to_string()),
            budget: Some("epochs=5".to_string()),
            ..Default::default()
        };
        assert_eq!(a.fingerprint("t"), ExpConfig::default().fingerprint("t"));
    }

    #[test]
    fn faults_flag_is_validated_and_fingerprint_ignored() {
        let c = ExpConfig::try_parse(&argv(&["--faults", "7:fault/kernel_nan@2"]), no_env).unwrap();
        assert_eq!(c.faults.as_deref(), Some("7:fault/kernel_nan@2"));
        assert!(matches!(
            ExpConfig::try_parse(&argv(&["--faults", "7:fault/nope"]), no_env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--faults"
        ));
        // Injected faults only perturb execution; completed cells are
        // byte-identical, so the plan stays out of the fingerprint.
        let a = ExpConfig {
            faults: Some("7:fault/kernel_nan".to_string()),
            ..Default::default()
        };
        assert_eq!(a.fingerprint("t"), ExpConfig::default().fingerprint("t"));
    }

    #[test]
    fn incremental_flag_and_env_are_parsed_and_fingerprint_ignored() {
        // Valueless flag: must not swallow the following argument.
        let c = ExpConfig::try_parse(&argv(&["--incremental", "--runs", "5"]), no_env).unwrap();
        assert!(c.incremental);
        assert_eq!(c.runs, 5);
        let env = |name: &str| (name == "BBGNN_INCR").then(|| "1".to_string());
        assert!(ExpConfig::try_parse(&[], env).unwrap().incremental);
        assert!(!ExpConfig::try_parse(&[], no_env).unwrap().incremental);
        // Malformed env is a loud error naming the variable.
        let env = |name: &str| (name == "BBGNN_INCR").then(|| "maybe".to_string());
        assert!(matches!(
            ExpConfig::try_parse(&[], env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "BBGNN_INCR"
        ));
        // Incremental runs commit byte-identical flip sequences, so a
        // checkpoint from a dense run must be resumable under
        // --incremental (and vice versa) — the knob stays out of the
        // fingerprint like every other infra flag.
        let a = ExpConfig {
            incremental: true,
            ..Default::default()
        };
        assert_eq!(a.fingerprint("t"), ExpConfig::default().fingerprint("t"));
    }

    #[test]
    fn fingerprint_ignores_threads() {
        // Bitwise determinism in the worker count means a checkpoint from a
        // 1-thread run must be resumable on 8 threads.
        let a = ExpConfig {
            threads: 1,
            ..Default::default()
        };
        let b = ExpConfig {
            threads: 8,
            ..Default::default()
        };
        assert_eq!(a.fingerprint("t"), b.fingerprint("t"));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = ExpConfig::default();
        let b = ExpConfig {
            seed: 8,
            ..Default::default()
        };
        assert_ne!(a.fingerprint("t"), b.fingerprint("t"));
        assert_ne!(a.fingerprint("t4"), a.fingerprint("t5"));
    }
}
