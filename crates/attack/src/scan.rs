//! Deterministic parallel candidate scans shared by the attackers.
//!
//! Every greedy attacker in this crate repeatedly argmaxes a score over a
//! large candidate space — the strict upper triangle of the adjacency for
//! edge flips, the `n × d` feature grid for feature flips. These helpers
//! fan that scan over a [`ThreadPool`]: each worker scans a contiguous
//! index chunk in ascending order, and chunk results merge in ascending
//! chunk order with strict `>`, so the winner is the exact sequential
//! first-max regardless of worker count (the kernels' bitwise-determinism
//! contract, see `bbgnn_linalg::kernels`).

use bbgnn_linalg::ThreadPool;

/// Merges two scored candidates with strict `>`: the right side wins only
/// when its score is strictly higher. Folding chunk results in ascending
/// chunk order with this rule reproduces the sequential first-max scan.
pub(crate) fn merge_best<T>(a: Option<(f64, T)>, b: Option<(f64, T)>) -> Option<(f64, T)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.0 > x.0 { y } else { x }),
        (x, y) => x.or(y),
    }
}

/// Decodes a flattened strict-upper-triangle index `k` (lexicographic over
/// pairs `(u, v)` with `u < v`) back into its pair. Used to seed each
/// chunk of the parallel edge scan.
fn unflatten_pair(k: usize, n: usize) -> (usize, usize) {
    let mut u = 0;
    let mut row_start = 0;
    loop {
        let row_len = n - u - 1;
        if k < row_start + row_len {
            return (u, u + 1 + (k - row_start));
        }
        row_start += row_len;
        u += 1;
    }
}

/// Parallel first-max over undirected pairs `(u, v)` with `u < v`.
///
/// `score(u, v)` returns `None` to skip a candidate; non-finite scores
/// are skipped the same way (a NaN can never be a meaningful argmax, and a
/// `+inf` — e.g. from an unguarded division by a zero degree — would
/// otherwise *win* it and select a garbage flip). The result is
/// bitwise-identical to the ascending sequential double loop for every
/// worker count. Returns `None` when the candidate space is empty or every
/// score is skipped.
pub(crate) fn best_edge_flip<S>(
    pool: &ThreadPool,
    n: usize,
    score: S,
) -> Option<(f64, usize, usize)>
where
    S: Fn(usize, usize) -> Option<f64> + Sync,
{
    let pairs = n * n.saturating_sub(1) / 2;
    // One scan = `pairs` candidate queries against the victim surrogate.
    // Accounted on the calling thread before the pool region so a query
    // budget trips at a deterministic scan boundary (DESIGN.md §11).
    bbgnn_supervise::note_queries(pairs as u64);
    pool.map_fold(
        pairs,
        |range| {
            let mut best: Option<(f64, (usize, usize))> = None;
            let (mut u, mut v) = unflatten_pair(range.start, n);
            for _ in range {
                if let Some(s) = score(u, v) {
                    // Non-finite scores are skipped entirely: a NaN would be
                    // admitted as the *first* candidate by `map_or(true, …)`
                    // and then beat nothing (NaN comparisons are all false),
                    // and a +inf would win the argmax outright.
                    if s.is_finite() && best.map_or(true, |(b, _)| s > b) {
                        best = Some((s, (u, v)));
                    }
                }
                v += 1;
                if v == n {
                    u += 1;
                    v = u + 1;
                }
            }
            best
        },
        merge_best,
    )
    .flatten()
    .map(|(s, (u, v))| (s, u, v))
}

/// Parallel first-max over the entries of a `rows × cols` grid, scanned in
/// row-major order. Same determinism contract as [`best_edge_flip`].
pub(crate) fn best_entry_flip<S>(
    pool: &ThreadPool,
    rows: usize,
    cols: usize,
    score: S,
) -> Option<(f64, usize, usize)>
where
    S: Fn(usize, usize) -> Option<f64> + Sync,
{
    if cols == 0 {
        return None;
    }
    // Same deterministic query accounting as `best_edge_flip`.
    bbgnn_supervise::note_queries((rows * cols) as u64);
    pool.map_fold(
        rows * cols,
        |range| {
            let mut best: Option<(f64, (usize, usize))> = None;
            for k in range {
                let (r, c) = (k / cols, k % cols);
                if let Some(s) = score(r, c) {
                    // Same non-finite guard as the edge scan above.
                    if s.is_finite() && best.map_or(true, |(b, _)| s > b) {
                        best = Some((s, (r, c)));
                    }
                }
            }
            best
        },
        merge_best,
    )
    .flatten()
    .map(|(s, (r, c))| (s, r, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflatten_pair_is_lexicographic() {
        let n = 7;
        let mut k = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(unflatten_pair(k, n), (u, v));
                k += 1;
            }
        }
        assert_eq!(k, n * (n - 1) / 2);
    }

    /// Degenerate candidate spaces must return `None`, not panic: zero or
    /// one node (no pairs), zero rows, zero columns.
    #[test]
    fn empty_candidate_spaces_return_none() {
        let pool = ThreadPool::new(4);
        let some = |_: usize, _: usize| Some(1.0);
        assert_eq!(best_edge_flip(&pool, 0, some), None);
        assert_eq!(best_edge_flip(&pool, 1, some), None);
        assert_eq!(best_entry_flip(&pool, 0, 5, some), None);
        assert_eq!(best_entry_flip(&pool, 5, 0, some), None);
        // Non-empty space where every candidate is skipped.
        let none = |_: usize, _: usize| None::<f64>;
        assert_eq!(best_edge_flip(&pool, 10, none), None);
        assert_eq!(best_entry_flip(&pool, 4, 4, none), None);
    }

    /// All-equal scores: strict `>` keeps the *first* candidate in scan
    /// order, for every worker count.
    #[test]
    fn all_equal_scores_select_first_candidate() {
        let flat = |_: usize, _: usize| Some(2.5);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(best_edge_flip(&pool, 30, flat), Some((2.5, 0, 1)));
            assert_eq!(best_entry_flip(&pool, 30, 30, flat), Some((2.5, 0, 0)));
        }
    }

    /// NaN scores must never be selected — including a NaN on the very
    /// first candidate, which the pre-fix `map_or(true, …)` admitted and
    /// then never replaced (NaN comparisons are all false).
    #[test]
    fn nan_scores_are_never_selected() {
        let nan_first = |u: usize, v: usize| Some(if u == 0 && v <= 1 { f64::NAN } else { 1.0 });
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let best = best_edge_flip(&pool, 20, nan_first);
            assert_eq!(best, Some((1.0, 0, 2)), "NaN leaked past the scan");
            let best = best_entry_flip(&pool, 20, 20, nan_first);
            assert_eq!(best, Some((1.0, 0, 2)));
        }
        // All-NaN space: nothing selectable.
        let all_nan = |_: usize, _: usize| Some(f64::NAN);
        let pool = ThreadPool::new(4);
        assert_eq!(best_edge_flip(&pool, 10, all_nan), None);
        assert_eq!(best_entry_flip(&pool, 4, 4, all_nan), None);
    }

    /// Infinite scores must never be selected: unlike NaN, a `+inf` passed
    /// the pre-fix `!s.is_nan()` guard and *won* the argmax (the ISSUE 8
    /// GF-Attack degree-division symptom). Finite scores must beat it, and
    /// an all-inf space selects nothing.
    #[test]
    fn infinite_scores_are_never_selected() {
        let inf_first =
            |u: usize, v: usize| Some(if u == 0 && v <= 1 { f64::INFINITY } else { 1.0 });
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                best_edge_flip(&pool, 20, inf_first),
                Some((1.0, 0, 2)),
                "+inf leaked past the edge scan"
            );
            assert_eq!(best_entry_flip(&pool, 20, 20, inf_first), Some((1.0, 0, 2)));
        }
        // All-inf space (every candidate degenerate): nothing selectable.
        let all_inf = |_: usize, _: usize| Some(f64::INFINITY);
        let neg_inf = |_: usize, _: usize| Some(f64::NEG_INFINITY);
        let pool = ThreadPool::new(4);
        assert_eq!(best_edge_flip(&pool, 10, all_inf), None);
        assert_eq!(best_entry_flip(&pool, 4, 4, all_inf), None);
        assert_eq!(best_edge_flip(&pool, 10, neg_inf), None);
        assert_eq!(best_entry_flip(&pool, 4, 4, neg_inf), None);
    }

    #[test]
    fn parallel_scan_matches_sequential_first_max() {
        // Scores engineered with plateaus (ties) so first-max semantics
        // actually matter; 8 workers over a space big enough to chunk.
        let n = 80;
        let score = |u: usize, v: usize| {
            if (u + v) % 3 == 0 {
                None
            } else {
                Some(((u * 31 + v * 17) % 97) as f64)
            }
        };
        let mut seq: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            for v in (u + 1)..n {
                if let Some(s) = score(u, v) {
                    if seq.map_or(true, |(b, _, _)| s > b) {
                        seq = Some((s, u, v));
                    }
                }
            }
        }
        for threads in [1, 2, 8] {
            let par = best_edge_flip(&ThreadPool::new(threads), n, score);
            assert_eq!(par, seq, "{threads}-thread edge scan diverged");
        }
        let mut seq_e: Option<(f64, usize, usize)> = None;
        for r in 0..n {
            for c in 0..n {
                if let Some(s) = score(r, c) {
                    if seq_e.map_or(true, |(b, _, _)| s > b) {
                        seq_e = Some((s, r, c));
                    }
                }
            }
        }
        for threads in [1, 2, 8] {
            let par = best_entry_flip(&ThreadPool::new(threads), n, n, score);
            assert_eq!(par, seq_e, "{threads}-thread entry scan diverged");
        }
    }
}
