//! GNN defenders.
//!
//! The paper's defensive contribution is [`gnat::Gnat`], which trains a GCN
//! jointly on three augmented views of the (possibly poisoned) graph to
//! make node contexts distinguishable again. Every defender baseline of the
//! evaluation is implemented alongside it:
//!
//! | Defender | Category | Mechanism |
//! |---|---|---|
//! | [`gnat::Gnat`] | augmentation | topology / feature / ego views |
//! | [`jaccard::GcnJaccard`] | preprocessing | drop low-Jaccard edges |
//! | [`svd_defense::GcnSvd`] | preprocessing | low-rank adjacency |
//! | [`rgcn::Rgcn`] | attention | Gaussian representations |
//! | [`prognn::ProGnn`] | graph learning | joint structure learning |
//! | [`simpgcn::SimPGcn`] | similarity | feature-kNN channel + SSL |
//!
//! All defenders implement [`Defender`] (an extension of
//! [`NodeClassifier`]) so the bench harness can iterate over the paper's
//! table columns uniformly.

#![deny(missing_docs)]

pub mod gnat;
pub mod jaccard;
pub mod prognn;
pub mod rgcn;
pub mod simpgcn;
pub mod svd_defense;

use bbgnn_gnn::NodeClassifier;

/// A named defender — [`NodeClassifier`] plus the display name used in the
/// paper's table columns.
pub trait Defender: NodeClassifier {
    /// Display name, e.g. `"GNAT-t+f+e"`.
    fn name(&self) -> String;
}

// The raw GNNs are the undefended table columns; naming them here lets the
// harness treat all eight models of Tables IV–VI uniformly.
impl Defender for bbgnn_gnn::gcn::Gcn {
    fn name(&self) -> String {
        "GCN".to_string()
    }
}

impl Defender for bbgnn_gnn::gat::Gat {
    fn name(&self) -> String {
        "GAT".to_string()
    }
}

/// Helper: builds a symmetric k-nearest-neighbor graph from row-wise cosine
/// similarity of `features` (used by GNAT's feature view and SimPGCN).
/// Node pairs with zero similarity are never connected. Returns `(u, v)`
/// edges with `u < v`.
pub fn knn_feature_edges(features: &bbgnn_linalg::DenseMatrix, k: usize) -> Vec<(usize, usize)> {
    use bbgnn_linalg::dense::cosine_similarity;
    let n = features.rows();
    let mut edges = std::collections::BTreeSet::new();
    for v in 0..n {
        let mut sims: Vec<(f64, usize)> = (0..n)
            .filter(|&u| u != v)
            .map(|u| (cosine_similarity(features.row(v), features.row(u)), u))
            .collect();
        sims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(s, u) in sims.iter().take(k) {
            if s > 0.0 {
                edges.insert((v.min(u), v.max(u)));
            }
        }
    }
    edges.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_linalg::DenseMatrix;

    #[test]
    fn knn_connects_identical_rows() {
        let f = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0],
        ]);
        let edges = knn_feature_edges(&f, 1);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
        assert!(!edges.contains(&(0, 2)), "orthogonal rows must not connect");
    }

    #[test]
    fn knn_on_identity_features_is_empty() {
        // Polblogs case: all pairwise cosine similarities are zero.
        let f = DenseMatrix::identity(5);
        assert!(knn_feature_edges(&f, 3).is_empty());
    }

    #[test]
    fn knn_respects_k() {
        let f = DenseMatrix::filled(6, 4, 1.0);
        let edges = knn_feature_edges(&f, 2);
        // Every node proposes 2 edges; union of symmetric proposals.
        for v in 0..6 {
            let deg = edges.iter().filter(|&&(a, b)| a == v || b == v).count();
            assert!(deg >= 2, "node {v} has degree {deg} < k");
        }
    }
}
