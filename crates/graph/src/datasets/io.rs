//! Plain-text dataset persistence.
//!
//! Format (one directory per dataset):
//!
//! * `meta.txt` — `nodes classes feature_dim` on one line;
//! * `edges.txt` — one `u v` pair per line (undirected, any order);
//! * `features.txt` — per node, the indices of its active feature bits
//!   (space-separated; empty line = no active bits). `identity` on the
//!   first line means identity features;
//! * `labels.txt` — one label per line;
//! * `split.txt` — three lines: train, valid, test node indices.
//!
//! This is deliberately simple so the real Cora/Citeseer/Polblogs data can
//! be exported from DeepRobust with a few lines of Python and dropped in.

use crate::splits::Split;
use crate::Graph;
use bbgnn_linalg::DenseMatrix;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Saves `g` into directory `dir` (created if missing).
pub fn save(g: &Graph, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join("meta.txt"),
        format!("{} {} {}\n", g.num_nodes(), g.num_classes, g.feature_dim()),
    )?;
    let mut edges = String::new();
    for (u, v) in g.edges() {
        writeln!(edges, "{u} {v}").unwrap();
    }
    fs::write(dir.join("edges.txt"), edges)?;

    let identity = is_identity(&g.features);
    let mut feats = String::new();
    if identity {
        feats.push_str("identity\n");
    } else {
        for v in 0..g.num_nodes() {
            let active: Vec<String> = g
                .features
                .row(v)
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(j, _)| j.to_string())
                .collect();
            writeln!(feats, "{}", active.join(" ")).unwrap();
        }
    }
    fs::write(dir.join("features.txt"), feats)?;

    let labels: String = g.labels.iter().map(|y| format!("{y}\n")).collect();
    fs::write(dir.join("labels.txt"), labels)?;

    let mut split = String::new();
    for set in [&g.split.train, &g.split.valid, &g.split.test] {
        let line: Vec<String> = set.iter().map(|v| v.to_string()).collect();
        writeln!(split, "{}", line.join(" ")).unwrap();
    }
    fs::write(dir.join("split.txt"), split)?;
    Ok(())
}

/// Loads a graph previously written by [`save`] (or exported externally in
/// the same format).
pub fn load(dir: &Path) -> io::Result<Graph> {
    let meta = fs::read_to_string(dir.join("meta.txt"))?;
    let mut it = meta.split_whitespace();
    let parse_err = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}"));
    let n: usize = it.next().ok_or_else(|| parse_err("meta"))?.parse().map_err(|_| parse_err("meta"))?;
    let classes: usize =
        it.next().ok_or_else(|| parse_err("meta"))?.parse().map_err(|_| parse_err("meta"))?;
    let dim: usize =
        it.next().ok_or_else(|| parse_err("meta"))?.parse().map_err(|_| parse_err("meta"))?;

    let mut edges = Vec::new();
    for line in fs::read_to_string(dir.join("edges.txt"))?.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = line.split_whitespace();
        let u: usize = p.next().ok_or_else(|| parse_err("edge"))?.parse().map_err(|_| parse_err("edge"))?;
        let v: usize = p.next().ok_or_else(|| parse_err("edge"))?.parse().map_err(|_| parse_err("edge"))?;
        edges.push((u, v));
    }

    let feats_text = fs::read_to_string(dir.join("features.txt"))?;
    let features = if feats_text.trim_start().starts_with("identity") {
        DenseMatrix::identity(n)
    } else {
        let mut x = DenseMatrix::zeros(n, dim);
        for (v, line) in feats_text.lines().enumerate().take(n) {
            for tok in line.split_whitespace() {
                let j: usize = tok.parse().map_err(|_| parse_err("feature"))?;
                x.set(v, j, 1.0);
            }
        }
        x
    };

    let labels: Vec<usize> = fs::read_to_string(dir.join("labels.txt"))?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().map_err(|_| parse_err("label")))
        .collect::<io::Result<_>>()?;

    let split_text = fs::read_to_string(dir.join("split.txt"))?;
    let mut sets = split_text.lines().map(|line| {
        line.split_whitespace()
            .map(|t| t.parse::<usize>().map_err(|_| parse_err("split")))
            .collect::<io::Result<Vec<usize>>>()
    });
    let train = sets.next().transpose()?.unwrap_or_default();
    let valid = sets.next().transpose()?.unwrap_or_default();
    let test = sets.next().transpose()?.unwrap_or_default();

    Ok(Graph::new(n, &edges, features, labels, classes, Split { train, valid, test }))
}

fn is_identity(m: &DenseMatrix) -> bool {
    if m.rows() != m.cols() {
        return false;
    }
    for i in 0..m.rows() {
        for (j, &v) in m.row(i).iter().enumerate() {
            if (i == j && v != 1.0) || (i != j && v != 0.0) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = DatasetSpec::CoraLike.generate(0.05, 9);
        let dir = std::env::temp_dir().join("bbgnn_io_roundtrip");
        save(&g, &dir).unwrap();
        let h = load(&dir).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.labels, h.labels);
        assert_eq!(g.features, h.features);
        assert_eq!(g.split.train, h.split.train);
        assert_eq!(g.split.test, h.split.test);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrip_identity_features() {
        let g = DatasetSpec::PolblogsLike.generate(0.05, 9);
        let dir = std::env::temp_dir().join("bbgnn_io_roundtrip_id");
        save(&g, &dir).unwrap();
        let h = load(&dir).unwrap();
        assert_eq!(g.features, h.features);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/bbgnn")).is_err());
    }
}
