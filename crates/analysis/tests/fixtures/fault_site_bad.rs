//! Fixture: a fault_at site literal outside the §11 catalog fires.

pub fn load() -> bool {
    bbgnn_supervise::fault_at("fault/bogus_site").is_some()
}
