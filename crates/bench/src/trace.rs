//! Trace aggregation: turns a `BBGNN_TRACE` JSONL file into tables.
//!
//! The obs layer (`bbgnn_obs`, DESIGN.md §8) writes one JSON object per
//! line: span `open`/`close` pairs, point-in-time `ev` records, and `ctr`
//! aggregates. This module parses and **validates** a trace (every line
//! must parse; every span must balance) and reduces it to:
//!
//! * per-span-name **total/self wall time** (self = total minus the time
//!   spent in child spans on the same thread lineage);
//! * **counter totals** summed across threads, and per-kernel call/time
//!   aggregates;
//! * the **per-epoch training timeline** (`train/epoch` events) as CSV.
//!
//! The `trace_report` binary is a thin CLI over [`read_trace`] +
//! [`TraceSummary`]'s renderers.

use crate::json::Json;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Wall-time aggregate for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Span name (e.g. `train/fit`, `bench/cell`).
    pub name: String,
    /// How many spans of this name closed.
    pub count: usize,
    /// Sum of close−open microseconds over all spans of this name.
    pub total_us: u64,
    /// Total minus time attributed to child spans.
    pub self_us: u64,
}

/// Summed total for one monotone counter.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterStat {
    /// Counter name (e.g. `attack/edge_flips`).
    pub name: String,
    /// Sum of `add` across all threads and drains.
    pub total: u64,
}

/// Aggregate for one kernel timer.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStat {
    /// Kernel name (e.g. `kernel/matmul`).
    pub name: String,
    /// Total invocation count.
    pub calls: u64,
    /// Total wall nanoseconds across all invocations.
    pub ns: u64,
}

/// One `train/epoch` event, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Training loss (NaN when the record held `null`).
    pub loss: f64,
    /// Global gradient L2 norm.
    pub grad_norm: f64,
    /// Training-split accuracy.
    pub train_acc: f64,
    /// Validation-split accuracy.
    pub val_acc: f64,
}

/// A parsed, validated, aggregated trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total records (lines) in the trace.
    pub records: usize,
    /// Event record count.
    pub events: usize,
    /// Per-span-name wall-time aggregates, largest total first.
    pub spans: Vec<SpanStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Kernel timer aggregates, sorted by name.
    pub kernels: Vec<KernelStat>,
    /// The per-epoch training timeline, in trace order.
    pub epochs: Vec<EpochRow>,
}

/// A still-open span while scanning the trace.
struct OpenSpan {
    name: String,
    parent: u64,
    open_us: u64,
    child_us: u64,
}

fn get_u64(obj: &BTreeMap<String, Json>, key: &str) -> Option<u64> {
    match obj.get(key)? {
        Json::Number(n) => n.parse().ok(),
        _ => None,
    }
}

fn get_f64(obj: &BTreeMap<String, Json>, key: &str) -> f64 {
    match obj.get(key) {
        Some(Json::Number(n)) => n.parse().unwrap_or(f64::NAN),
        // NaN/inf fields serialize as null (JSON has no non-finite numbers).
        _ => f64::NAN,
    }
}

/// Parses and validates a JSONL trace, aggregating it into a
/// [`TraceSummary`]. Errors name the first offending line (1-based):
/// unparseable JSON, a non-object record, a record without a known `t`
/// tag, a `close` without a matching `open`, a counter or kernel-timer
/// name outside the DESIGN.md §8 taxonomy, or spans left open at EOF.
pub fn parse_trace(text: &str) -> Result<TraceSummary, String> {
    // The same taxonomy bbgnn-lint enforces statically, applied here to
    // names that only materialize at runtime (dynamic counter names are
    // invisible to the lexical pass).
    let tax = bbgnn_analysis::taxonomy::builtin()?;
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut span_stats: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut kernels: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut summary = TraceSummary::default();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("line {lineno}: record is not a JSON object"))?;
        summary.records += 1;
        let tag = obj
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: record has no \"t\" tag"))?;
        match tag {
            "open" => {
                let id = get_u64(obj, "id")
                    .ok_or_else(|| format!("line {lineno}: open record has no id"))?;
                let name = obj
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: open record has no name"))?;
                if open.contains_key(&id) {
                    return Err(format!("line {lineno}: span id {id} opened twice"));
                }
                open.insert(
                    id,
                    OpenSpan {
                        name: name.to_string(),
                        parent: get_u64(obj, "par").unwrap_or(0),
                        open_us: get_u64(obj, "us").unwrap_or(0),
                        child_us: 0,
                    },
                );
            }
            "close" => {
                let id = get_u64(obj, "id")
                    .ok_or_else(|| format!("line {lineno}: close record has no id"))?;
                let span = open
                    .remove(&id)
                    .ok_or_else(|| format!("line {lineno}: close of span {id} that is not open"))?;
                let close_us = get_u64(obj, "us").unwrap_or(span.open_us);
                let total = close_us.saturating_sub(span.open_us);
                if let Some(parent) = open.get_mut(&span.parent) {
                    parent.child_us += total;
                }
                let stat = span_stats.entry(span.name.clone()).or_insert(SpanStat {
                    name: span.name,
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                });
                stat.count += 1;
                stat.total_us += total;
                stat.self_us += total.saturating_sub(span.child_us);
            }
            "ev" => {
                summary.events += 1;
                let name = obj.get("name").and_then(Json::as_str).unwrap_or("");
                if name == "train/epoch" {
                    if let Some(Json::Object(f)) = obj.get("f") {
                        summary.epochs.push(EpochRow {
                            epoch: get_u64(f, "epoch").unwrap_or(0),
                            loss: get_f64(f, "loss"),
                            grad_norm: get_f64(f, "grad_norm"),
                            train_acc: get_f64(f, "train_acc"),
                            val_acc: get_f64(f, "val_acc"),
                        });
                    }
                }
            }
            "ctr" => {
                let name = obj
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: ctr record has no name"))?
                    .to_string();
                if let Some(add) = get_u64(obj, "add") {
                    if !tax.counter_ok(&name) {
                        return Err(format!(
                            "line {lineno}: counter {name:?} is not in the DESIGN.md §8 \
                             taxonomy — add it to the doc's bullet list or fix the name"
                        ));
                    }
                    *counters.entry(name).or_insert(0) += add;
                } else {
                    if !tax.kernel_ok(&name) {
                        return Err(format!(
                            "line {lineno}: kernel timer {name:?} is not in the DESIGN.md §8 \
                             taxonomy — add it to the doc's bullet list or fix the name"
                        ));
                    }
                    let e = kernels.entry(name).or_insert((0, 0));
                    e.0 += get_u64(obj, "calls").unwrap_or(0);
                    e.1 += get_u64(obj, "ns").unwrap_or(0);
                }
            }
            other => return Err(format!("line {lineno}: unknown record tag {other:?}")),
        }
    }

    if !open.is_empty() {
        let mut names: Vec<&str> = open.values().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        return Err(format!(
            "{} span(s) never closed: {}",
            open.len(),
            names.join(", ")
        ));
    }

    summary.spans = span_stats.into_values().collect();
    summary
        .spans
        .sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    summary.counters = counters
        .into_iter()
        .map(|(name, total)| CounterStat { name, total })
        .collect();
    summary.kernels = kernels
        .into_iter()
        .map(|(name, (calls, ns))| KernelStat { name, calls, ns })
        .collect();
    Ok(summary)
}

/// Reads and aggregates the trace file at `path` (see [`parse_trace`]).
pub fn read_trace(path: &str) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace(&text)
}

fn ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1000.0)
}

impl TraceSummary {
    /// Fixed-width per-span-name table: count, total ms, self ms —
    /// largest total first.
    pub fn span_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12}",
            "span", "count", "total_ms", "self_ms"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12} {:>12}",
                s.name,
                s.count,
                ms(s.total_us),
                ms(s.self_us)
            );
        }
        out
    }

    /// Counter totals and kernel aggregates as a fixed-width table.
    pub fn counter_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>14}", "counter", "total");
        for c in &self.counters {
            let _ = writeln!(out, "{:<28} {:>14}", c.name, c.total);
        }
        let _ = writeln!(out, "{:<28} {:>14} {:>12}", "kernel", "calls", "ms");
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>12}",
                k.name,
                k.calls,
                ms(k.ns / 1000)
            );
        }
        out
    }

    /// The training timeline as CSV
    /// (`epoch,loss,grad_norm,train_acc,val_acc`; NaN prints as `nan`).
    pub fn epoch_csv(&self) -> String {
        let mut out = String::from("epoch,loss,grad_norm,train_acc,val_acc\n");
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                e.epoch, e.loss, e.grad_norm, e.train_acc, e.val_acc
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"t":"open","id":1,"par":0,"tid":1,"us":0,"name":"bench/cell","f":{"key":"cora"}}
{"t":"open","id":2,"par":1,"tid":1,"us":100,"name":"train/fit"}
{"t":"ev","name":"train/epoch","span":2,"tid":1,"us":150,"f":{"epoch":0,"loss":1.9,"grad_norm":0.4,"train_acc":0.3,"val_acc":0.25}}
{"t":"ev","name":"train/epoch","span":2,"tid":1,"us":220,"f":{"epoch":1,"loss":1.2,"grad_norm":null,"train_acc":0.6,"val_acc":0.5}}
{"t":"close","id":2,"tid":1,"us":400}
{"t":"ctr","name":"train/epochs","tid":1,"add":2}
{"t":"ctr","name":"kernel/matmul","tid":1,"calls":10,"ns":5000000}
{"t":"close","id":1,"tid":1,"us":1000}
"#;

    #[test]
    fn aggregates_spans_counters_and_epochs() {
        let s = parse_trace(GOOD).unwrap();
        assert_eq!(s.records, 8);
        assert_eq!(s.events, 2);
        // bench/cell: total 1000, self 1000-300=700; train/fit: 300/300.
        assert_eq!(s.spans[0].name, "bench/cell");
        assert_eq!(s.spans[0].total_us, 1000);
        assert_eq!(s.spans[0].self_us, 700);
        let fit = s.spans.iter().find(|x| x.name == "train/fit").unwrap();
        assert_eq!((fit.count, fit.total_us, fit.self_us), (1, 300, 300));
        assert_eq!(
            s.counters,
            vec![CounterStat {
                name: "train/epochs".into(),
                total: 2
            }]
        );
        assert_eq!(s.kernels[0].calls, 10);
        assert_eq!(s.epochs.len(), 2);
        assert_eq!(s.epochs[1].epoch, 1);
        assert!(s.epochs[1].grad_norm.is_nan(), "null field must read NaN");
    }

    #[test]
    fn renders_tables_and_csv() {
        let s = parse_trace(GOOD).unwrap();
        let spans = s.span_table();
        assert!(spans.contains("bench/cell"));
        assert!(spans.contains("0.700"), "self ms missing: {spans}");
        assert!(s.counter_table().contains("kernel/matmul"));
        let csv = s.epoch_csv();
        assert!(csv.starts_with("epoch,loss,grad_norm,train_acc,val_acc\n"));
        assert!(csv.contains("1,1.2,NaN,0.6,0.5"));
    }

    #[test]
    fn invalid_json_names_the_line() {
        let text =
            "{\"t\":\"open\",\"id\":1,\"par\":0,\"tid\":1,\"us\":0,\"name\":\"a\"}\nnot json\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        // Open without close.
        let err = parse_trace(
            "{\"t\":\"open\",\"id\":1,\"par\":0,\"tid\":1,\"us\":0,\"name\":\"leak\"}\n",
        )
        .unwrap_err();
        assert!(
            err.contains("never closed") && err.contains("leak"),
            "{err}"
        );
        // Close without open.
        let err = parse_trace("{\"t\":\"close\",\"id\":9,\"tid\":1,\"us\":5}\n").unwrap_err();
        assert!(err.contains("not open"), "{err}");
        // Duplicate open of the same id.
        let text = "{\"t\":\"open\",\"id\":1,\"par\":0,\"tid\":1,\"us\":0,\"name\":\"a\"}\n\
                    {\"t\":\"open\",\"id\":1,\"par\":0,\"tid\":1,\"us\":1,\"name\":\"b\"}\n";
        assert!(parse_trace(text).unwrap_err().contains("opened twice"));
    }

    #[test]
    fn counter_names_outside_the_taxonomy_are_rejected() {
        let err = parse_trace("{\"t\":\"ctr\",\"name\":\"train/epochz\",\"tid\":1,\"add\":2}\n")
            .unwrap_err();
        assert!(
            err.starts_with("line 1:") && err.contains("train/epochz") && err.contains("taxonomy"),
            "{err}"
        );
        let err = parse_trace(
            "{\"t\":\"ctr\",\"name\":\"kernel/gemm\",\"tid\":1,\"calls\":1,\"ns\":10}\n",
        )
        .unwrap_err();
        assert!(
            err.contains("kernel timer") && err.contains("kernel/gemm"),
            "{err}"
        );
    }

    #[test]
    fn unknown_tag_is_rejected_and_blank_lines_are_skipped() {
        assert!(parse_trace("\n\n").unwrap().records == 0);
        let err = parse_trace("{\"t\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown record tag"), "{err}");
    }

    #[test]
    fn real_obs_output_parses_and_balances() {
        // End-to-end against the actual obs writer, not a hand-typed
        // facsimile of the schema.
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        bbgnn_obs::init_to_writer(Box::new(buf.clone()));
        {
            let _outer = bbgnn_obs::span!("trace/e2e_outer", key = "t/x", attempt = 0usize);
            let _inner = bbgnn_obs::span!("train/fit");
            bbgnn_obs::event!("train/epoch", epoch = 0usize, loss = 0.7);
            bbgnn_obs::counter("train/epochs", 1);
        }
        bbgnn_obs::shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // The obs sink is process-global: concurrently running tests (e.g.
        // the fault-runner ones) may interleave their own records while
        // tracing is on. Keep only this thread's lines — tids are unique
        // per thread, and obs writes each line atomically.
        let marker = text
            .lines()
            .find(|l| l.contains("trace/e2e_outer"))
            .expect("our span must be in the capture");
        let tid_field = marker
            .split("\"tid\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .expect("open record carries a tid");
        let tid = format!("\"tid\":{tid_field},");
        let ours: String =
            text.lines()
                .filter(|l| l.contains(&tid))
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let s = parse_trace(&ours).unwrap();
        assert_eq!(s.spans.iter().map(|x| x.count).sum::<usize>(), 2);
        assert_eq!(s.epochs.len(), 1);
        assert_eq!(s.counters[0].total, 1);
    }
}
