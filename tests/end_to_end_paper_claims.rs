//! End-to-end checks of the paper's headline claims, in miniature.
//!
//! Each test reproduces the *shape* of one claim from the evaluation
//! section on a laptop-scale calibrated dataset — who wins, not the exact
//! percentages.

use bbgnn::prelude::*;

fn cora(seed: u64) -> Graph {
    DatasetSpec::CoraLike.generate(0.08, seed)
}

fn gcn_accuracy_on(g: &Graph, seed: u64) -> f64 {
    let mut gcn = Gcn::paper_default(TrainConfig {
        seed,
        ..TrainConfig::fast_test()
    });
    gcn.fit(g);
    gcn.test_accuracy(g)
}

/// Tables IV–VI, PEEGA row: the black-box PEEGA beats the black-box
/// GF-Attack despite identical inputs. Like the paper's tables, the
/// comparison averages repeated runs (here: graph seeds) — single runs on
/// laptop-scale graphs are noisy.
#[test]
fn peega_outperforms_gfattack() {
    let mut acc_peega = 0.0;
    let mut acc_gf = 0.0;
    let seeds = [301u64, 311, 321];
    for &seed in &seeds {
        let g = cora(seed);
        let mut peega = Peega::new(PeegaConfig {
            rate: 0.15,
            ..Default::default()
        });
        let mut gf = GfAttack::new(GfAttackConfig {
            rate: 0.15,
            ..GfAttackConfig::fast()
        });
        acc_peega += gcn_accuracy_on(&peega.attack(&g).poisoned, 0);
        acc_gf += gcn_accuracy_on(&gf.attack(&g).poisoned, 0);
    }
    acc_peega /= seeds.len() as f64;
    acc_gf /= seeds.len() as f64;
    assert!(
        acc_peega < acc_gf - 0.02,
        "PEEGA ({acc_peega}) must degrade GCN clearly more than GF-Attack ({acc_gf})"
    );
}

/// Table VII: PEEGA's single-level greedy is faster than Metattack's
/// repeated surrogate retraining at the same budget.
#[test]
fn peega_is_faster_than_metattack() {
    let g = cora(302);
    let mut peega = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let mut meta = Metattack::new(MetattackConfig {
        rate: 0.1,
        ..Default::default()
    });
    let t_peega = peega.attack(&g).elapsed;
    let t_meta = meta.attack(&g).elapsed;
    assert!(
        t_peega < t_meta,
        "PEEGA ({t_peega:?}) must be faster than per-step-retrained Metattack ({t_meta:?})"
    );
}

/// Fig. 2 / Sec. IV-A: effective attackers predominantly ADD edges between
/// nodes with DIFFERENT labels.
#[test]
fn attackers_blur_context_with_cross_label_additions() {
    let g = cora(303);
    for kind in [
        AttackerKind::Peega(PeegaConfig {
            rate: 0.1,
            ..Default::default()
        }),
        AttackerKind::Metattack(MetattackConfig {
            rate: 0.1,
            retrain_every: 5,
            ..Default::default()
        }),
    ] {
        let mut attacker = kind.build();
        let poisoned = attacker.attack(&g).poisoned;
        let d = edge_diff_breakdown(&g, &poisoned);
        assert!(
            d.add_diff > d.add_same && d.add_diff >= d.del_same && d.add_diff >= d.del_diff,
            "{}: Add+Diff must dominate, got {:?}",
            kind.name(),
            d
        );
    }
}

/// Fig. 3: the poisoned graph's inter-label neighborhood similarity rises
/// with the perturbation rate while accuracy falls.
#[test]
fn inter_label_similarity_rises_under_attack() {
    let g = cora(304);
    let (_, inter_clean) = intra_inter_similarity(&cross_label_similarity(&g));

    let mut meta = Metattack::new(MetattackConfig {
        rate: 0.25,
        retrain_every: 10,
        ..Default::default()
    });
    let poisoned = meta.attack(&g).poisoned;
    let (_, inter_poisoned) = intra_inter_similarity(&cross_label_similarity(&poisoned));
    // Single GCN fits are noisy at this scale; average a few seeds like
    // the paper's repeated-run tables.
    let acc_poisoned = (0..3).map(|s| gcn_accuracy_on(&poisoned, s)).sum::<f64>() / 3.0;
    let acc_clean = (0..3).map(|s| gcn_accuracy_on(&g, s)).sum::<f64>() / 3.0;

    assert!(
        inter_poisoned > inter_clean,
        "inter-label similarity must rise: {inter_clean} -> {inter_poisoned}"
    );
    assert!(
        acc_poisoned < acc_clean,
        "accuracy must fall: {acc_clean} -> {acc_poisoned}"
    );
}

/// Tables IV–V, GNAT column: GNAT beats the raw GCN on the clean graph AND
/// on the PEEGA-poisoned graph.
#[test]
fn gnat_beats_gcn_clean_and_poisoned() {
    let g = cora(305);
    let mut peega = Peega::new(PeegaConfig {
        rate: 0.2,
        ..Default::default()
    });
    let poisoned = peega.attack(&g).poisoned;

    for (graph, label) in [(&g, "clean"), (&poisoned, "poisoned")] {
        let gcn_acc = gcn_accuracy_on(graph, 2);
        let mut gnat = Gnat::new(GnatConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        gnat.fit(graph);
        let gnat_acc = gnat.test_accuracy(graph);
        assert!(
            gnat_acc > gcn_acc - 0.01,
            "{label}: GNAT ({gnat_acc}) must not lose to GCN ({gcn_acc})"
        );
    }
}

/// Table VIII: GNAT costs only a small constant over raw GCN training,
/// while Pro-GNN is at least an order of magnitude slower.
#[test]
fn defender_training_time_ordering() {
    let g = cora(306);
    let cfg = TrainConfig {
        epochs: 50,
        patience: 0,
        dropout: 0.0,
        ..Default::default()
    };

    let mut gcn = Gcn::paper_default(cfg.clone());
    let t_gcn = gcn.fit(&g).seconds;

    let mut gnat = Gnat::new(GnatConfig {
        train: cfg.clone(),
        ..Default::default()
    });
    let t_gnat = gnat.fit(&g).seconds;

    let mut prognn = ProGnn::new(ProGnnConfig {
        outer_epochs: 10,
        inner_epochs: 5,
        train: cfg,
        ..Default::default()
    });
    let start = std::time::Instant::now();
    prognn.fit(&g);
    let t_prognn = start.elapsed().as_secs_f64();

    assert!(
        t_gnat < 8.0 * t_gcn,
        "GNAT ({t_gnat:.2}s) must stay within a small factor of GCN ({t_gcn:.2}s)"
    );
    assert!(
        t_prognn > t_gnat,
        "Pro-GNN ({t_prognn:.2}s) must be slower than GNAT ({t_gnat:.2}s)"
    );
}

/// Table IX: multi-view GNAT (t+f+e) beats each single view, and the
/// multi-graph variant beats the merged variant.
#[test]
fn gnat_ablation_orderings() {
    let g = cora(307);
    let mut peega = Peega::new(PeegaConfig {
        rate: 0.15,
        ..Default::default()
    });
    let poisoned = peega.attack(&g).poisoned;

    let acc_of = |views: Vec<View>, merged: bool| {
        let mut gnat = Gnat::new(GnatConfig {
            views,
            merged,
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        gnat.fit(&poisoned);
        gnat.test_accuracy(&poisoned)
    };
    let full = acc_of(vec![View::Topology, View::Feature, View::Ego], false);
    let single_e = acc_of(vec![View::Ego], false);
    assert!(
        full > single_e - 0.02,
        "t+f+e ({full}) should not lose clearly to the ego view alone ({single_e})"
    );
}
