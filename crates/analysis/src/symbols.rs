//! The workspace **symbol graph**: every fn and struct the item parser
//! ([`crate::parse`]) recovers, indexed for cross-file queries, plus the
//! approximate call-edge resolution the flow rules ([`crate::flow`]) walk.
//!
//! Resolution is **by name, narrowed by qualifier** — there is no type
//! inference. `helper(x)` resolves to every workspace fn named `helper`;
//! `kernels::matmul_into(..)` narrows to fns whose file stem, crate, or
//! impl type matches `kernels`; `m.fit(..)` prefers impl methods. When a
//! qualifier matches nothing (an external crate, a type alias), the
//! narrowing is dropped and *all* same-name candidates stand — the graph
//! over-approximates rather than silently losing edges, which is the
//! conservative direction for `check_site` (a spurious edge can be
//! waived; a missing edge hides a real unsupervised loop). The documented
//! approximations live in DESIGN.md §9.

use crate::lexer::Lexed;
use crate::parse::{parse_file, Call, FnItem, StructItem};
use crate::rules::{classify, FileInfo};
use std::collections::BTreeMap;

/// The identifiers that count as a supervision check (DESIGN.md §11):
/// the `StopHandle` queries, the `Job::stop_now` wrapper, plus
/// `supervise::check` / `bbgnn_supervise::check` and the scoped form
/// `scope.check(..)` on a [`SupervisionScope`] handle.
pub const CHECK_CALL_IDENTS: [&str; 4] =
    ["stop_reason", "should_stop", "cancel_requested", "stop_now"];

/// One analyzed file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative, forward-slash path.
    pub rel: String,
    pub info: FileInfo,
}

/// One fn in the graph: the parsed item plus derived flags.
#[derive(Debug)]
pub struct FnSym {
    /// Index into [`Model::files`].
    pub file: usize,
    pub item: FnItem,
    /// True if the body makes a supervision-check call (§11).
    pub has_check: bool,
}

/// One struct in the graph.
#[derive(Debug)]
pub struct StructSym {
    /// Index into [`Model::files`].
    pub file: usize,
    pub item: StructItem,
}

/// The workspace symbol graph.
#[derive(Debug, Default)]
pub struct Model {
    pub files: Vec<FileModel>,
    pub fns: Vec<FnSym>,
    pub structs: Vec<StructSym>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// True if `c` is a supervision check per §11.
pub fn is_check_call(c: &Call) -> bool {
    if c.is_macro {
        return false;
    }
    match c.name.as_str() {
        "stop_reason" | "should_stop" | "cancel_requested" | "stop_now" => true,
        "check" => matches!(
            c.qualifier.as_deref(),
            Some("supervise") | Some("bbgnn_supervise") | Some("scope")
        ),
        _ => false,
    }
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

impl Model {
    /// Builds the graph from lexed files. `files` pairs each
    /// workspace-relative path with its token stream; the returned model's
    /// file indices align with the slice.
    pub fn build(files: &[(String, Lexed)]) -> Model {
        let mut m = Model::default();
        for (rel, lx) in files {
            let file_idx = m.files.len();
            let parsed = parse_file(lx);
            m.files.push(FileModel {
                rel: rel.clone(),
                info: classify(rel),
            });
            for item in parsed.fns {
                let has_check = item.calls.iter().any(is_check_call);
                let idx = m.fns.len();
                m.by_name.entry(item.name.clone()).or_default().push(idx);
                m.fns.push(FnSym {
                    file: file_idx,
                    item,
                    has_check,
                });
            }
            for item in parsed.structs {
                m.structs.push(StructSym {
                    file: file_idx,
                    item,
                });
            }
        }
        m
    }

    /// All fns with this bare name, in build order.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves one call from `caller` to candidate fn indices — the
    /// approximate call-edge set. Empty when the name is unknown to the
    /// workspace (std, vendored, or macro-generated code).
    pub fn resolve(&self, caller: usize, call: &Call) -> Vec<usize> {
        if call.is_macro {
            return Vec::new();
        }
        let caller_in_test = self.fns[caller].item.in_test;
        let mut cands: Vec<usize> = self
            .fns_named(&call.name)
            .iter()
            .copied()
            // Shipped code never calls #[cfg(test)] fns.
            .filter(|&i| caller_in_test || !self.fns[i].item.in_test)
            .collect();
        if cands.is_empty() {
            return cands;
        }
        if let Some(q) = &call.qualifier {
            // `Self::f()` means the caller's own impl type.
            let q: &str = if q == "Self" {
                match self.fns[caller].item.impl_type.as_deref() {
                    Some(t) => t,
                    None => q,
                }
            } else {
                q
            };
            let q_crate = q.strip_prefix("bbgnn_").unwrap_or(q);
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &self.fns[i];
                    let file = &self.files[f.file];
                    f.item.impl_type.as_deref() == Some(q)
                        || file_stem(&file.rel) == q
                        || file.info.krate.as_deref() == Some(q_crate)
                })
                .collect();
            if !narrowed.is_empty() {
                cands = narrowed;
            }
        } else if call.is_method {
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].item.impl_type.is_some())
                .collect();
            if !methods.is_empty() {
                cands = methods;
            }
        }
        cands
    }

    /// Strict, **evidence-based** call-edge resolution, used by the
    /// `check_site` traversal. Where [`Model::resolve`] over-approximates
    /// (unresolvable qualifier → all same-name candidates), this variant
    /// demands positive evidence and otherwise returns no edge:
    ///
    /// * a qualified call binds only to fns its qualifier actually
    ///   narrows to (`mem::take` matches nothing in the workspace — no
    ///   edge, instead of every fn named `take`);
    /// * an unqualified method call binds only to impl fns whose self
    ///   type is *visible at the caller* — the caller's own impl type, a
    ///   signature type, or a type named in the body. `self.skip_ws()`
    ///   stays inside the impl; `v.get(i)` on a `Vec` does not leak to
    ///   some workspace type's `get`;
    /// * a bare call binds only to free fns (bare paths cannot invoke
    ///   methods).
    ///
    /// The trade-off is deliberate and documented (DESIGN.md §9): strict
    /// edges can *miss* a path (a method on a field whose type is never
    /// named locally), so `check_site` is not complete — but every edge
    /// it does walk is defensible, which keeps findings actionable
    /// instead of drowning real §11 holes in `.get()` noise.
    pub fn resolve_strict(&self, caller: usize, call: &Call) -> Vec<usize> {
        if call.is_macro {
            return Vec::new();
        }
        let cf = &self.fns[caller].item;
        let caller_in_test = cf.in_test;
        let caller_impl = cf.impl_type.clone();
        let cands = self
            .fns_named(&call.name)
            .iter()
            .copied()
            .filter(|&i| caller_in_test || !self.fns[i].item.in_test);
        if let Some(q) = &call.qualifier {
            let q: &str = if q == "Self" {
                caller_impl.as_deref().unwrap_or(q)
            } else {
                q
            };
            let q_crate = q.strip_prefix("bbgnn_").unwrap_or(q);
            return cands
                .filter(|&i| {
                    let f = &self.fns[i];
                    let file = &self.files[f.file];
                    f.item.impl_type.as_deref() == Some(q)
                        || file_stem(&file.rel) == q
                        || file.info.krate.as_deref() == Some(q_crate)
                })
                .collect();
        }
        if call.is_method {
            let cf = &self.fns[caller].item;
            return cands
                .filter(|&i| {
                    let Some(t) = self.fns[i].item.impl_type.as_deref() else {
                        return false;
                    };
                    caller_impl.as_deref() == Some(t)
                        || cf.sig_idents.iter().any(|s| s == t)
                        || cf.mentions(t)
                })
                .collect();
        }
        cands
            .filter(|&i| self.fns[i].item.impl_type.is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(files: &[(&str, &str)]) -> Model {
        let files: Vec<(String, Lexed)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        Model::build(&files)
    }

    #[test]
    fn name_resolution_narrows_by_qualifier_and_falls_back() {
        let m = model(&[
            (
                "crates/linalg/src/kernels.rs",
                "pub fn run(ws: &mut W) { inner(ws); }\npub fn inner(_: &mut W) {}",
            ),
            (
                "crates/attack/src/peega.rs",
                "pub fn inner(_: u32) {}\n\
                 pub fn go() { kernels::inner(1); inner(2); external::missing(); }",
            ),
        ]);
        let go = m.fns_named("go")[0];
        let calls = &m.fns[go].item.calls;
        // Qualified: narrowed to the kernels.rs candidate.
        let r0 = m.resolve(go, &calls[0]);
        assert_eq!(r0.len(), 1);
        assert_eq!(
            m.files[m.fns[r0[0]].file].rel,
            "crates/linalg/src/kernels.rs"
        );
        // Unqualified: both `inner`s stand (over-approximation).
        assert_eq!(m.resolve(go, &calls[1]).len(), 2);
        // Unknown name: no edge.
        assert!(m.resolve(go, &calls[2]).is_empty());
    }

    #[test]
    fn method_calls_prefer_impl_fns_and_self_resolves() {
        let m = model(&[(
            "crates/gnn/src/gcn.rs",
            "pub fn fit() {}\n\
             impl Gcn {\n\
               pub fn fit(&self) { Self::helper(); }\n\
               fn helper() {}\n\
               pub fn drive(&self, g: &Gcn) { g.fit(); }\n\
             }",
        )]);
        let drive = m.fns_named("drive")[0];
        let call = &m.fns[drive].item.calls[0];
        let r = m.resolve(drive, call);
        assert_eq!(r.len(), 1, "method call prefers the impl fn");
        assert_eq!(m.fns[r[0]].item.qual, "Gcn::fit");
        let fit = r[0];
        let helper = m.resolve(fit, &m.fns[fit].item.calls[0]);
        assert_eq!(m.fns[helper[0]].item.qual, "Gcn::helper");
    }

    #[test]
    fn check_calls_are_detected() {
        let m = model(&[(
            "crates/gnn/src/train.rs",
            "pub fn train_loop(h: &H) { for _ in 0..9 { if let Some(r) = h.stop_reason() { return; } } }\n\
             pub fn quiet() { step(); }",
        )]);
        assert!(m.fns[m.fns_named("train_loop")[0]].has_check);
        assert!(!m.fns[m.fns_named("quiet")[0]].has_check);
    }

    #[test]
    fn test_fns_are_invisible_to_shipped_callers() {
        let m = model(&[(
            "crates/attack/src/dice.rs",
            "#[cfg(test)]\nmod t { pub fn helper() {} }\n\
             pub fn shipped() { helper(); }",
        )]);
        let shipped = m.fns_named("shipped")[0];
        assert!(m.resolve(shipped, &m.fns[shipped].item.calls[0]).is_empty());
    }
}
