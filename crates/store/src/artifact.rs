//! Codecs: one [`Artifact`] implementation per cached value type.
//!
//! Tags are append-only: a new codec takes the next free tag, existing
//! tags are never reused or renumbered (a tag mismatch on read is a
//! decode error, and [`FORMAT_VERSION`](crate::format::FORMAT_VERSION)
//! bumps cover layout changes inside a codec).

use crate::format::{Artifact, Reader, Writer};
use bbgnn_linalg::{CsrMatrix, DenseMatrix};

impl Artifact for DenseMatrix {
    const TAG: u8 = 1;
    const KIND: &'static str = "dense";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.rows());
        w.usize(self.cols());
        w.f64s(self.as_slice());
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        let rows = r.usize()?;
        let cols = r.usize()?;
        let data = r.f64s()?;
        if data.len() != rows * cols {
            return Err(format!(
                "dense payload has {} entries for a {rows}x{cols} matrix",
                data.len()
            ));
        }
        Ok(DenseMatrix::from_vec(rows, cols, data))
    }
}

impl Artifact for CsrMatrix {
    const TAG: u8 = 2;
    const KIND: &'static str = "csr";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.rows());
        w.usize(self.cols());
        w.usizes(self.row_ptr());
        w.usizes(self.col_indices());
        w.f64s(self.values());
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        let rows = r.usize()?;
        let cols = r.usize()?;
        let row_ptr = r.usizes()?;
        let col_idx = r.usizes()?;
        let values = r.f64s()?;
        CsrMatrix::try_from_raw_parts(rows, cols, row_ptr, col_idx, values)
    }
}

/// Training summary persisted alongside cached model weights, mirroring
/// `bbgnn_gnn::TrainReport` field-for-field. Declared here (rather than
/// depending on the gnn crate) so the store stays at the bottom of the
/// dependency graph; `bbgnn-gnn` converts both ways.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelReport {
    /// Epochs actually executed by the original (cold) training run.
    pub epochs_run: usize,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Final training loss.
    pub final_loss: f64,
    /// Wall-clock seconds of the original run (a hit reports the cost it
    /// saved, not the near-zero load time).
    pub seconds: f64,
    /// Divergence recoveries performed during the original run.
    pub divergence_recoveries: usize,
    /// Whether the original run aborted with the recovery budget spent.
    pub diverged: bool,
}

/// A trained model: parameter matrices in layer order plus the training
/// report of the run that produced them.
#[derive(Clone, Debug)]
pub struct TrainedModel {
    /// Parameter matrices, in the exact order the model's `fit` built them.
    pub weights: Vec<DenseMatrix>,
    /// Report of the original training run.
    pub report: ModelReport,
}

impl Artifact for TrainedModel {
    const TAG: u8 = 3;
    const KIND: &'static str = "model";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.weights.len());
        for m in &self.weights {
            m.encode(w);
        }
        w.usize(self.report.epochs_run);
        w.f64(self.report.best_val_accuracy);
        w.f64(self.report.final_loss);
        w.f64(self.report.seconds);
        w.usize(self.report.divergence_recoveries);
        w.bool(self.report.diverged);
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        let n = r.len_prefix(8)?;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(DenseMatrix::decode(r)?);
        }
        let report = ModelReport {
            epochs_run: r.usize()?,
            best_val_accuracy: r.f64()?,
            final_loss: r.f64()?,
            seconds: r.f64()?,
            divergence_recoveries: r.usize()?,
            diverged: r.bool()?,
        };
        Ok(TrainedModel { weights, report })
    }
}

/// A truncated SVD factor bundle `U Σ Vᵀ` (GCN-SVD's purification step).
#[derive(Clone, Debug)]
pub struct SvdFactors {
    /// Left singular vectors, `n × k`.
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `m × k`.
    pub v: DenseMatrix,
}

impl Artifact for SvdFactors {
    const TAG: u8 = 4;
    const KIND: &'static str = "svd";

    fn encode(&self, w: &mut Writer) {
        self.u.encode(w);
        w.f64s(&self.sigma);
        self.v.encode(w);
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        Ok(SvdFactors {
            u: DenseMatrix::decode(r)?,
            sigma: r.f64s()?,
            v: DenseMatrix::decode(r)?,
        })
    }
}

/// A top-k eigenpair bundle (GF-Attack's spectral filter inputs).
#[derive(Clone, Debug)]
pub struct EigenFactors {
    /// Eigenvalues, by Lanczos extraction order.
    pub values: Vec<f64>,
    /// Eigenvectors, one column per eigenvalue.
    pub vectors: DenseMatrix,
}

impl Artifact for EigenFactors {
    const TAG: u8 = 5;
    const KIND: &'static str = "eigen";

    fn encode(&self, w: &mut Writer) {
        w.f64s(&self.values);
        self.vectors.encode(w);
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        Ok(EigenFactors {
            values: r.f64s()?,
            vectors: DenseMatrix::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<A: Artifact>(a: &A) -> A {
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = A::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        out
    }

    #[test]
    fn dense_roundtrip_is_bitwise() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, -0.0, f64::NAN, 1e-308, -5.5, 0.1]);
        let back = roundtrip(&m);
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        let bits = |x: &DenseMatrix| x.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&m), bits(&back));
    }

    #[test]
    fn csr_roundtrip_is_bitwise() {
        let m = CsrMatrix::from_triplets(4, 5, [(0, 1, 0.5), (0, 4, -0.0), (3, 2, 1e-30)]);
        let back = roundtrip(&m);
        assert_eq!(m.content_hash(), back.content_hash());
    }

    #[test]
    fn csr_decode_rejects_inconsistent_structure() {
        let mut w = Writer::new();
        w.usize(2); // rows
        w.usize(2); // cols
        w.usizes(&[0, 1]); // row_ptr too short for rows=2
        w.usizes(&[0]);
        w.f64s(&[1.0]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(CsrMatrix::decode(&mut r).is_err());
    }

    #[test]
    fn model_roundtrip_preserves_report() {
        let model = TrainedModel {
            weights: vec![
                DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
                DenseMatrix::from_vec(2, 1, vec![-1.0, 0.5]),
            ],
            report: ModelReport {
                epochs_run: 42,
                best_val_accuracy: 0.815,
                final_loss: 0.33,
                seconds: 1.25,
                divergence_recoveries: 1,
                diverged: false,
            },
        };
        let back = roundtrip(&model);
        assert_eq!(back.weights.len(), 2);
        assert_eq!(back.report, model.report);
        assert_eq!(
            back.weights[1].as_slice(),
            model.weights[1].as_slice(),
            "weights must survive bitwise"
        );
    }

    #[test]
    fn factor_bundles_roundtrip() {
        let svd = SvdFactors {
            u: DenseMatrix::from_vec(2, 1, vec![0.6, 0.8]),
            sigma: vec![3.0, 1.0],
            v: DenseMatrix::from_vec(2, 1, vec![1.0, 0.0]),
        };
        let back = roundtrip(&svd);
        assert_eq!(back.sigma, svd.sigma);
        assert_eq!(back.u.as_slice(), svd.u.as_slice());

        let eig = EigenFactors {
            values: vec![2.5, -0.5],
            vectors: DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
        };
        let back = roundtrip(&eig);
        assert_eq!(back.values, eig.values);
        assert_eq!(back.vectors.as_slice(), eig.vectors.as_slice());
    }
}
