//! Hand-rolled HTTP/1.1 subset: exactly what `bbgnn-serve` needs.
//!
//! The workspace is dependency-free by design (DESIGN.md §0), so the wire
//! layer is written against `std::io` directly. Scope is deliberately
//! narrow — HTTP/1.1 keep-alive with `Content-Length` framing, JSON
//! bodies, and a server-sent-events (SSE) stream for job progress; no
//! chunked transfer, no TLS. The server's clients are `curl` and the CI
//! harness; both speak this subset natively.
//!
//! Request reading is bounded everywhere: the header block is capped at
//! [`MAX_HEAD`] bytes and the body at [`MAX_BODY`] bytes, so a hostile or
//! broken client cannot balloon server memory. Over-long bodies surface
//! as [`ReadError::TooLarge`], which the server maps to `413`. A client
//! that closes (or idles out) between keep-alive requests surfaces as
//! [`ReadError::Closed`], which ends the connection silently.

use std::io::{Read, Write};

/// Header-block cap (request line + headers, including the blank line).
pub const MAX_HEAD: usize = 16 * 1024;
/// Body cap — a [`JobSpec`](bbgnn_scenario::job::JobSpec) is well under a
/// kilobyte; anything near a megabyte is not a job submission.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request: method, path, body, and connection intent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, `DELETE`).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Request body, decoded per `Content-Length`.
    pub body: String,
    /// The client asked to close after this response (`Connection: close`,
    /// or HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The connection ended cleanly before a request line arrived — the
    /// normal end of a keep-alive connection (or an idle timeout). Not an
    /// error to report; just drop the connection.
    Closed,
    /// Syntactically broken request (maps to `400`).
    Malformed(String),
    /// Declared body exceeds [`MAX_BODY`] (maps to `413`).
    TooLarge,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge => write!(f, "request body exceeds {MAX_BODY} bytes"),
        }
    }
}

fn malformed(m: impl Into<String>) -> ReadError {
    ReadError::Malformed(m.into())
}

/// Reads one request from `stream`.
///
/// Generic over `Read` so tests can drive it from a byte slice; the
/// server hands it a `TcpStream` with a read timeout installed. A close
/// or timeout *before any request bytes* is [`ReadError::Closed`] (the
/// connection is done); the same mid-header is `Malformed` (the
/// connection is broken).
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ReadError> {
    // Byte-at-a-time until the blank line. The header block is tiny and
    // read once per request; simplicity beats a buffered scanner that
    // would over-read into the body (or the next pipelined request).
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(malformed("header block too large"));
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            Ok(_) if head.is_empty() => return Err(ReadError::Closed),
            Ok(_) => return Err(malformed("connection closed mid-header")),
            Err(_) if head.is_empty() => return Err(ReadError::Closed),
            Err(e) => return Err(malformed(format!("read: {e}"))),
        }
    }
    let head = String::from_utf8(head).map_err(|_| malformed("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.trim().to_ascii_lowercase());
        }
    }
    let close = match connection.as_deref() {
        Some(tokens) => tokens.split(',').any(|t| t.trim() == "close"),
        // HTTP/1.0 defaults to close; 1.1 defaults to keep-alive.
        None => version == "HTTP/1.0",
    };
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| malformed(format!("body read: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| malformed("body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    })
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete JSON response and flushes. `keep_alive` selects
/// the `Connection` header; the caller closes the stream when it said
/// `close`. Best-effort: a peer that hung up mid-write is its own
/// problem, not the server's.
pub fn write_response<W: Write>(stream: &mut W, status: u16, body: &str, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Starts an SSE response: status line and headers only, no body framing
/// (the stream is terminated by connection close — SSE needs neither
/// `Content-Length` nor chunking for `curl -N` and `EventSource`).
/// Errors propagate so the caller can abandon a hung-up client.
pub fn write_sse_header<W: Write>(stream: &mut W) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE event (`event:` + `data:` + blank line) and flushes.
/// `data` must be a single line — the server feeds it compact JSON.
/// Errors propagate so the caller can stop streaming to a gone client.
pub fn write_sse_event<W: Write>(stream: &mut W, event: &str, data: &str) -> std::io::Result<()> {
    debug_assert!(!data.contains('\n'), "SSE data must be single-line");
    stream.write_all(format!("event: {event}\ndata: {data}\n\n").as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_post_with_body() {
        let r =
            req("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.body, "{\"a\":1}");
        assert!(!r.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_bodyless_get_and_case_insensitive_length() {
        let r = req("GET /jobs/3 HTTP/1.1\r\ncontent-length: 0\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/jobs/3"));
        assert_eq!(r.body, "");
    }

    #[test]
    fn connection_intent_is_parsed() {
        let r = req("GET /health HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(r.close);
        let r = req("GET /health HTTP/1.1\r\nconnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(!r.close);
        let r = req("GET /health HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.close, "HTTP/1.0 defaults to close");
        let r = req("GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!r.close);
    }

    #[test]
    fn clean_close_before_a_request_is_not_an_error() {
        assert_eq!(req(""), Err(ReadError::Closed));
        // Mid-header truncation is still loud.
        assert!(matches!(req("GET /x HT"), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn rejects_garbage_loudly() {
        assert!(matches!(
            req("nonsense\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            req("GET /x SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            req("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // Truncated body: declared longer than the stream.
        assert!(matches!(
            req("POST /jobs HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn caps_oversized_bodies() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(req(&raw), Err(ReadError::TooLarge));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"error\":\"queue full\"}", false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn two_keepalive_requests_read_back_to_back() {
        let raw = "GET /health HTTP/1.1\r\n\r\nGET /jobs HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut stream = raw.as_bytes();
        let first = read_request(&mut stream).unwrap();
        assert_eq!(first.path, "/health");
        assert!(!first.close);
        let second = read_request(&mut stream).unwrap();
        assert_eq!(second.path, "/jobs");
        assert!(second.close);
        assert_eq!(read_request(&mut stream), Err(ReadError::Closed));
    }

    #[test]
    fn sse_framing_is_spec_shaped() {
        let mut out = Vec::new();
        write_sse_header(&mut out).unwrap();
        write_sse_event(&mut out, "progress", "{\"id\":1}").unwrap();
        write_sse_event(&mut out, "done", "{\"id\":1,\"state\":\"done\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/event-stream\r\n"));
        assert!(text.contains("\r\n\r\nevent: progress\ndata: {\"id\":1}\n\n"));
        assert!(text.ends_with("event: done\ndata: {\"id\":1,\"state\":\"done\"}\n\n"));
    }
}
