//! Criterion micro-benchmarks for the substrate kernels every experiment
//! runs on: dense matmul, sparse SpMM, the GCN normalization, the
//! autodiff forward/backward of a 2-layer GCN, SVD, and Lanczos.

use bbgnn::linalg::eigen::lanczos_topk;
use bbgnn::linalg::svd::{jacobi_svd, randomized_svd};
use bbgnn::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

fn bench_kernels(c: &mut Criterion) {
    let g = DatasetSpec::CoraLike.generate(0.1, 7);
    let n = g.num_nodes();
    let a = DenseMatrix::uniform(256, 256, 1.0, 1);
    let b = DenseMatrix::uniform(256, 256, 1.0, 2);
    let an = g.normalized_adjacency();
    let x = g.features.clone();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    group.bench_function("dense_matmul_256", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b)))
    });
    group.bench_function("spmm_adjacency", |bch| {
        bch.iter(|| std::hint::black_box(an.spmm(&x)))
    });
    group.bench_function("gcn_normalize", |bch| {
        let adj = g.adjacency_csr();
        bch.iter(|| std::hint::black_box(adj.gcn_normalize()))
    });
    group.bench_function("gcn_forward_backward", |bch| {
        let an = Rc::new(an.clone());
        let w0 = DenseMatrix::glorot(g.feature_dim(), 16, 3);
        let w1 = DenseMatrix::glorot(16, g.num_classes, 4);
        let labels = Rc::new(g.labels.clone());
        let rows = Rc::new(g.split.train.clone());
        bch.iter(|| {
            let mut t = bbgnn::autodiff::Tape::new();
            let w0t = t.var(w0.clone());
            let w1t = t.var(w1.clone());
            let xc = t.constant(x.clone());
            let xw = t.matmul(xc, w0t);
            let h = t.spmm(Rc::clone(&an), xw);
            let h = t.relu(h);
            let hw = t.matmul(h, w1t);
            let logits = t.spmm(Rc::clone(&an), hw);
            let loss = t.cross_entropy(logits, Rc::clone(&labels), Rc::clone(&rows));
            t.backward(loss);
            std::hint::black_box(t.grad(w0t).is_some())
        })
    });
    group.bench_function("jacobi_svd_64", |bch| {
        let m = DenseMatrix::uniform(64, 64, 1.0, 5);
        bch.iter(|| std::hint::black_box(jacobi_svd(&m)))
    });
    group.bench_function("randomized_svd_rank16", |bch| {
        let m = g.adjacency_dense();
        bch.iter(|| std::hint::black_box(randomized_svd(&m, 16, 8, 2, 1)))
    });
    group.bench_function(format!("lanczos_top32_n{n}"), |bch| {
        let adj = g.normalized_adjacency();
        bch.iter(|| std::hint::black_box(lanczos_topk(&adj, 32, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
