//! Row-major dense `f64` matrices and the numeric kernels built on them.
//!
//! [`DenseMatrix`] is the workhorse value type of the workspace: autodiff
//! tensors, GNN weights, relaxed adjacency matrices and feature matrices are
//! all `DenseMatrix` values. The kernels here favour contiguous row slices
//! and `ikj` loop ordering so rustc can vectorize the inner loops.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, row-major matrix of `f64` values.
///
/// Invariant: `data.len() == rows * cols`. Row `i` occupies
/// `data[i*cols .. (i+1)*cols]`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows (each inner slice is one row).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix with entries drawn i.i.d. from `U(-scale, scale)`.
    pub fn uniform(rows: usize, cols: usize, scale: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with Glorot/Xavier uniform initialization, the
    /// scheme used by the reference GCN implementation.
    pub fn glorot(rows: usize, cols: usize, seed: u64) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        Self::uniform(rows, cols, scale, seed)
    }

    /// Creates a matrix with entries drawn i.i.d. from `N(0, std^2)` using a
    /// Box–Muller transform (keeps us off `rand_distr`).
    pub fn gaussian(rows: usize, cols: usize, std: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// FNV-1a fingerprint of the shape and the IEEE-754 bit pattern of
    /// every entry (see [`crate::content_hash`]). Used by the artifact
    /// store to key cached computations; bitwise-equal matrices — and only
    /// those — hash equal.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::content_hash::Fnv1a::new();
        h.bytes(b"dense");
        h.usize(self.rows);
        h.usize(self.cols);
        h.f64s(&self.data);
        h.finish()
    }

    /// Returns element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Immutable slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable slice of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    ///
    /// Allocates per call; hot paths should use [`DenseMatrix::col_into`]
    /// with a reused buffer or the allocation-free
    /// [`DenseMatrix::col_iter`].
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.col_into(j, &mut out);
        out
    }

    /// Copies column `j` into `out` without allocating.
    ///
    /// # Panics
    /// Panics if `out.len() != self.rows()` or `j` is out of bounds.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} cols",
            self.cols
        );
        assert_eq!(out.len(), self.rows, "col_into buffer length mismatch");
        for (o, src) in out
            .iter_mut()
            .zip(self.data[j..].iter().step_by(self.cols.max(1)))
        {
            *o = *src;
        }
    }

    /// Strided, allocation-free iterator over column `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of bounds.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} cols",
            self.cols
        );
        self.data[j..].iter().step_by(self.cols.max(1)).copied()
    }

    /// Overwrites column `j` with `vals`.
    ///
    /// # Panics
    /// Panics if `vals.len() != self.rows()` or `j` is out of bounds.
    pub fn set_col(&mut self, j: usize, vals: &[f64]) {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} cols",
            self.cols
        );
        assert_eq!(vals.len(), self.rows, "set_col buffer length mismatch");
        let cols = self.cols;
        for (dst, &v) in self.data[j..].iter_mut().step_by(cols.max(1)).zip(vals) {
            *dst = v;
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self * rhs` via the blocked, multi-threaded kernel
    /// ([`crate::kernels::matmul_into`]); bitwise identical to the naive
    /// `ikj` reference loop for every thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        let pool = crate::kernels::ThreadPool::default();
        crate::kernels::matmul_into(self, rhs, &mut out, &pool);
        out
    }

    /// `self^T * rhs` without materializing the transpose, via the
    /// row-partitioned kernel ([`crate::kernels::matmul_tn_into`]).
    pub fn matmul_tn(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, rhs.cols);
        let pool = crate::kernels::ThreadPool::default();
        crate::kernels::matmul_tn_into(self, rhs, &mut out, &pool);
        out
    }

    /// `self * rhs^T` without materializing the transpose, via the
    /// row-partitioned kernel ([`crate::kernels::matmul_nt_into`]).
    pub fn matmul_nt(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        let pool = crate::kernels::ThreadPool::default();
        crate::kernels::matmul_nt_into(self, rhs, &mut out, &pool);
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise combine with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &DenseMatrix, f: impl Fn(f64, f64) -> f64) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|v| v * alpha)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales row `i` of the output by `scales[i]` (i.e. `diag(scales) * self`).
    pub fn scale_rows(&self, scales: &[f64]) -> DenseMatrix {
        assert_eq!(scales.len(), self.rows, "scale_rows length mismatch");
        let mut out = self.clone();
        for (i, &s) in scales.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= s;
            }
        }
        out
    }

    /// Scales column `j` of the output by `scales[j]` (i.e. `self * diag(scales)`).
    pub fn scale_cols(&self, scales: &[f64]) -> DenseMatrix {
        assert_eq!(scales.len(), self.cols, "scale_cols length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for (v, &s) in out.row_mut(i).iter_mut().zip(scales) {
                *v *= s;
            }
        }
        out
    }

    /// Sum of every entry.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Per-column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (acc, &v) in out.iter_mut().zip(self.row(i)) {
                *acc += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Lp norm of row `i` (`p >= 1`).
    pub fn row_lp_norm(&self, i: usize, p: f64) -> f64 {
        lp_norm(self.row(i), p)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Index `(i, j)` of the maximum entry; ties resolve to the first.
    pub fn argmax(&self) -> (usize, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut idx = 0;
        for (k, &v) in self.data.iter().enumerate() {
            if v > best {
                best = v;
                idx = k;
            }
        }
        (idx / self.cols, idx % self.cols)
    }

    /// Per-row argmax indices (the prediction rule for classifier outputs).
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for j in 1..row.len() {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Extracts the sub-matrix formed by `row_indices` (rows copied in the
    /// given order).
    pub fn select_rows(&self, row_indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(row_indices.len(), self.cols);
        for (k, &i) in row_indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Symmetrizes in place: `self = (self + self^T) / 2`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, m);
                self.set(j, i, m);
            }
        }
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Maximum absolute elementwise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

/// Lp norm of a slice (`p >= 1`); `p = 1` and `p = 2` take fast paths.
pub fn lp_norm(v: &[f64], p: f64) -> f64 {
    if p == 1.0 {
        v.iter().map(|x| x.abs()).sum()
    } else if p == 2.0 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    } else {
        v.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine similarity between two slices; zero vectors yield 0.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = lp_norm(a, 2.0);
    let nb = lp_norm(b, 2.0);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = DenseMatrix::uniform(4, 4, 1.0, 7);
        let i = DenseMatrix::identity(4);
        assert!(m.matmul(&i).max_abs_diff(&m) < 1e-12);
        assert!(i.matmul(&m).max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        let expected = DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose() {
        let a = DenseMatrix::uniform(5, 3, 1.0, 1);
        let b = DenseMatrix::uniform(5, 4, 1.0, 2);
        let c = DenseMatrix::uniform(6, 3, 1.0, 3);
        assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-12);
        assert!(a.matmul_nt(&c).max_abs_diff(&a.matmul(&c.transpose())) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::uniform(3, 5, 2.0, 42);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_col_scaling() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = m.scale_rows(&[2.0, 10.0]);
        assert_eq!(r.row(0), &[2.0, 4.0]);
        assert_eq!(r.row(1), &[30.0, 40.0]);
        let c = m.scale_cols(&[2.0, 0.5]);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[6.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let m = DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.row_sums(), vec![-1.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 2.0]);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.argmax(), (1, 1));
        assert_eq!(m.row_argmax(), vec![0, 1]);
    }

    #[test]
    fn lp_norms() {
        let v = [3.0, -4.0];
        assert_eq!(lp_norm(&v, 1.0), 7.0);
        assert_eq!(lp_norm(&v, 2.0), 5.0);
        assert!((lp_norm(&v, 3.0) - 91.0_f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn cosine() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn symmetrize() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 4.0], &[2.0, 1.0]]);
        m.symmetrize();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn select_rows() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let m = DenseMatrix::gaussian(100, 100, 2.0, 9);
        let mean = m.sum() / 10_000.0;
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var - 4.0).abs() < 0.3, "var {var} too far from 4");
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
