//! Dense and sparse linear-algebra substrate for the `bbgnn` workspace.
//!
//! This crate deliberately depends on nothing but `rand`: every kernel the
//! paper reproduction needs — dense matrix algebra, CSR sparse products,
//! singular value decomposition, symmetric eigendecomposition — is
//! implemented here from scratch so the whole system is auditable and
//! portable.
//!
//! The central types are:
//!
//! * [`DenseMatrix`] — row-major `f64` matrix with the elementwise,
//!   reduction, and BLAS-3-style operations used by the autodiff tape.
//! * [`CsrMatrix`] — compressed sparse row matrix used for graph
//!   propagation (`SpMM`) and adjacency bookkeeping.
//! * [`svd`] — one-sided Jacobi SVD (exact, small matrices) and randomized
//!   truncated SVD (rank-k approximation for defenses like GCN-SVD).
//! * [`eigen`] — cyclic Jacobi eigendecomposition and Lanczos iteration for
//!   symmetric matrices (GF-Attack spectra).
//! * [`kernels`] — blocked multi-threaded matmul/SpMM kernels, the scoped
//!   [`ThreadPool`], the [`Workspace`] buffer arena, and the
//!   [`ExecContext`] bundle that the autodiff tape and every training /
//!   attack loop route their products through.
//!
//! All routines are deterministic given a seed; randomized algorithms take
//! an explicit `u64` seed rather than global RNG state. The threaded
//! kernels are additionally **bitwise deterministic in the thread count**
//! (see [`kernels`] for the contract), so `BBGNN_THREADS` never changes a
//! result, only how fast it arrives.

#![deny(missing_docs)]

pub mod content_hash;
pub mod dense;
pub mod eigen;
pub mod incr;
pub mod kernels;
pub mod qr;
pub mod sparse;
pub mod svd;

pub use dense::DenseMatrix;
pub use kernels::{ExecContext, ThreadPool, Workspace};
pub use sparse::CsrMatrix;

/// Numerical tolerance used as a default convergence threshold across the
/// iterative routines in this crate.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the comparison used by this crate's
/// test-suites.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
