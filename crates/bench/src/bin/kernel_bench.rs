//! Kernel microbenchmark — the perf trajectory file.
//!
//! Times the blocked/threaded kernels against their naive references at
//! graph-relevant sizes (Cora-shaped: `n = 2708`, `d = 1433`) and writes
//! `BENCH_kernels.json` with GFLOP/s per kernel, shape, and thread count,
//! so future changes have a baseline to compare against.
//!
//! The determinism contract means every row of this file describes the
//! *same bytes* — thread count trades wall-clock only, which is exactly
//! why the speedup column is meaningful.
//!
//! ```text
//! cargo run --release --bin kernel_bench            # all cores
//! cargo run --release --bin kernel_bench -- --threads 4
//! cargo run --release --bin kernel_bench -- --compare BENCH_kernels.json
//! ```
//!
//! With `--compare <baseline>` the run additionally gates itself against a
//! previous `BENCH_kernels.json` (see [`bbgnn_bench::compare`]) and exits
//! non-zero on a perf regression — this is the CI `perf` job.

use bbgnn::prelude::*;
use bbgnn_bench::compare;
use bbgnn_bench::config::ExpConfig;
use bbgnn_bench::json::Json;
use bbgnn_bench::report::Table;
use std::time::Instant;

/// Cora's full-size node count and feature dimension (Table III).
const CORA_N: usize = 2708;
const CORA_D: usize = 1433;
/// GCN hidden width used for the Cora-shaped propagation product.
const HIDDEN: usize = 16;

/// Per-variant timing summary over the interleaved rounds.
#[derive(Clone, Copy)]
struct Timing {
    /// Fastest round — the machine's capability, reported as GFLOP/s.
    best: f64,
    /// Median round — robust to one-off stalls, gated by the CI perf job.
    median: f64,
}

/// Times each variant over `reps` rounds, measured **interleaved**: every
/// round times all variants back to back, so noise on a shared machine
/// (other tenants, frequency drift) hits every variant alike and the
/// speedup ratios stay meaningful. One untimed warmup round.
fn time_group(reps: usize, ops: &mut [Box<dyn FnMut() + '_>]) -> Vec<Timing> {
    for op in ops.iter_mut() {
        op();
    }
    let mut samples = vec![Vec::with_capacity(reps); ops.len()];
    for _ in 0..reps {
        for (slot, op) in samples.iter_mut().zip(ops.iter_mut()) {
            let t = Instant::now();
            op();
            slot.push(t.elapsed().as_secs_f64());
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_by(f64::total_cmp);
            let mid = s.len() / 2;
            let median = if s.len() % 2 == 1 {
                s[mid]
            } else {
                (s[mid - 1] + s[mid]) / 2.0
            };
            Timing { best: s[0], median }
        })
        .collect()
}

/// A deterministic sparse matrix with roughly `target_nnz` entries.
fn sparse(n: usize, target_nnz: usize) -> CsrMatrix {
    let modulus = (n * n / target_nnz).max(1);
    CsrMatrix::from_triplets(
        n,
        n,
        (0..n).flat_map(move |r| {
            (0..n).filter_map(move |c| {
                let h = r
                    .wrapping_mul(2654435761)
                    .wrapping_add(c.wrapping_mul(40503))
                    % modulus;
                (h == 0).then(|| (r, c, ((r + c) % 13 + 1) as f64 / 13.0))
            })
        }),
    )
}

struct Row {
    kernel: &'static str,
    shape: String,
    threads: usize,
    flops: f64,
    timing: Timing,
    naive: Timing,
}

impl Row {
    fn gflops(&self) -> f64 {
        self.flops / self.timing.best / 1e9
    }

    fn speedup(&self) -> f64 {
        self.naive.best / self.timing.best
    }

    fn median_speedup(&self) -> f64 {
        self.naive.median / self.timing.median
    }

    fn json(&self) -> Json {
        Json::object([
            ("kernel".to_string(), Json::string(self.kernel)),
            ("shape".to_string(), Json::string(self.shape.clone())),
            ("threads".to_string(), Json::number_usize(self.threads)),
            ("secs".to_string(), Json::number_f64(self.timing.best)),
            (
                "median_secs".to_string(),
                Json::number_f64(self.timing.median),
            ),
            ("gflops".to_string(), Json::number_f64(self.gflops())),
            (
                "speedup_vs_naive".to_string(),
                Json::number_f64(self.speedup()),
            ),
            (
                "median_speedup_vs_naive".to_string(),
                Json::number_f64(self.median_speedup()),
            ),
        ])
    }
}

fn main() {
    // `--compare <baseline>` is kernel_bench-specific, so it is peeled off
    // before the shared flag parser sees the argument list.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (compare_baseline, rest) = match bbgnn_bench::cli::extract_flag(&args, "--compare") {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = ExpConfig::init_from(&rest);
    println!("{}", cfg.banner("kernel_bench"));
    // The baseline is loaded *before* benchmarking (and before the output
    // file is written): `--compare BENCH_kernels.json` compares against the
    // committed baseline even though the run overwrites that same path, and
    // a malformed baseline fails fast instead of after minutes of timing.
    let baseline: Option<(String, Json)> =
        compare_baseline.map(|p| {
            match std::fs::read_to_string(&p)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text))
            {
                Ok(doc) => (p, doc),
                Err(e) => {
                    eprintln!("error: baseline {p}: {e}");
                    std::process::exit(2);
                }
            }
        });
    let max_threads = cfg.resolved_threads();
    let mut thread_counts = vec![1, 2, 4];
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }
    thread_counts.retain(|&t| t <= max_threads.max(4));
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut rows: Vec<Row> = Vec::new();

    let reps = cfg.runs.max(5);
    let ctxs: Vec<ExecContext> = thread_counts.iter().map(|&t| ExecContext::new(t)).collect();

    // --- dense matmul chain at the Cora propagation shape -----------------
    // X (n×d) · W (d×h) is the feature-weight product of every GCN forward;
    // reference = the naive triple loop the blocked kernel must beat.
    let a = DenseMatrix::uniform(CORA_N, CORA_D, 1.0, 1);
    let w = DenseMatrix::uniform(CORA_D, HIDDEN, 1.0, 2);
    let matmul_flops = (2 * CORA_N * CORA_D * HIDDEN) as f64;
    let shape = format!("{CORA_N}x{CORA_D}x{HIDDEN}");
    {
        let mut ops: Vec<Box<dyn FnMut() + '_>> = Vec::new();
        ops.push(Box::new(|| {
            drop(bbgnn::linalg::kernels::matmul_ref(&a, &w));
        }));
        let (a, w) = (&a, &w);
        for ctx in &ctxs {
            ops.push(Box::new(move || {
                let out = ctx.matmul(a, w);
                ctx.recycle(out);
            }));
        }
        let secs = time_group(reps, &mut ops);
        rows.push(Row {
            kernel: "matmul_naive",
            shape: shape.clone(),
            threads: 1,
            flops: matmul_flops,
            timing: secs[0],
            naive: secs[0],
        });
        for (i, &t) in thread_counts.iter().enumerate() {
            rows.push(Row {
                kernel: "matmul",
                shape: shape.clone(),
                threads: t,
                flops: matmul_flops,
                timing: secs[i + 1],
                naive: secs[0],
            });
        }
    }

    // --- matmul_tn at the gradient shape (Aᵀ G, d×n · n×h) ---------------
    let g = DenseMatrix::uniform(CORA_N, HIDDEN, 1.0, 3);
    let tn_flops = (2 * CORA_D * CORA_N * HIDDEN) as f64;
    let tn_shape = format!("{CORA_N}x{CORA_D}^T x{HIDDEN}");
    {
        let mut ops: Vec<Box<dyn FnMut() + '_>> = Vec::new();
        ops.push(Box::new(|| {
            drop(bbgnn::linalg::kernels::matmul_tn_ref(&a, &g));
        }));
        let (a, g) = (&a, &g);
        for ctx in &ctxs {
            ops.push(Box::new(move || {
                let out = ctx.matmul_tn(a, g);
                ctx.recycle(out);
            }));
        }
        let secs = time_group(reps, &mut ops);
        rows.push(Row {
            kernel: "matmul_tn_naive",
            shape: tn_shape.clone(),
            threads: 1,
            flops: tn_flops,
            timing: secs[0],
            naive: secs[0],
        });
        for (i, &t) in thread_counts.iter().enumerate() {
            rows.push(Row {
                kernel: "matmul_tn",
                shape: tn_shape.clone(),
                threads: t,
                flops: tn_flops,
                timing: secs[i + 1],
                naive: secs[0],
            });
        }
    }

    // --- SpMM at the Cora adjacency shape ---------------------------------
    // Â (2708×2708, ~10k nnz) · X (2708×1433): the sparse propagation.
    let s = sparse(CORA_N, 10_000);
    let x = DenseMatrix::uniform(CORA_N, CORA_D, 1.0, 4);
    let spmm_flops = (2 * s.nnz() * CORA_D) as f64;
    let spmm_shape = format!("{CORA_N}x{CORA_N}({}nnz) x{CORA_D}", s.nnz());
    {
        let mut ops: Vec<Box<dyn FnMut() + '_>> = Vec::new();
        ops.push(Box::new(|| {
            drop(bbgnn::linalg::kernels::spmm_ref(&s, &x));
        }));
        let (s, x) = (&s, &x);
        for ctx in &ctxs {
            ops.push(Box::new(move || {
                let out = ctx.spmm(s, x);
                ctx.recycle(out);
            }));
        }
        let secs = time_group(reps, &mut ops);
        rows.push(Row {
            kernel: "spmm_naive",
            shape: spmm_shape.clone(),
            threads: 1,
            flops: spmm_flops,
            timing: secs[0],
            naive: secs[0],
        });
        for (i, &t) in thread_counts.iter().enumerate() {
            rows.push(Row {
                kernel: "spmm",
                shape: spmm_shape.clone(),
                threads: t,
                flops: spmm_flops,
                timing: secs[i + 1],
                naive: secs[0],
            });
        }
    }

    // --- incremental rescore vs full rescore (DESIGN.md §13) --------------
    // One committed edge flip on a Cora-shaped graph: the incremental
    // engine repairs the L-hop touched rows of H = Â_n^L X in O(L·deg·d);
    // the naive reference is what every greedy attacker paid per commit
    // before the engine existed — rebuild Â_n and recompute the full
    // L-hop propagation. Same bytes either way (the §13 contract), so the
    // speedup column is a pure wall-clock ratio. The repair is serial by
    // construction, hence the single threads=1 row.
    {
        use bbgnn::linalg::incr::{IncrConfig, IncrNorm, IncrProp};
        // Deterministic Cora-scale random graph (~2 edges per node).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        while edges.len() < 2 * CORA_N {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 33) as usize % CORA_N;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 33) as usize % CORA_N;
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let hops = 2;
        let xg = DenseMatrix::uniform(CORA_N, CORA_D, 1.0, 5);
        let mut icfg = IncrConfig::new(hops);
        icfg.resync_stride = 0; // time pure updates, no periodic resync
        icfg.threads = 1;
        let mut engine = IncrProp::from_edges(CORA_N, &edges, xg.clone(), &icfg);
        let mut mirror = IncrNorm::from_edges(CORA_N, &edges);
        let nnz = mirror.normalized_csr().nnz();
        let incr_flops = (2 * nnz * CORA_D * hops) as f64;
        let incr_shape = format!("{CORA_N}x{CORA_N}({nnz}nnz) x{CORA_D} L={hops}");
        let (fu, fv) = (17usize, 1000usize); // toggled add/remove each round
        let xref = &xg;
        let mut ops: Vec<Box<dyn FnMut() + '_>> = Vec::new();
        ops.push(Box::new(move || {
            // Full rescore exactly as Graph::propagate does it after a
            // commit: renormalize, then the L-hop SpMM chain.
            mirror.flip_edge(fu, fv);
            let an = mirror.normalized_csr();
            let mut h = an.spmm(xref);
            for _ in 1..hops {
                h = an.spmm(&h);
            }
            drop(h);
        }));
        ops.push(Box::new(move || {
            engine.flip_edge(fu, fv);
        }));
        let secs = time_group(reps, &mut ops);
        rows.push(Row {
            kernel: "incr_update_naive",
            shape: incr_shape.clone(),
            threads: 1,
            flops: incr_flops,
            timing: secs[0],
            naive: secs[0],
        });
        rows.push(Row {
            kernel: "incr_update",
            shape: incr_shape,
            threads: 1,
            flops: incr_flops,
            timing: secs[1],
            naive: secs[0],
        });
    }

    // --- report ------------------------------------------------------------
    let mut table = Table::new(&["kernel", "shape", "threads", "GFLOP/s", "speedup"]);
    for r in &rows {
        table.push_row(vec![
            r.kernel.to_string(),
            r.shape.clone(),
            r.threads.to_string(),
            format!("{:.2}", r.gflops()),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table.emit(&cfg.out_dir, "kernel_bench");

    let doc = Json::object([
        (
            "config".to_string(),
            Json::object([
                ("max_threads".to_string(), Json::number_usize(max_threads)),
                ("seed".to_string(), Json::number_usize(cfg.seed as usize)),
            ]),
        ),
        (
            "results".to_string(),
            Json::Array(rows.iter().map(Row::json).collect()),
        ),
    ]);
    let path = "BENCH_kernels.json";
    match std::fs::write(path, doc.to_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    if let Some((baseline_path, baseline)) = baseline {
        // Absolute §13 gate, in addition to the relative baseline gate
        // below: the incremental per-candidate rescore must beat the full
        // rescore by ≥3× median on the gating box, or the engine has lost
        // its reason to exist.
        for r in rows.iter().filter(|r| r.kernel == "incr_update") {
            let s = r.median_speedup();
            if s < 3.0 {
                eprintln!("perf gate: FAIL — incr_update median speedup {s:.2}x < 3x full rescore");
                std::process::exit(1);
            }
            println!("incr gate: incr_update median speedup {s:.2}x (>= 3x) PASS");
        }
        match compare::compare_docs(&baseline, &doc, compare::DEFAULT_MIN_RATIO) {
            Ok(report) => {
                print!("\n{}", report.render());
                if !report.passed() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("error: comparing against {baseline_path}: {e}");
                std::process::exit(2);
            }
        }
    }
}
