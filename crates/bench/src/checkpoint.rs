//! Crash-safe checkpointing for experiment sweeps.
//!
//! Every table/figure binary records each completed cell into
//! `results/<experiment>.checkpoint.json` as soon as the cell finishes. If
//! the process is killed mid-sweep (OOM, SIGKILL, power loss), re-invoking
//! the same binary with the same configuration replays the completed cells
//! from the checkpoint verbatim — the final report is byte-identical to an
//! uninterrupted run, because cells are stored as their already-formatted
//! strings and all retry seeds are derived deterministically.
//!
//! The checkpoint is keyed by a configuration *fingerprint*
//! ([`ExpConfig::fingerprint`](crate::config::ExpConfig::fingerprint)): a
//! stale checkpoint from a different scale/seed/rate is discarded rather
//! than resumed. Writes go through a temp file + rename so a crash during
//! the write itself cannot corrupt the previous checkpoint.

use crate::json::Json;
use bbgnn_errors::{BbgnnError, BbgnnResult};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One completed experiment cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// The formatted cell value, stored verbatim for byte-identical resume.
    pub value: String,
    /// Outcome tag: `"ok"`, `"retried"`, `"degraded"`, or `"failed"`.
    pub outcome: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Terminal error text for failed cells.
    pub detail: Option<String>,
    /// Artifact-store filenames this cell read or wrote (empty when no
    /// store was active). `bbgnn-store gc` treats any artifact named in a
    /// checkpoint as live, so a resumed run can still warm-start.
    pub artifacts: Vec<String>,
}

/// A load-on-open, save-on-record cell store for one experiment binary.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    fingerprint: String,
    cells: BTreeMap<String, CellRecord>,
    resumed: usize,
}

impl Checkpoint {
    /// Opens (or starts) the checkpoint for `experiment` under `out_dir`.
    ///
    /// An existing file is resumed only if its fingerprint matches;
    /// mismatched or unparseable checkpoints are dropped with a note on
    /// stderr (they are superseded, not errors).
    pub fn open(out_dir: &str, experiment: &str, fingerprint: &str) -> Checkpoint {
        let path = Path::new(out_dir).join(format!("{experiment}.checkpoint.json"));
        let mut ckpt = Checkpoint {
            path,
            fingerprint: fingerprint.to_string(),
            cells: BTreeMap::new(),
            resumed: 0,
        };
        match std::fs::read_to_string(&ckpt.path) {
            Err(_) => {} // no checkpoint: fresh run
            // A zero-length file is what a crash between `open` and the
            // first flushed write leaves behind (also some filesystems
            // after power loss). It is corrupt, not an error: restart.
            Ok(text) if text.trim().is_empty() => {
                eprintln!(
                    "note: ignoring empty checkpoint {}; starting fresh",
                    ckpt.path.display()
                );
            }
            Ok(text) => match parse_cells(&text, fingerprint) {
                Ok(cells) => {
                    ckpt.resumed = cells.len();
                    ckpt.cells = cells;
                }
                Err(why) => {
                    eprintln!(
                        "note: ignoring checkpoint {} ({why}); starting fresh",
                        ckpt.path.display()
                    );
                }
            },
        }
        ckpt
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cells carried over from a previous (interrupted) run.
    pub fn resumed_cells(&self) -> usize {
        self.resumed
    }

    /// The record for `key`, if that cell already completed.
    pub fn get(&self, key: &str) -> Option<&CellRecord> {
        self.cells.get(key)
    }

    /// Whether `key` already completed.
    pub fn contains(&self, key: &str) -> bool {
        self.cells.contains_key(key)
    }

    /// Records a completed cell and persists the checkpoint atomically.
    pub fn record(&mut self, key: &str, record: CellRecord) -> BbgnnResult<()> {
        self.cells.insert(key.to_string(), record);
        self.save()
    }

    fn save(&self) -> BbgnnResult<()> {
        let io = |e: std::io::Error| BbgnnError::DatasetIo {
            path: self.path.display().to_string(),
            message: format!("writing checkpoint: {e}"),
        };
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
        let doc = Json::object([
            (
                "fingerprint".to_string(),
                Json::string(self.fingerprint.clone()),
            ),
            (
                "cells".to_string(),
                Json::Object(
                    self.cells
                        .iter()
                        .map(|(k, rec)| {
                            let mut fields = vec![
                                ("value".to_string(), Json::string(rec.value.clone())),
                                ("outcome".to_string(), Json::string(rec.outcome.clone())),
                                ("attempts".to_string(), Json::number_usize(rec.attempts)),
                            ];
                            if let Some(d) = &rec.detail {
                                fields.push(("detail".to_string(), Json::string(d.clone())));
                            }
                            if !rec.artifacts.is_empty() {
                                fields.push((
                                    "artifacts".to_string(),
                                    Json::Array(
                                        rec.artifacts.iter().cloned().map(Json::string).collect(),
                                    ),
                                ));
                            }
                            (k.clone(), Json::object(fields))
                        })
                        .collect(),
                ),
            ),
        ]);
        // Atomic publish: a crash mid-write leaves the previous checkpoint
        // intact because the rename is the only visible step.
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, doc.to_pretty()).map_err(io)?;
        std::fs::rename(&tmp, &self.path).map_err(io)
    }
}

fn parse_cells(text: &str, fingerprint: &str) -> Result<BTreeMap<String, CellRecord>, String> {
    let doc = Json::parse(text)?;
    let root = doc.as_object().ok_or("top level is not an object")?;
    let found = root
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("missing fingerprint")?;
    if found != fingerprint {
        return Err(format!(
            "configuration changed: was {found:?}, now {fingerprint:?}"
        ));
    }
    let cells = root
        .get("cells")
        .and_then(Json::as_object)
        .ok_or("missing cells object")?;
    let mut out = BTreeMap::new();
    for (key, cell) in cells {
        let fields = cell
            .as_object()
            .ok_or_else(|| format!("cell {key:?} is not an object"))?;
        let record = CellRecord {
            value: fields
                .get("value")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell {key:?} has no value"))?
                .to_string(),
            outcome: fields
                .get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("ok")
                .to_string(),
            attempts: fields.get("attempts").and_then(Json::as_usize).unwrap_or(1),
            detail: fields
                .get("detail")
                .and_then(Json::as_str)
                .map(str::to_string),
            artifacts: fields
                .get("artifacts")
                .and_then(Json::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
        };
        out.insert(key.clone(), record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_out_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("bbgnn_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    fn rec(value: &str) -> CellRecord {
        CellRecord {
            value: value.to_string(),
            outcome: "ok".to_string(),
            attempts: 1,
            detail: None,
            artifacts: vec![],
        }
    }

    #[test]
    fn records_survive_reopen() {
        let out = temp_out_dir("reopen");
        let mut a = Checkpoint::open(&out, "table4", "fp1");
        assert_eq!(a.resumed_cells(), 0);
        a.record("cora/Clean/GCN", rec("81.2±0.4")).unwrap();
        a.record("cora/PEEGA/GCN", rec("62.1±1.2")).unwrap();

        let b = Checkpoint::open(&out, "table4", "fp1");
        assert_eq!(b.resumed_cells(), 2);
        assert_eq!(b.get("cora/PEEGA/GCN").unwrap().value, "62.1±1.2");
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let out = temp_out_dir("stale");
        let mut a = Checkpoint::open(&out, "table4", "scale=0.1");
        a.record("k", rec("v")).unwrap();
        let b = Checkpoint::open(&out, "table4", "scale=0.5");
        assert_eq!(
            b.resumed_cells(),
            0,
            "a stale checkpoint must not be resumed"
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn corrupt_checkpoint_is_ignored_not_fatal() {
        let out = temp_out_dir("corrupt");
        std::fs::create_dir_all(&out).unwrap();
        std::fs::write(Path::new(&out).join("fig6.checkpoint.json"), "{ not json").unwrap();
        let c = Checkpoint::open(&out, "fig6", "fp");
        assert_eq!(c.resumed_cells(), 0);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn zero_length_checkpoint_restarts_fresh() {
        let out = temp_out_dir("empty");
        std::fs::create_dir_all(&out).unwrap();
        std::fs::write(Path::new(&out).join("t.checkpoint.json"), "").unwrap();
        let mut c = Checkpoint::open(&out, "t", "fp");
        assert_eq!(c.resumed_cells(), 0, "empty file must be treated as fresh");
        // And the run must be able to proceed normally afterwards.
        c.record("k", rec("v")).unwrap();
        let d = Checkpoint::open(&out, "t", "fp");
        assert_eq!(d.resumed_cells(), 1);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn truncated_checkpoint_restarts_fresh() {
        let out = temp_out_dir("truncated");
        let mut a = Checkpoint::open(&out, "t", "fp");
        a.record("k1", rec("v1")).unwrap();
        a.record("k2", rec("v2")).unwrap();
        // Simulate a crash that cut the file mid-JSON.
        let path = Path::new(&out).join("t.checkpoint.json");
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let b = Checkpoint::open(&out, "t", "fp");
        assert_eq!(
            b.resumed_cells(),
            0,
            "a truncated checkpoint must restart, not abort"
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn artifacts_roundtrip_through_checkpoint() {
        let out = temp_out_dir("artifacts");
        let mut a = Checkpoint::open(&out, "t", "fp");
        a.record(
            "cell",
            CellRecord {
                artifacts: vec![
                    "model-gcn-00ff.bba".to_string(),
                    "prep-1234.bba".to_string(),
                ],
                ..rec("v")
            },
        )
        .unwrap();
        let b = Checkpoint::open(&out, "t", "fp");
        assert_eq!(
            b.get("cell").unwrap().artifacts,
            vec!["model-gcn-00ff.bba", "prep-1234.bba"]
        );
        // Cells without artifacts stay artifact-free after a reopen.
        let mut c = Checkpoint::open(&out, "t", "fp");
        c.record("plain", rec("w")).unwrap();
        let d = Checkpoint::open(&out, "t", "fp");
        assert!(d.get("plain").unwrap().artifacts.is_empty());
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn failed_cells_keep_their_detail() {
        let out = temp_out_dir("detail");
        let mut a = Checkpoint::open(&out, "t", "fp");
        a.record(
            "bad",
            CellRecord {
                value: "n/a".to_string(),
                outcome: "failed".to_string(),
                attempts: 3,
                detail: Some("training loss became NaN".to_string()),
                artifacts: vec![],
            },
        )
        .unwrap();
        let b = Checkpoint::open(&out, "t", "fp");
        let r = b.get("bad").unwrap();
        assert_eq!(r.outcome, "failed");
        assert_eq!(r.attempts, 3);
        assert_eq!(r.detail.as_deref(), Some("training loss became NaN"));
        let _ = std::fs::remove_dir_all(&out);
    }
}
