//! GCN-Jaccard (Wu et al. 2019) — preprocessing defense.
//!
//! Computes the Jaccard similarity of the binary feature vectors of every
//! connected node pair and deletes edges whose similarity falls below a
//! threshold, then trains a plain GCN on the purified graph. Requires
//! meaningful (non-identity) binary features — the paper omits it on
//! Polblogs for exactly that reason.

use crate::Defender;
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::{TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;

/// GCN-Jaccard configuration.
#[derive(Clone, Debug)]
pub struct GcnJaccardConfig {
    /// Edges with Jaccard similarity `< threshold` are removed (the paper
    /// tunes this in `{0.01, …, 0.05, 1}`; 0.01 is the common default).
    pub threshold: f64,
    /// Training configuration of the downstream GCN.
    pub train: TrainConfig,
}

impl Default for GcnJaccardConfig {
    fn default() -> Self {
        Self {
            threshold: 0.01,
            train: TrainConfig::default(),
        }
    }
}

/// The GCN-Jaccard defender.
pub struct GcnJaccard {
    /// Configuration.
    pub config: GcnJaccardConfig,
    gcn: Gcn,
    purified: Option<Graph>,
}

impl GcnJaccard {
    /// Creates an untrained GCN-Jaccard defender.
    pub fn new(config: GcnJaccardConfig) -> Self {
        let gcn = Gcn::paper_default(config.train.clone());
        Self {
            config,
            gcn,
            purified: None,
        }
    }

    /// Jaccard similarity of two binary feature rows.
    pub fn jaccard(a: &[f64], b: &[f64]) -> f64 {
        let mut inter = 0.0;
        let mut union = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let xa = x != 0.0;
            let yb = y != 0.0;
            if xa && yb {
                inter += 1.0;
            }
            if xa || yb {
                union += 1.0;
            }
        }
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Removes low-similarity edges from `g`.
    pub fn purify(&self, g: &Graph) -> Graph {
        let mut purified = g.clone();
        let doomed: Vec<(usize, usize)> = g
            .edges()
            .filter(|&(u, v)| {
                Self::jaccard(g.features.row(u), g.features.row(v)) < self.config.threshold
            })
            .collect();
        for (u, v) in doomed {
            purified.remove_edge(u, v);
        }
        purified
    }
}

impl NodeClassifier for GcnJaccard {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/jaccard/fit", nodes = g.num_nodes());
        let purified = self.purify(g);
        let report = self.gcn.fit(&purified);
        self.purified = Some(purified);
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        // Predict on the purified topology learned at fit time.
        // lint: allow(panic) reason=documented precondition — callers must fit() first
        let purified = self.purified.as_ref().expect("model is not trained");
        let mut graph = purified.clone();
        graph.features = g.features.clone();
        self.gcn.predict(&graph)
    }
}

impl Defender for GcnJaccard {
    fn name(&self) -> String {
        "GCN-Jaccard".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;
    use bbgnn_graph::Split;
    use bbgnn_linalg::DenseMatrix;

    #[test]
    fn jaccard_of_disjoint_and_identical() {
        assert_eq!(GcnJaccard::jaccard(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(GcnJaccard::jaccard(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(GcnJaccard::jaccard(&[1.0, 1.0], &[1.0, 0.0]), 0.5);
        assert_eq!(GcnJaccard::jaccard(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn purify_drops_dissimilar_edges_only() {
        let features = DenseMatrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0], // identical to node 0
            &[0.0, 0.0, 1.0], // disjoint from both
        ]);
        let g = Graph::new(
            3,
            &[(0, 1), (1, 2)],
            features,
            vec![0, 0, 1],
            2,
            Split::trivial(3),
        );
        let d = GcnJaccard::new(GcnJaccardConfig {
            threshold: 0.2,
            ..Default::default()
        });
        let purified = d.purify(&g);
        assert!(purified.has_edge(0, 1), "similar edge survives");
        assert!(!purified.has_edge(1, 2), "dissimilar edge removed");
    }

    #[test]
    fn improves_over_gcn_under_cross_label_edge_attack() {
        use bbgnn_attack::peega::{Peega, PeegaConfig};
        use bbgnn_attack::Attacker;
        let g = DatasetSpec::CoraLike.generate(0.08, 111);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut jac = GcnJaccard::new(GcnJaccardConfig {
            threshold: 0.02,
            train: TrainConfig::fast_test(),
        });
        jac.fit(&poisoned);
        let acc = jac.test_accuracy(&poisoned);
        // 20% budget on a ~150-node graph with noisy features is a heavy
        // attack; well-above-chance (1/7) is the contract here.
        assert!(acc > 0.33, "GCN-Jaccard accuracy {acc} unexpectedly low");
    }
}
