//! GF-Attack (Chang et al. 2020), the spectral black-box baseline.
//!
//! GF-Attack scores candidate edge flips by their effect on the graph
//! filter underlying GNN embeddings: the quality of a `K`-order filter is
//! governed by the restricted energy `Σ_i λ_i^K ‖u_iᵀ X‖²` over the top of
//! the spectrum of the normalized adjacency. GF-Attack selects the `δ`
//! flips that most *decrease* that energy, degrading the embedding without
//! reading labels or model parameters — extended to untargeted attacks
//! exactly as the paper describes (score candidates, take the top `δ`).
//!
//! Two scoring backends are provided:
//!
//! * [`GfScoring::ExactRecompute`] (default, paper-faithful cost profile):
//!   every candidate flip re-derives the top-`T` spectrum of the perturbed
//!   normalized adjacency (Lanczos) and re-evaluates the filter energy.
//!   This is what makes GF-Attack by far the slowest attacker in the
//!   paper's Table VII; a candidate pool bounds the otherwise quadratic
//!   scan.
//! * [`GfScoring::FirstOrder`]: our efficiency improvement — first-order
//!   eigenvalue perturbation `Δλ_i ≈ Δw (2 u_i[u] u_i[v] − λ_i
//!   (u_i[u]²/d_u + u_i[v]²/d_v))` scores all `O(n²)` candidates from one
//!   eigendecomposition, orders of magnitude faster with near-identical
//!   flip selection. Used by the fast test-suite.

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_graph::Graph;
use bbgnn_linalg::eigen::try_lanczos_topk;
use bbgnn_linalg::{CsrMatrix, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Candidate scoring backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GfScoring {
    /// Re-derive the perturbed spectrum per candidate (paper-faithful,
    /// slow).
    ExactRecompute,
    /// First-order eigenvalue perturbation from one eigendecomposition
    /// (fast).
    FirstOrder,
}

/// GF-Attack configuration.
#[derive(Clone, Debug)]
pub struct GfAttackConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Number of top eigenpairs `T` used by the restricted filter.
    pub top_eigens: usize,
    /// Filter order `K` (the paper's GNN surrogates use 2).
    pub filter_order: u32,
    /// Scoring backend.
    pub scoring: GfScoring,
    /// With [`GfScoring::ExactRecompute`], the number of random candidates
    /// scored per budgeted flip (`pool = candidate_pool_factor · δ`,
    /// existing edges always included). `0` scans every pair.
    pub candidate_pool_factor: usize,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// Seed for the Lanczos start vector and candidate sampling.
    pub seed: u64,
    /// With [`GfScoring::ExactRecompute`], build each candidate's
    /// normalized adjacency by patching the clean one in O(deg) per row
    /// (DESIGN.md §13) instead of clone + flip + renormalize from scratch.
    /// The patched matrix is bitwise identical, so the Lanczos rescore —
    /// and the flip sequence — never changes. Also honoured when the
    /// process-global `--incremental` / `BBGNN_INCR` switch is on.
    pub incremental: bool,
}

impl Default for GfAttackConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            top_eigens: 16,
            filter_order: 2,
            scoring: GfScoring::ExactRecompute,
            candidate_pool_factor: 10,
            attacker_nodes: AttackerNodes::All,
            seed: 0,
            incremental: false,
        }
    }
}

impl GfAttackConfig {
    /// Fast configuration using the first-order scoring backend.
    pub fn fast() -> Self {
        Self {
            scoring: GfScoring::FirstOrder,
            ..Self::default()
        }
    }
}

/// The GF-Attack black-box attacker.
#[derive(Clone, Debug)]
pub struct GfAttack {
    /// Configuration.
    pub config: GfAttackConfig,
}

/// Lanczos through the fallible facade: a supervision stop (cancellation,
/// deadline, or budget trip observed at the solver's restart boundary)
/// surfaces as `None` so the caller can drop the candidate instead of
/// panicking inside a pool worker. Genuine numerical failure keeps the
/// infallible facade's panic contract.
fn lanczos_or_stop(an: &CsrMatrix, t: usize, seed: u64) -> Option<bbgnn_linalg::eigen::Eigen> {
    match try_lanczos_topk(an, t, seed) {
        Ok(eig) => Some(eig),
        Err(e) if e.is_supervision_stop() => None,
        // lint: allow(panic) reason=preserves the lanczos_topk infallible-facade contract for genuine numerical failure
        Err(e) => panic!("lanczos_topk: {e}"),
    }
}

/// [`lanczos_or_stop`] warm-started from the artifact store, keyed on the
/// normalized adjacency's content hash plus the extraction knobs. Only
/// the once-per-attack clean-graph decomposition goes through here.
fn lanczos_cached(an: &CsrMatrix, t: usize, seed: u64) -> Option<bbgnn_linalg::eigen::Eigen> {
    let key = bbgnn_store::enabled().then(|| {
        bbgnn_store::Key::new("factors/eigen")
            .hash_field("an", an.content_hash())
            .field("topk", t)
            .field("seed", seed)
    });
    if let Some(key) = &key {
        if let Some(f) = bbgnn_store::lookup::<bbgnn_store::EigenFactors>(key) {
            return Some(bbgnn_linalg::eigen::Eigen {
                values: f.values,
                vectors: f.vectors,
            });
        }
    }
    let eig = lanczos_or_stop(an, t, seed)?;
    if let Some(key) = &key {
        bbgnn_store::publish(
            key,
            &bbgnn_store::EigenFactors {
                values: eig.values.clone(),
                vectors: eig.vectors.clone(),
            },
        );
    }
    Some(eig)
}

impl GfAttack {
    /// Creates a GF-Attack attacker.
    pub fn new(config: GfAttackConfig) -> Self {
        Self { config }
    }

    /// Restricted filter energy `Σ_i λ_i^K ‖u_iᵀ X‖²` of a graph, or
    /// `None` when the supervision layer stopped the eigensolve (the
    /// candidate is then dropped from the scored list).
    ///
    /// `cache` warm-starts the eigendecomposition from the artifact store;
    /// pass it only for the once-per-attack clean-graph call — the
    /// per-candidate rescoring runs on pool workers (where store recording
    /// is not active) and would write one artifact per flipped edge.
    fn filter_energy(&self, adj: &CsrMatrix, g: &Graph, seed: u64, cache: bool) -> Option<f64> {
        self.filter_energy_normalized(&adj.gcn_normalize(), g, seed, cache)
    }

    /// [`Self::filter_energy`] on an already-normalized adjacency — the
    /// entry point for the incremental exact backend, whose per-candidate
    /// patched `Â_n'` skips the renormalization entirely.
    fn filter_energy_normalized(
        &self,
        an: &CsrMatrix,
        g: &Graph,
        seed: u64,
        cache: bool,
    ) -> Option<f64> {
        let t = self.config.top_eigens.min(an.rows());
        let eig = if cache {
            lanczos_cached(an, t, seed)?
        } else {
            lanczos_or_stop(an, t, seed)?
        };
        let ut_x = eig.vectors.matmul_tn(&g.features);
        let k = self.config.filter_order as i32;
        Some(
            eig.values
                .iter()
                .zip(0..ut_x.rows())
                .map(|(&lam, i)| {
                    let w: f64 = ut_x.row(i).iter().map(|v| v * v).sum();
                    lam.powi(k) * w
                })
                .sum(),
        )
    }

    /// Candidate pairs for the exact backend: all existing edges plus a
    /// random pool of non-edges (or every pair when the pool factor is 0).
    fn exact_candidates(&self, g: &Graph, budget: usize) -> Vec<(usize, usize)> {
        let n = g.num_nodes();
        let mut cands: Vec<(usize, usize)> = g
            .edges()
            .filter(|&(u, v)| self.config.attacker_nodes.edge_allowed(u, v))
            .collect();
        if self.config.candidate_pool_factor == 0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    if !g.has_edge(u, v) && self.config.attacker_nodes.edge_allowed(u, v) {
                        cands.push((u, v));
                    }
                }
            }
            return cands;
        }
        let pool = self.config.candidate_pool_factor * budget;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(17));
        // The HashSet is membership-only (dedup); sampled pairs are pushed
        // onto the Vec in draw order, so the candidate list never depends
        // on seeded hash iteration order (DESIGN.md §7).
        let mut seen = std::collections::HashSet::new();
        let mut sampled = Vec::new();
        let mut guard = 0;
        while sampled.len() < pool && guard < pool * 100 + 1000 {
            guard += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || g.has_edge(u, v) || !self.config.attacker_nodes.edge_allowed(u, v) {
                continue;
            }
            if seen.insert((u.min(v), u.max(v))) {
                sampled.push((u.min(v), u.max(v)));
            }
        }
        cands.extend(sampled);
        cands
    }

    fn attack_exact(&self, g: &Graph, budget: usize) -> (Graph, bool) {
        let Some(base_energy) = self.filter_energy(&g.adjacency_csr(), g, self.config.seed, true)
        else {
            // Stopped before any candidate was scored: clean graph back.
            return (g.clone(), true);
        };
        let candidates = self.exact_candidates(g, budget);
        // One scan = one spectrum re-derivation per candidate; accounted on
        // the calling thread before the pool region (DESIGN.md §11).
        bbgnn_supervise::note_queries(candidates.len() as u64);
        // Each candidate re-derives the spectrum of its flipped normalized
        // adjacency — the per-candidate cost the paper's Table VII
        // reflects. The incremental path builds that matrix by patching
        // the clean graph's neighbor structure in O(deg) per affected row
        // (bitwise identical bytes, so the same spectrum and the same flip
        // sequence); the dense path rebuilds it from a full graph clone.
        // The rescoring is embarrassingly parallel, so it fans out over the
        // pool (coarse chunking: one Lanczos run per item dwarfs the spawn
        // cost); per-band vectors concatenate in ascending band order, so
        // the scored list — and the stable sort below — is identical for
        // every worker count.
        let norm = crate::incremental::active(self.config.incremental).then(|| {
            bbgnn_linalg::incr::IncrNorm::from_neighbor_lists(
                (0..g.num_nodes())
                    .map(|u| g.neighbors(u).collect())
                    .collect(),
            )
        });
        let pool = ThreadPool::default();
        let mut scored: Vec<(f64, usize, usize)> = pool
            .map_fold_coarse(
                candidates.len(),
                |range| {
                    range
                        .filter_map(|c| {
                            let (u, v) = candidates[c];
                            // A mid-scan supervision stop drops the
                            // remaining candidates (None) rather than
                            // scoring them bogusly. Query-budget stops are
                            // all-or-nothing here (accounted above, before
                            // the region); a timing stop (deadline/cancel)
                            // truncates at a timing-dependent point — the
                            // §11 check-site exception, bounded because the
                            // result is flagged truncated.
                            let energy = if let Some(norm) = &norm {
                                self.filter_energy_normalized(
                                    &norm.flipped_normalized_csr(u, v),
                                    g,
                                    self.config.seed,
                                    false,
                                )?
                            } else {
                                let mut flipped = g.clone();
                                flipped.flip_edge(u, v);
                                self.filter_energy(
                                    &flipped.adjacency_csr(),
                                    g,
                                    self.config.seed,
                                    false,
                                )?
                            };
                            Some((energy - base_energy, u, v))
                        })
                        .collect()
                },
                |mut a: Vec<_>, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .unwrap_or_default();
        // Truncation is judged before the finiteness filter: a dropped
        // candidate means the supervision layer stopped the scan, while a
        // non-finite score is a degenerate spectrum (e.g. an isolated
        // endpoint) that must lose the argsort, not win it as ±inf.
        let truncated = scored.len() < candidates.len();
        scored.retain(|c| c.0.is_finite());
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut poisoned = g.clone();
        for &(_, u, v) in scored.iter().take(budget) {
            poisoned.flip_edge(u, v);
        }
        (poisoned, truncated)
    }

    fn attack_first_order(&self, g: &Graph, budget: usize) -> (Graph, bool) {
        let n = g.num_nodes();
        let an = g.normalized_adjacency();
        let t = self.config.top_eigens.min(n);
        let Some(eig) = lanczos_cached(&an, t, self.config.seed) else {
            return (g.clone(), true);
        };
        // The O(n²) first-order scan queries every pair once; accounted on
        // the calling thread before the pool region (DESIGN.md §11).
        bbgnn_supervise::note_queries((n * n) as u64);
        let ut_x = eig.vectors.matmul_tn(&g.features);
        let energies: Vec<f64> = (0..ut_x.rows())
            .map(|i| ut_x.row(i).iter().map(|v| v * v).sum())
            .collect();
        let deg: Vec<f64> = (0..n).map(|v| g.degree(v) as f64 + 1.0).collect();
        let k = self.config.filter_order as i32;
        // All O(n²) candidates scored in parallel row bands; ascending-band
        // concatenation keeps the list identical for every worker count.
        let pool = ThreadPool::default();
        let mut scored: Vec<(f64, usize, usize)> = pool
            .map_fold(
                n * n,
                |range| {
                    let mut out = Vec::new();
                    for c in range {
                        let (u, v) = (c / n, c % n);
                        if v <= u || !self.config.attacker_nodes.edge_allowed(u, v) {
                            continue;
                        }
                        // Self-loop degrees keep `deg ≥ 1` for the usual
                        // GCN normalization, but guard the division anyway:
                        // a zero or non-finite denominator (isolated node
                        // under a degree convention without self-loops)
                        // would otherwise score the flip ±inf and *win* the
                        // argsort below.
                        let dd = (deg[u] * deg[v]).sqrt();
                        if dd == 0.0 || !dd.is_finite() {
                            continue;
                        }
                        let dw = if g.has_edge(u, v) { -1.0 } else { 1.0 } / dd;
                        let mut d_energy = 0.0;
                        for (i, (&lam, &w)) in eig.values.iter().zip(&energies).enumerate() {
                            let uu = eig.vectors.get(u, i);
                            let uv = eig.vectors.get(v, i);
                            let d_lambda =
                                dw * (2.0 * uu * uv - lam * (uu * uu / deg[u] + uv * uv / deg[v]));
                            d_energy += (k as f64) * lam.powi(k - 1) * w * d_lambda;
                        }
                        if d_energy.is_finite() {
                            out.push((d_energy, u, v));
                        }
                    }
                    out
                },
                |mut a: Vec<_>, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .unwrap_or_default();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut poisoned = g.clone();
        for &(_, u, v) in scored.iter().take(budget) {
            poisoned.flip_edge(u, v);
        }
        (poisoned, false)
    }
}

impl Attacker for GfAttack {
    fn name(&self) -> &'static str {
        "GF-Attack"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let budget = budget_for(g, self.config.rate);
        let _span = bbgnn_obs::span!("attack/gfattack", nodes = g.num_nodes(), budget = budget);
        // Cooperative stop site (DESIGN.md §11): GF-Attack is one scan,
        // so a pre-existing stop skips it entirely; mid-scan stops drop
        // unscored candidates inside the backends.
        let (poisoned, truncated) = if crate::should_stop("attack/gfattack/scan") {
            (g.clone(), true)
        } else {
            match self.config.scoring {
                GfScoring::ExactRecompute => self.attack_exact(g, budget),
                GfScoring::FirstOrder => self.attack_first_order(g, budget),
            }
        };
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn first_order_uses_exactly_the_budget() {
        let g = DatasetSpec::CoraLike.generate(0.05, 91);
        let mut atk = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            ..GfAttackConfig::fast()
        });
        let r = atk.attack(&g);
        assert_eq!(r.edge_flips, budget_for(&g, 0.1));
        assert_eq!(r.feature_flips, 0);
    }

    #[test]
    fn exact_uses_exactly_the_budget() {
        let g = DatasetSpec::CoraLike.generate(0.03, 94);
        let mut atk = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            top_eigens: 8,
            candidate_pool_factor: 5,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert_eq!(r.edge_flips, budget_for(&g, 0.1));
    }

    #[test]
    fn exact_is_slower_than_first_order() {
        // The whole point of the two backends: the paper-faithful exact
        // rescoring pays a per-candidate spectral recomputation.
        let g = DatasetSpec::CoraLike.generate(0.04, 95);
        let mut fast = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            ..GfAttackConfig::fast()
        });
        let mut exact = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            top_eigens: 8,
            candidate_pool_factor: 5,
            ..Default::default()
        });
        let t_fast = fast.attack(&g).elapsed;
        let t_exact = exact.attack(&g).elapsed;
        assert!(
            t_exact > t_fast,
            "exact rescoring ({t_exact:?}) must cost more than first-order ({t_fast:?})"
        );
    }

    #[test]
    fn respects_attacker_subset() {
        let g = DatasetSpec::CoraLike.generate(0.05, 92);
        let subset = AttackerNodes::random_subset(g.num_nodes(), 0.2, 1);
        let allowed = subset.clone();
        let mut atk = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            attacker_nodes: subset,
            ..GfAttackConfig::fast()
        });
        let r = atk.attack(&g);
        for (u, v) in r.poisoned.edges() {
            if !g.has_edge(u, v) {
                assert!(allowed.edge_allowed(u, v));
            }
        }
    }

    #[test]
    fn candidate_pool_is_insertion_ordered() {
        // Regression: the sampled candidate pool used to be drained out of
        // a HashSet, leaking the seeded hash storage order into the scored
        // list. Every HashSet draws a fresh random hasher state, so two
        // calls would disagree if storage order still leaked; the pool must
        // come back in draw order.
        let g = DatasetSpec::CoraLike.generate(0.03, 96);
        let atk = GfAttack::new(GfAttackConfig {
            candidate_pool_factor: 5,
            ..Default::default()
        });
        let budget = budget_for(&g, atk.config.rate);
        assert_eq!(
            atk.exact_candidates(&g, budget),
            atk.exact_candidates(&g, budget)
        );
    }

    #[test]
    fn incremental_exact_matches_dense_path_bitwise() {
        let g = DatasetSpec::CoraLike.generate(0.03, 97);
        let base = GfAttackConfig {
            rate: 0.1,
            top_eigens: 8,
            candidate_pool_factor: 5,
            ..Default::default()
        };
        let run = |cfg: GfAttackConfig| GfAttack::new(cfg).attack(&g);
        let dense = run(base.clone());
        let incr = run(GfAttackConfig {
            incremental: true,
            ..base
        });
        assert_eq!(dense.edge_flips, incr.edge_flips);
        assert_eq!(
            dense.poisoned.content_hash(),
            incr.poisoned.content_hash(),
            "patched-Â_n rescoring must select the exact dense flip set"
        );
    }

    #[test]
    fn isolated_nodes_never_win_with_garbage_scores() {
        // Regression (ISSUE 8 satellite): the first-order score divides by
        // degree-derived quantities; isolated nodes must be scored finitely
        // (via the self-loop convention) or skipped — never selected off a
        // ±inf. Nodes 6..10 are isolated by construction.
        use bbgnn_graph::splits::Split;
        let n = 10;
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let g = bbgnn_graph::Graph::new(
            n,
            &edges,
            bbgnn_linalg::DenseMatrix::identity(n),
            vec![0, 0, 0, 1, 1, 1, 0, 1, 0, 1],
            2,
            Split::trivial(n),
        );
        for cfg in [
            GfAttackConfig {
                rate: 0.3,
                top_eigens: 4,
                ..GfAttackConfig::fast()
            },
            GfAttackConfig {
                rate: 0.3,
                top_eigens: 4,
                candidate_pool_factor: 0,
                ..Default::default()
            },
        ] {
            let budget = budget_for(&g, cfg.rate);
            let mut atk = GfAttack::new(cfg.clone());
            let r = atk.attack(&g);
            assert!(
                r.edge_flips <= budget,
                "budget respected on isolated-node graph"
            );
            let mut again = GfAttack::new(cfg);
            assert_eq!(
                r.poisoned.content_hash(),
                again.attack(&g).poisoned.content_hash(),
                "deterministic on isolated-node graph"
            );
        }
    }

    #[test]
    fn is_deterministic() {
        let g = DatasetSpec::CiteseerLike.generate(0.05, 93);
        let run = |cfg: GfAttackConfig| -> Vec<(usize, usize)> {
            let mut atk = GfAttack::new(cfg);
            atk.attack(&g).poisoned.edges().collect()
        };
        assert_eq!(run(GfAttackConfig::fast()), run(GfAttackConfig::fast()));
        let exact_cfg = GfAttackConfig {
            top_eigens: 8,
            candidate_pool_factor: 3,
            ..Default::default()
        };
        assert_eq!(run(exact_cfg.clone()), run(exact_cfg));
    }
}
