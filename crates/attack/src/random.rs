//! Random edge-flip attack — the sanity-check control.
//!
//! Not a paper baseline, but used throughout the test-suite and benches to
//! confirm that principled attackers beat noise.

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random attack configuration.
#[derive(Clone, Debug)]
pub struct RandomAttackConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomAttackConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            attacker_nodes: AttackerNodes::All,
            seed: 0,
        }
    }
}

/// Flips uniformly random node pairs until the budget is exhausted.
#[derive(Clone, Debug)]
pub struct RandomAttack {
    /// Configuration.
    pub config: RandomAttackConfig,
}

impl RandomAttack {
    /// Creates a random attacker.
    pub fn new(config: RandomAttackConfig) -> Self {
        Self { config }
    }
}

impl Attacker for RandomAttack {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let n = g.num_nodes();
        let budget = budget_for(g, self.config.rate);
        let _span = bbgnn_obs::span!("attack/random", nodes = n, budget = budget);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut poisoned = g.clone();
        let mut flipped = std::collections::HashSet::new();
        let mut guard = 0;
        let mut truncated = false;
        while flipped.len() < budget && guard < budget * 200 + 1000 {
            // Cooperative stop site (DESIGN.md §11): flips so far are kept.
            if crate::should_stop("attack/random/flip") {
                truncated = true;
                break;
            }
            guard += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || !self.config.attacker_nodes.edge_allowed(u, v) {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if !flipped.insert(key) {
                continue;
            }
            poisoned.flip_edge(key.0, key.1);
        }
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn flips_exactly_budget_distinct_pairs() {
        let g = DatasetSpec::CoraLike.generate(0.05, 95);
        let mut atk = RandomAttack::new(RandomAttackConfig::default());
        let r = atk.attack(&g);
        assert_eq!(r.edge_flips, budget_for(&g, 0.1));
    }

    #[test]
    fn seeded_runs_agree() {
        let g = DatasetSpec::CoraLike.generate(0.05, 96);
        let mut a = RandomAttack::new(RandomAttackConfig {
            seed: 5,
            ..Default::default()
        });
        let mut b = RandomAttack::new(RandomAttackConfig {
            seed: 5,
            ..Default::default()
        });
        let e1: Vec<_> = a.attack(&g).poisoned.edges().collect();
        let e2: Vec<_> = b.attack(&g).poisoned.edges().collect();
        assert_eq!(e1, e2);
    }
}
