//! Compare all five attackers of the paper on a citation network.
//!
//! Reproduces in miniature the attacker comparison of Table IV: every
//! attacker poisons the same Cora-like graph at the same budget, a fresh
//! GCN is trained on each poisoned graph, and the resulting accuracy plus
//! the Fig. 2 edge-modification breakdown are printed.
//!
//! ```sh
//! cargo run --release --example citation_attack
//! ```

use bbgnn::prelude::*;

fn main() {
    let graph = DatasetSpec::CoraLike.generate(0.12, 7);
    let rate = 0.1;
    println!(
        "citation graph: {} nodes, {} edges, budget δ = {}\n",
        graph.num_nodes(),
        graph.num_edges(),
        budget_for(&graph, rate)
    );

    let train = TrainConfig::default();
    let mut clean_gcn = Gcn::paper_default(train.clone());
    clean_gcn.fit(&graph);
    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "attacker", "accuracy", "time(s)", "add+same", "add+diff", "del+same", "del+diff"
    );
    println!(
        "{:<10} {:>9.4} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "clean",
        clean_gcn.test_accuracy(&graph),
        "-",
        "-",
        "-",
        "-",
        "-"
    );

    for kind in AttackerKind::paper_rows(rate) {
        let mut attacker = kind.build();
        let result = attacker.attack(&graph);
        let mut gcn = Gcn::paper_default(train.clone());
        gcn.fit(&result.poisoned);
        let acc = gcn.test_accuracy(&result.poisoned);
        let diff = edge_diff_breakdown(&graph, &result.poisoned);
        println!(
            "{:<10} {:>9.4} {:>8.2} {:>9} {:>9} {:>9} {:>9}",
            kind.name(),
            acc,
            result.elapsed.as_secs_f64(),
            diff.add_same,
            diff.add_diff,
            diff.del_same,
            diff.del_diff
        );
    }
    println!("\nLower accuracy = stronger attack. Note the Add+Diff column:");
    println!("effective attackers blur node contexts by adding cross-label edges (Sec. IV-A).");
}
