//! `bbgnn-lint` — the workspace invariant checker (DESIGN.md §9).
//!
//! Walks every governed `.rs` file and enforces the determinism, unsafe-
//! hygiene, panic-path, and obs-taxonomy rules. Report mode only (no
//! `--fix`): output is `file:line: [rule] message`, one finding per line,
//! and the exit code is the contract CI consumes.
//!
//! ```text
//! cargo run -p bbgnn_analysis --bin bbgnn-lint            # lint the cwd workspace
//! cargo run -p bbgnn_analysis --bin bbgnn-lint -- --root /path/to/checkout
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "bbgnn-lint: workspace invariant checker (DESIGN.md \u{a7}9)\n\
                     usage: bbgnn-lint [--root DIR]\n\
                     rules: fma, hash_iter, clock, unsafe, panic, obs_name, fault_site\n\
                     waiver: // lint: allow(<rule>) reason=<why>"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let tax = bbgnn_analysis::taxonomy::builtin()?;
    let report = bbgnn_analysis::lint_workspace(&root, &tax)?;
    for v in &report.violations {
        println!("{}", v.render());
    }
    if report.violations.is_empty() {
        println!(
            "bbgnn-lint: clean — {} files scanned, {} allow directive(s) in effect",
            report.files_scanned, report.allows_used
        );
        Ok(true)
    } else {
        println!(
            "bbgnn-lint: {} violation(s) across {} files scanned",
            report.violations.len(),
            report.files_scanned
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bbgnn-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
