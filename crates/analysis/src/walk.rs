//! Workspace traversal for `bbgnn-lint`.
//!
//! Walks every `.rs` file the invariants govern, in a deterministic
//! (sorted) order so reports diff cleanly between runs. Skipped subtrees:
//!
//! * `target/`, `.git/` — build artifacts and VCS metadata;
//! * `vendor/` — API-compatible stand-ins for crates the build
//!   environment cannot fetch; they are third-party-shaped code the
//!   project's invariants do not govern;
//! * any directory named `fixtures/` — lint-rule test fixtures are
//!   *deliberately* bad code and must not fail the workspace run.

use crate::flow;
use crate::lexer::{lex, Lexed};
use crate::rules::{lint_lexed, FileReport, Violation};
use crate::symbols::Model;
use crate::taxonomy::Taxonomy;
use std::path::{Path, PathBuf};

/// Aggregate result of linting a workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    pub allows_used: usize,
}

const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every governed `.rs` file under `root` (a workspace checkout).
pub fn lint_workspace(root: &Path, tax: &Taxonomy) -> Result<WorkspaceReport, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like the workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = WorkspaceReport::default();
    // Each file is lexed once; the same token stream feeds the per-file
    // pass here and the symbol-graph build below.
    let mut lexed: Vec<(String, Lexed)> = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        lexed.push((rel, lex(&src)));
    }
    for (rel, lx) in &lexed {
        let FileReport {
            mut violations,
            allows_used,
        } = lint_lexed(rel, lx, tax);
        report.files_scanned += 1;
        report.allows_used += allows_used;
        report.violations.append(&mut violations);
    }
    // Pass two: the flow rules over the workspace symbol graph.
    let model = Model::build(&lexed);
    let mut flow_report = flow::analyze(&model, &lexed, tax);
    report.allows_used += flow_report.allows_used;
    report.violations.append(&mut flow_report.violations);
    report
        .violations
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn normalize_rel(root: &Path, f: &str) -> String {
    let p = Path::new(f);
    let p = p.strip_prefix(root).unwrap_or(p);
    let s = p.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

/// Lints the whole workspace but reports only violations in `files`
/// (workspace-relative paths, or absolute paths under `root`). The symbol
/// graph is still built from *every* governed file — `check_site` needs
/// the full call graph even when only a slice of the report is wanted —
/// so this is a focused view of the workspace run, not a shallower
/// analysis. A listed path that doesn't exist under `root` is an error
/// (it would otherwise silently report clean).
pub fn lint_files(
    root: &Path,
    tax: &Taxonomy,
    files: &[String],
) -> Result<WorkspaceReport, String> {
    let want: Vec<String> = files.iter().map(|f| normalize_rel(root, f)).collect();
    for rel in &want {
        if !root.join(rel).is_file() {
            return Err(format!("--files: {rel} not found under {}", root.display()));
        }
    }
    let mut report = lint_workspace(root, tax)?;
    report
        .violations
        .retain(|v| want.iter().any(|w| w == &v.file));
    Ok(report)
}
