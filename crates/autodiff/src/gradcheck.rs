//! Finite-difference gradient checking.
//!
//! Every autodiff op in this workspace is validated against central
//! differences. The checker rebuilds the tape from scratch for every probe,
//! so the closure must be a pure function of its input matrices.

use crate::{Tape, TensorId};
use bbgnn_linalg::DenseMatrix;

/// Compares the analytic gradient of `f` with central finite differences.
///
/// `f` receives a fresh tape plus the variable ids for `inputs` (in order)
/// and must return a scalar (`1 × 1`) output tensor. Returns the maximum
/// absolute deviation across all inputs and coordinates.
pub fn max_gradient_error(
    inputs: &[DenseMatrix],
    eps: f64,
    f: impl Fn(&mut Tape, &[TensorId]) -> TensorId,
) -> f64 {
    // Analytic gradients.
    let mut tape = Tape::new();
    let ids: Vec<TensorId> = inputs.iter().map(|m| tape.var(m.clone())).collect();
    let out = f(&mut tape, &ids);
    tape.backward(out);
    let analytic: Vec<DenseMatrix> = ids
        .iter()
        .zip(inputs)
        .map(|(&id, m)| {
            tape.grad(id)
                .cloned()
                .unwrap_or_else(|| DenseMatrix::zeros(m.rows(), m.cols()))
        })
        .collect();

    let eval = |probe: &[DenseMatrix]| -> f64 {
        let mut t = Tape::new();
        let ids: Vec<TensorId> = probe.iter().map(|m| t.var(m.clone())).collect();
        let out = f(&mut t, &ids);
        t.value(out).get(0, 0)
    };

    let mut max_err = 0.0_f64;
    for (k, m) in inputs.iter().enumerate() {
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let mut plus: Vec<DenseMatrix> = inputs.to_vec();
                plus[k].add_at(i, j, eps);
                let mut minus: Vec<DenseMatrix> = inputs.to_vec();
                minus[k].add_at(i, j, -eps);
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let err = (numeric - analytic[k].get(i, j)).abs();
                max_err = max_err.max(err);
            }
        }
    }
    max_err
}

/// Asserts the gradient of `f` matches finite differences to within `tol`.
///
/// # Panics
/// Panics with the observed error if the check fails.
pub fn assert_gradients(
    inputs: &[DenseMatrix],
    tol: f64,
    f: impl Fn(&mut Tape, &[TensorId]) -> TensorId,
) {
    let err = max_gradient_error(inputs, 1e-5, f);
    assert!(
        err < tol,
        "gradient check failed: max error {err} >= tol {tol}"
    );
}
