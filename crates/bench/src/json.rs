//! Re-export shim: the JSON implementation moved to
//! [`bbgnn_scenario::json`] (PR 7) so job specs and the `bbgnn-serve`
//! wire format can share it. The historical `bbgnn_bench::json::Json`
//! path keeps working through this re-export.

pub use bbgnn_scenario::json::*;
