//! Harness-level tests: the runner produces paper-shaped tables end to end
//! at miniature scale.

use bbgnn::prelude::*;
use bbgnn_bench::report::{mark_extreme, Table};
use bbgnn_bench::runner::{evaluate_defender, evaluate_defender_timed, AttackRow};

#[test]
fn one_table_cell_end_to_end() {
    let g = DatasetSpec::CoraLike.generate(0.05, 701);
    let row = AttackRow::Kind(AttackerKind::Peega(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    }));
    let (poisoned, result) = row.poison(&g);
    assert!(result.is_some());
    let cell = evaluate_defender(&DefenderKind::Gcn, &poisoned, 2, 0);
    assert!(cell.mean > 0.2 && cell.mean < 1.0);
}

#[test]
fn timed_evaluation_reports_positive_seconds() {
    let g = DatasetSpec::CoraLike.generate(0.04, 702);
    let (acc, secs) = evaluate_defender_timed(&DefenderKind::Gcn, &g, 2, 0);
    assert!(acc.mean > 0.0);
    assert!(secs.mean > 0.0);
}

#[test]
fn different_seeds_produce_run_variance() {
    let g = DatasetSpec::CoraLike.generate(0.05, 703);
    let stats = evaluate_defender(&DefenderKind::Gcn, &g, 3, 0);
    // With dropout on, repeated runs should not be identical.
    assert!(stats.std > 0.0, "expected nonzero run-to-run variance");
}

#[test]
fn rendered_table_contains_all_cells() {
    let mut t = Table::new(&["Attacker", "GCN", "GNAT"]);
    t.push_row(vec![
        "Clean".into(),
        "83.36±0.19".into(),
        "85.52±0.15".into(),
    ]);
    t.push_row(vec![
        "PEEGA".into(),
        "75.31±0.75".into(),
        "83.12±0.43".into(),
    ]);
    mark_extreme(&mut t, &[1, 2], true, ("(", ")"));
    let rendered = t.render();
    assert!(rendered.contains("(85.52±0.15)"));
    assert!(rendered.contains("(83.12±0.43)"));
    assert!(rendered.contains("75.31±0.75"));
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn clean_row_then_attack_rows_ordering() {
    let rows = AttackRow::paper_rows(0.05);
    let names: Vec<String> = rows.iter().map(|r| r.name()).collect();
    assert_eq!(
        names,
        vec!["Clean", "PGD", "MinMax", "Metattack", "GF-Attack", "PEEGA"]
    );
}
