// Fixture: linted under the kernels.rs path, an `unsafe` block without a
// `// SAFETY:` comment must fire `unsafe`.
pub fn undocumented(x: &[f64]) -> f64 {
    unsafe { *x.as_ptr() }
}
