//! Fixture sink file: stands in for `crates/linalg/src/kernels.rs` in the
//! graph tests. `matmul_into` loops (a real sink); `threads` is a
//! non-looping accessor and must NOT count as one.

pub struct Ws {
    pub rows: usize,
}

impl Ws {
    pub fn threads(&self) -> usize {
        1
    }
}

pub fn matmul_into(ws: &mut Ws) {
    for r in 0..ws.rows {
        touch(ws, r);
    }
}

fn touch(_: &mut Ws, _: usize) {}
