//! Seeded, deterministic fault injection (DESIGN.md §11).
//!
//! A fault plan is installed from `BBGNN_FAULTS=<seed>:<spec>` where
//! `<spec>` is a comma-separated list of `site[@n]` items: the named site
//! fires on its `n`-th invocation (1-based; bare `site` means `@1`).
//! Every site is a named, cataloged injection point
//! ([`FAULT_SITES`], mirrored in DESIGN.md §11 and enforced by
//! `bbgnn-lint`'s `fault_site` rule), and each shot carries a seed derived
//! deterministically from the plan seed, the site name, and the invocation
//! index — so an injected NaN lands at the same matrix entry and an
//! injected corruption flips the same byte on every replay.
//!
//! With no plan installed, [`fault_at`] is one relaxed atomic load — the
//! same zero-cost-off contract as `bbgnn-obs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// The closed catalog of injection sites. Adding a site means adding it
/// here **and** to the DESIGN.md §11 catalog (bbgnn-lint cross-checks the
/// literals at every `fault_at` call site against §11).
pub const FAULT_SITES: &[&str] = &[
    "fault/dataset_io",
    "fault/kernel_nan",
    "fault/pool_panic",
    "fault/store_corrupt",
    "fault/store_short_write",
];

/// Fast gate: whether any fault plan is installed.
static FAULTS_ON: AtomicBool = AtomicBool::new(false);

struct SiteState {
    /// 1-based invocation indices at which this site fires.
    fire_at: Vec<u64>,
    /// Invocations seen so far.
    calls: AtomicU64,
}

struct Plan {
    seed: u64,
    sites: HashMap<String, SiteState>,
}

static PLAN: RwLock<Option<Plan>> = RwLock::new(None);

/// One firing of an injection site.
#[derive(Clone, Copy, Debug)]
pub struct FaultShot {
    /// Deterministic per-shot seed (plan seed ⊕ site ⊕ invocation index).
    pub seed: u64,
}

impl FaultShot {
    /// Deterministically picks an index in `0..n` (`0` when `n == 0`).
    pub fn pick(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (splitmix(self.seed) % n as u64) as usize
    }
}

/// SplitMix64 finalizer — the same mixing idiom the retry policy uses.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shot_seed(plan_seed: u64, site: &str, invocation: u64) -> u64 {
    // FNV-1a over the site name, mixed with the plan seed and call index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(plan_seed ^ h ^ invocation.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Validates a `<seed>:<site>[@n][,…]` spec without installing it — the
/// `--faults` flag parser checks specs up front, then installs them in
/// the init phase alongside budgets and signal handlers.
pub fn validate(spec: &str) -> Result<(), String> {
    parse_plan(spec).map(|_| ())
}

/// Installs a fault plan from a `<seed>:<site>[@n][,…]` spec, replacing
/// any previous plan. Unknown site names are rejected against
/// [`FAULT_SITES`].
pub fn install(spec: &str) -> Result<(), String> {
    let plan = parse_plan(spec)?;
    if let Ok(mut p) = PLAN.write() {
        *p = Some(plan);
        FAULTS_ON.store(true, Ordering::Relaxed);
        super::ACTIVE.store(true, Ordering::Relaxed);
    }
    Ok(())
}

fn parse_plan(spec: &str) -> Result<Plan, String> {
    let (seed_text, sites_text) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec {spec:?} is not <seed>:<site>[@n][,...]"))?;
    let seed: u64 = seed_text
        .trim()
        .parse()
        .map_err(|_| format!("fault seed {seed_text:?} is not an unsigned integer"))?;
    let mut sites: HashMap<String, SiteState> = HashMap::new();
    for item in sites_text.split(',').filter(|i| !i.trim().is_empty()) {
        let item = item.trim();
        let (name, nth) = match item.split_once('@') {
            None => (item, 1),
            Some((name, n)) => (
                name,
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("fault item {item:?}: @n must be a 1-based count"))?,
            ),
        };
        if !FAULT_SITES.contains(&name) {
            return Err(format!(
                "unknown fault site {name:?} (catalog: {})",
                FAULT_SITES.join(", ")
            ));
        }
        sites
            .entry(name.to_string())
            .or_insert_with(|| SiteState {
                fire_at: Vec::new(),
                calls: AtomicU64::new(0),
            })
            .fire_at
            .push(nth);
    }
    if sites.is_empty() {
        return Err(format!("fault spec {spec:?} names no sites"));
    }
    Ok(Plan { seed, sites })
}

/// Removes any installed plan (tests; idempotent). Leaves the master
/// supervision gate to [`super::shutdown`].
pub(crate) fn clear() {
    FAULTS_ON.store(false, Ordering::Relaxed);
    if let Ok(mut p) = PLAN.write() {
        *p = None;
    }
}

/// Polls the named injection site: `Some(shot)` iff an installed plan
/// says this invocation fires. One relaxed load when no plan is
/// installed. The site literal must come from the DESIGN.md §11 catalog
/// (lint rule `fault_site`).
pub fn fault_at(site: &str) -> Option<FaultShot> {
    if !FAULTS_ON.load(Ordering::Relaxed) {
        return None;
    }
    let guard = PLAN.read().ok()?;
    let plan = guard.as_ref()?;
    let state = plan.sites.get(site)?;
    let invocation = state.calls.fetch_add(1, Ordering::Relaxed) + 1;
    if !state.fire_at.contains(&invocation) {
        return None;
    }
    bbgnn_obs::counter("supervise/faults_injected", 1);
    Some(FaultShot {
        seed: shot_seed(plan.seed, site, invocation),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::shutdown();
        guard
    }

    #[test]
    fn off_by_default() {
        let _g = locked();
        assert!(fault_at("fault/dataset_io").is_none());
    }

    #[test]
    fn fires_on_the_nth_call_only() {
        let _g = locked();
        install("7:fault/dataset_io@3").unwrap();
        assert!(fault_at("fault/dataset_io").is_none());
        assert!(fault_at("fault/dataset_io").is_none());
        assert!(fault_at("fault/dataset_io").is_some(), "third call fires");
        assert!(fault_at("fault/dataset_io").is_none(), "one-shot");
        assert!(fault_at("fault/kernel_nan").is_none(), "other sites quiet");
        crate::shutdown();
    }

    #[test]
    fn bare_site_means_first_call_and_lists_compose() {
        let _g = locked();
        install("7:fault/store_corrupt,fault/kernel_nan@2").unwrap();
        assert!(fault_at("fault/store_corrupt").is_some());
        assert!(fault_at("fault/kernel_nan").is_none());
        assert!(fault_at("fault/kernel_nan").is_some());
        crate::shutdown();
    }

    #[test]
    fn shot_seeds_are_deterministic_and_site_distinct() {
        let _g = locked();
        install("42:fault/kernel_nan,fault/pool_panic").unwrap();
        let a = fault_at("fault/kernel_nan").unwrap().seed;
        let b = fault_at("fault/pool_panic").unwrap().seed;
        crate::shutdown();
        install("42:fault/kernel_nan,fault/pool_panic").unwrap();
        let a2 = fault_at("fault/kernel_nan").unwrap().seed;
        assert_eq!(a, a2, "replaying the plan must replay the shot seed");
        assert_ne!(a, b, "different sites must draw different seeds");
        let idx = FaultShot { seed: a }.pick(100);
        assert_eq!(idx, FaultShot { seed: a }.pick(100));
        assert!(idx < 100);
        assert_eq!(FaultShot { seed: a }.pick(0), 0);
        crate::shutdown();
    }

    #[test]
    fn spec_grammar_rejects_malformed() {
        assert!(install("no-colon").is_err());
        assert!(install("x:fault/dataset_io").is_err(), "seed must parse");
        assert!(install("1:").is_err(), "must name at least one site");
        assert!(install("1:fault/bogus").is_err(), "unknown site rejected");
        assert!(install("1:fault/dataset_io@0").is_err(), "@n is 1-based");
        assert!(install("1:fault/dataset_io@x").is_err());
    }

    #[test]
    fn same_site_may_fire_on_multiple_invocations() {
        let _g = locked();
        install("9:fault/store_short_write@1,fault/store_short_write@3").unwrap();
        assert!(fault_at("fault/store_short_write").is_some());
        assert!(fault_at("fault/store_short_write").is_none());
        assert!(fault_at("fault/store_short_write").is_some());
        crate::shutdown();
    }
}
