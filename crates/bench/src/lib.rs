//! Experiment harness for the paper reproduction.
//!
//! Every table and figure of the evaluation section has a dedicated binary
//! in `src/bin/` (see `DESIGN.md` §2 for the full index). The harness
//! provides the shared pieces:
//!
//! * [`config::ExpConfig`] — scale / runs / rate / seed, from CLI flags or
//!   `BBGNN_*` environment variables;
//! * [`runner`] — attack generation and repeated-run defender evaluation;
//! * [`report`] — fixed-width table printing plus CSV/JSON dumps under
//!   `results/`.
//!
//! All binaries print the same rows/series the paper reports and write a
//! machine-readable copy next to them.

#![deny(missing_docs)]

pub mod config;
pub mod report;
pub mod runner;
