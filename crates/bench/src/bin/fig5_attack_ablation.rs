//! Fig. 5 — ablation on PEEGA's attack types.
//!
//! (a) PEEGA restricted to feature perturbations (FP), topology
//!     modifications (TM), and both (TM+FP) across perturbation rates,
//!     evaluated by GCN accuracy. Target: TM ≈ TM+FP ≪ FP in attack
//!     strength (feature flips contribute little at equal cost).
//! (b) Feature-cost sweep β ∈ {0.1, …, 1.0} with `S_f = S_f / β`: the
//!     number of feature vs. topology modifications, and the GCN / GNAT
//!     accuracy per β. Target: feature modifications decrease with β; GCN
//!     accuracy dips at intermediate β; GNAT stays flat and on top.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::evaluate_defender};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig5_attack_ablation"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);

    // ---- (a) attack-space ablation across rates -------------------------
    println!("\n--- Fig 5(a): GCN accuracy under PEEGA variants ---\n");
    let mut table_a = Table::new(&["rate", "FP", "TM", "TM+FP"]);
    for &rate in &[0.05, 0.1, 0.15, 0.2] {
        let mut cells = vec![format!("{rate}")];
        for space in [AttackSpace::FeatureOnly, AttackSpace::TopologyOnly, AttackSpace::Both] {
            let mut atk = Peega::new(PeegaConfig { rate, space, ..Default::default() });
            let poisoned = atk.attack(&g).poisoned;
            let stats = evaluate_defender(&DefenderKind::Gcn, &poisoned, cfg.runs, cfg.seed);
            cells.push(stats.to_string());
        }
        table_a.push_row(cells);
    }
    table_a.emit(&cfg.out_dir, "fig5a_attack_space");

    // ---- (b) feature-cost sweep -----------------------------------------
    println!("\n--- Fig 5(b): feature-cost β sweep at rate {} ---\n", cfg.rate);
    let mut table_b = Table::new(&[
        "beta",
        "feature mods",
        "topology mods",
        "GCN acc",
        "GNAT acc",
    ]);
    for &beta in &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut atk = Peega::new(PeegaConfig { rate: cfg.rate, beta, ..Default::default() });
        let result = atk.attack(&g);
        let gcn = evaluate_defender(&DefenderKind::Gcn, &result.poisoned, cfg.runs, cfg.seed);
        let gnat = evaluate_defender(
            &DefenderKind::Gnat(GnatConfig::default()),
            &result.poisoned,
            cfg.runs,
            cfg.seed,
        );
        table_b.push_row(vec![
            format!("{beta}"),
            result.feature_flips.to_string(),
            result.edge_flips.to_string(),
            gcn.to_string(),
            gnat.to_string(),
        ]);
    }
    table_b.emit(&cfg.out_dir, "fig5b_beta_sweep");
    println!("\npaper: feature mods shrink as β grows; GNAT dominates GCN throughout.");
}
