//! Execution-context facade.
//!
//! The compute substrate — the scoped thread pool, the blocked kernels,
//! and the workspace arena — lives in [`bbgnn_linalg::kernels`], because
//! `bbgnn` (this crate) is the *top* of the dependency graph: every layer
//! from the autodiff tape to the attackers needs the kernels, so they must
//! sit below all of them, not up here. This module re-exports the
//! execution types so applications can reach them from the facade without
//! depending on `bbgnn_linalg` directly.
//!
//! ## The determinism contract
//!
//! Every threaded kernel is **bitwise identical** to its single-threaded
//! naive reference for every worker count: workers own disjoint output
//! rows, and the per-element accumulation order over the inner dimension
//! never changes. `BBGNN_THREADS=1` and `BBGNN_THREADS=64` produce the
//! same bytes in every table and figure (CI enforces this).
//!
//! ## Choosing a thread count
//!
//! * Most code paths read the `BBGNN_THREADS` environment variable once
//!   per process ([`env_threads`]), defaulting to the machine's available
//!   parallelism.
//! * Configs with a `threads: usize` field (`PeegaConfig`,
//!   `PeegaParallelConfig`, the bench harness) treat `0` as "defer to
//!   `BBGNN_THREADS`" and any other value as an explicit pin —
//!   [`ExecContext::with_threads`] implements that convention.

pub use bbgnn_linalg::kernels::{default_threads, env_threads};
pub use bbgnn_linalg::{ExecContext, ThreadPool, Workspace};
