//! Cross-attacker behavioural tests: parameter variants, degenerate
//! budgets, and comparative sanity (principled attacks beat noise).

use bbgnn_attack::gfattack::{GfAttack, GfAttackConfig};
use bbgnn_attack::metattack::{Metattack, MetattackConfig};
use bbgnn_attack::peega::{AttackSpace, ObjectiveNodes, Peega, PeegaConfig};
use bbgnn_attack::peega_parallel::{PeegaParallel, PeegaParallelConfig};
use bbgnn_attack::random::{RandomAttack, RandomAttackConfig};
use bbgnn_attack::{budget_for, Attacker, AttackerNodes};
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::datasets::DatasetSpec;
use bbgnn_graph::Graph;

fn graph(seed: u64) -> Graph {
    DatasetSpec::CoraLike.generate(0.05, seed)
}

fn gcn_acc(g: &Graph) -> f64 {
    let mut accs = Vec::new();
    for s in 0..2 {
        let mut gcn = Gcn::paper_default(TrainConfig {
            seed: s,
            ..TrainConfig::fast_test()
        });
        gcn.fit(g);
        accs.push(gcn.test_accuracy(g));
    }
    accs.iter().sum::<f64>() / accs.len() as f64
}

#[test]
fn peega_all_norm_orders_produce_valid_attacks() {
    let g = graph(401);
    for &p in &[1.0, 2.0, 3.0] {
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.05,
            p,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(
            r.edge_flips + r.feature_flips > 0,
            "p={p} attack did nothing"
        );
        assert!(r.edge_flips + r.feature_flips <= budget_for(&g, 0.05));
    }
}

#[test]
fn peega_all_depths_produce_valid_attacks() {
    let g = graph(402);
    for hops in 1..=4 {
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.05,
            hops,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(
            r.edge_flips + r.feature_flips > 0,
            "hops={hops} attack did nothing"
        );
    }
}

#[test]
fn peega_lambda_changes_the_attack() {
    // A strong global view must eventually steer the greedy selection; a
    // tiny λ may coincide with λ = 0 on small graphs, so the contrast is
    // taken at a high weight and a generous budget.
    let g = DatasetSpec::CoraLike.generate(0.08, 403);
    let edges_at = |lambda: f64| -> Vec<(usize, usize)> {
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            lambda,
            ..Default::default()
        });
        atk.attack(&g).poisoned.edges().collect()
    };
    assert_ne!(
        edges_at(0.0),
        edges_at(0.5),
        "the global view must influence selection"
    );
}

#[test]
fn peega_objective_nodes_variants() {
    let g = graph(404);
    for nodes in [
        ObjectiveNodes::Train,
        ObjectiveNodes::All,
        ObjectiveNodes::Custom(g.split.test.clone()),
    ] {
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.05,
            objective_nodes: nodes,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips + r.feature_flips > 0);
    }
}

#[test]
#[should_panic(expected = "objective node set is empty")]
fn peega_empty_objective_panics() {
    let g = graph(405);
    let mut atk = Peega::new(PeegaConfig {
        objective_nodes: ObjectiveNodes::Custom(vec![]),
        ..Default::default()
    });
    let _ = atk.attack(&g);
}

#[test]
fn minimal_budget_attacks_one_edge() {
    let g = graph(406);
    let mut atk = Peega::new(PeegaConfig {
        rate: 1e-9,
        ..Default::default()
    });
    let r = atk.attack(&g);
    assert_eq!(
        r.edge_flips + r.feature_flips,
        1,
        "rate→0 floors at one modification"
    );
}

#[test]
fn peega_beats_random_attack() {
    let g = DatasetSpec::CoraLike.generate(0.08, 407);
    let mut peega = Peega::new(PeegaConfig {
        rate: 0.15,
        ..Default::default()
    });
    let mut random = RandomAttack::new(RandomAttackConfig {
        rate: 0.15,
        ..Default::default()
    });
    let acc_peega = gcn_acc(&peega.attack(&g).poisoned);
    let acc_random = gcn_acc(&random.attack(&g).poisoned);
    assert!(
        acc_peega < acc_random,
        "gradient-guided PEEGA ({acc_peega}) must beat noise ({acc_random})"
    );
}

#[test]
fn sequential_peega_at_least_matches_parallel() {
    // The greedy one-flip-per-gradient selection conditions each flip on
    // the previous ones; the one-shot relaxation cannot do better on
    // average. (Checked on two graph seeds to damp noise.)
    let mut seq_total = 0.0;
    let mut par_total = 0.0;
    for seed in [408u64, 409] {
        let g = DatasetSpec::CoraLike.generate(0.08, seed);
        let mut seq = Peega::new(PeegaConfig {
            rate: 0.15,
            ..Default::default()
        });
        let mut par = PeegaParallel::new(PeegaParallelConfig {
            rate: 0.15,
            ..Default::default()
        });
        seq_total += gcn_acc(&seq.attack(&g).poisoned);
        par_total += gcn_acc(&par.attack(&g).poisoned);
    }
    assert!(
        seq_total <= par_total + 0.05,
        "sequential ({seq_total}) should not lose clearly to parallel ({par_total})"
    );
}

#[test]
fn metattack_retrain_frequency_changes_flips() {
    let g = graph(410);
    let edges_at = |every: usize| -> Vec<(usize, usize)> {
        let mut atk = Metattack::new(MetattackConfig {
            rate: 0.1,
            retrain_every: every,
            ..Default::default()
        });
        atk.attack(&g).poisoned.edges().collect()
    };
    assert_ne!(edges_at(1), edges_at(1000), "surrogate refresh must matter");
}

#[test]
fn gfattack_is_valid_across_spectral_budgets() {
    // The flip set may coincide across T when one eigendirection dominates
    // the filter energy, so only validity is asserted per configuration.
    let g = graph(411);
    for &(t, k) in &[(1usize, 2u32), (4, 2), (64, 2), (16, 1), (16, 3)] {
        let mut atk = GfAttack::new(GfAttackConfig {
            rate: 0.1,
            top_eigens: t,
            filter_order: k,
            ..GfAttackConfig::fast()
        });
        let r = atk.attack(&g);
        assert_eq!(r.edge_flips, budget_for(&g, 0.1), "T={t} K={k}");
    }
}

#[test]
fn attacker_subset_feature_only() {
    let g = graph(412);
    let allowed = AttackerNodes::random_subset(g.num_nodes(), 0.3, 1);
    let mut atk = Peega::new(PeegaConfig {
        rate: 0.1,
        space: AttackSpace::FeatureOnly,
        attacker_nodes: allowed.clone(),
        ..Default::default()
    });
    let r = atk.attack(&g);
    assert!(r.feature_flips > 0);
    for v in 0..g.num_nodes() {
        for i in 0..g.feature_dim() {
            if g.features.get(v, i) != r.poisoned.features.get(v, i) {
                assert!(allowed.contains(v));
            }
        }
    }
}

#[test]
fn peega_poison_transfers_to_graphsage() {
    // PEEGA optimizes against a linear-GCN surrogate; the poison must
    // still transfer to a mean-aggregator victim.
    use bbgnn_gnn::sage::GraphSage;
    // Scale 0.1: at 0.08 clean GraphSAGE barely trains (accuracy ~0.32),
    // which makes the clean-vs-poisoned comparison meaningless.
    let g = DatasetSpec::CoraLike.generate(0.1, 613);
    let mut clean = GraphSage::new(16, TrainConfig::fast_test());
    clean.fit(&g);
    let clean_acc = clean.test_accuracy(&g);
    let mut atk = Peega::new(PeegaConfig {
        rate: 0.25,
        ..Default::default()
    });
    let poisoned = atk.attack(&g).poisoned;
    let mut victim = GraphSage::new(16, TrainConfig::fast_test());
    victim.fit(&poisoned);
    let poisoned_acc = victim.test_accuracy(&poisoned);
    assert!(
        poisoned_acc < clean_acc,
        "PEEGA should transfer to GraphSAGE: {clean_acc} -> {poisoned_acc}"
    );
}

#[test]
fn all_attackers_preserve_node_count_and_labels() {
    let g = graph(413);
    let attackers: Vec<Box<dyn Attacker>> = vec![
        Box::new(Peega::new(PeegaConfig {
            rate: 0.05,
            ..Default::default()
        })),
        Box::new(PeegaParallel::new(PeegaParallelConfig {
            rate: 0.05,
            steps: 10,
            ..Default::default()
        })),
        Box::new(Metattack::new(MetattackConfig {
            rate: 0.05,
            retrain_every: 20,
            ..Default::default()
        })),
        Box::new(GfAttack::new(GfAttackConfig {
            rate: 0.05,
            ..GfAttackConfig::fast()
        })),
        Box::new(RandomAttack::new(RandomAttackConfig {
            rate: 0.05,
            ..Default::default()
        })),
    ];
    for mut atk in attackers {
        let r = atk.attack(&g);
        assert_eq!(r.poisoned.num_nodes(), g.num_nodes(), "{}", atk.name());
        assert_eq!(
            r.poisoned.labels,
            g.labels,
            "{} must not touch labels",
            atk.name()
        );
        assert_eq!(
            r.poisoned.split.train,
            g.split.train,
            "{} must not touch splits",
            atk.name()
        );
    }
}
