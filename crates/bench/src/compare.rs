//! Perf-regression comparison between two `BENCH_kernels.json` documents.
//!
//! The CI `perf` job re-runs `kernel_bench` on the pull request and compares
//! it against the committed baseline with `kernel_bench --compare
//! BENCH_kernels.json`. The gated metric is the **median speedup over the
//! naive reference kernel**, not absolute seconds: the naive kernel runs on
//! the same machine in the same interleaved timing group, so the ratio
//! cancels out CI-runner speed differences and only an actual kernel
//! regression moves it.
//!
//! A run fails when any blocked kernel's ratio drops below
//! [`DEFAULT_MIN_RATIO`] × baseline (i.e. a >35 % slowdown), or when a row
//! the baseline machine is guaranteed to share with the current machine
//! (thread counts 1/2/4 are always benchmarked) has gone missing. Rows for
//! machine-specific thread counts (e.g. `matmul@16t` from a bigger box) are
//! skipped, not failed.

use crate::json::Json;
use std::collections::BTreeMap;

/// Minimum allowed `current / baseline` ratio of the median speedup before
/// the comparison fails: 0.65 ⇔ a >35 % slowdown is a regression. Chosen
/// loose enough that shared-runner noise (which the naive-relative metric
/// already mostly cancels) does not flake the gate.
pub const DEFAULT_MIN_RATIO: f64 = 0.65;

/// Thread counts `kernel_bench` benchmarks on every machine, regardless of
/// core count — rows at these counts must exist in both documents.
const ALWAYS_PRESENT_THREADS: [usize; 3] = [1, 2, 4];

/// One kernel row that regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Row key, `"<kernel>@<threads>t"`.
    pub key: String,
    /// Baseline median speedup over the naive reference.
    pub baseline: f64,
    /// Current median speedup over the naive reference.
    pub current: f64,
}

impl Regression {
    /// `current / baseline` — below the threshold by construction.
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }
}

/// Outcome of comparing a current benchmark document against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Rows present in both documents and gated.
    pub checked: usize,
    /// Row keys present in only one document at a machine-specific thread
    /// count — informational, not a failure.
    pub skipped: Vec<String>,
    /// Guaranteed row keys (threads 1/2/4) missing from the current run.
    pub missing: Vec<String>,
    /// Rows that slowed down past the threshold.
    pub regressions: Vec<Regression>,
}

impl CompareReport {
    /// Whether the gate passes: at least one row compared, nothing missing,
    /// nothing regressed.
    pub fn passed(&self) -> bool {
        self.checked > 0 && self.missing.is_empty() && self.regressions.is_empty()
    }

    /// Human-readable multi-line summary for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate: {} row(s) compared, {} skipped\n",
            self.checked,
            self.skipped.len()
        ));
        for key in &self.skipped {
            out.push_str(&format!(
                "  skipped {key} (machine-specific thread count)\n"
            ));
        }
        for key in &self.missing {
            out.push_str(&format!(
                "  MISSING {key}: baseline row absent from current run\n"
            ));
        }
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION {}: median speedup {:.2}x -> {:.2}x ({:.0}% of baseline)\n",
                r.key,
                r.baseline,
                r.current,
                r.ratio() * 100.0
            ));
        }
        if self.passed() {
            out.push_str("perf gate: PASS\n");
        } else {
            out.push_str("perf gate: FAIL\n");
        }
        out
    }
}

/// `"<kernel>@<threads>t"` → (threads, median speedup) for every gated row
/// of one document. Naive reference rows (`*_naive`, speedup ≡ 1) define
/// the metric and are never gated themselves.
fn gated_rows(doc: &Json) -> Result<BTreeMap<String, (usize, f64)>, String> {
    let results = doc
        .as_object()
        .and_then(|o| o.get("results"))
        .and_then(Json::as_array)
        .ok_or("document has no `results` array")?;
    let mut out = BTreeMap::new();
    for row in results {
        let fields = row.as_object().ok_or("result row is not an object")?;
        let kernel = fields
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("result row has no kernel name")?;
        if kernel.ends_with("_naive") {
            continue;
        }
        let threads = fields
            .get("threads")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("row {kernel}: no thread count"))?;
        // Older baselines predate the median fields; fall back to best-of.
        let speedup = fields
            .get("median_speedup_vs_naive")
            .or_else(|| fields.get("speedup_vs_naive"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("row {kernel}@{threads}t: no speedup metric"))?;
        if !(speedup.is_finite() && speedup > 0.0) {
            return Err(format!(
                "row {kernel}@{threads}t: speedup {speedup} not usable"
            ));
        }
        out.insert(format!("{kernel}@{threads}t"), (threads, speedup));
    }
    Ok(out)
}

/// Compares `current` against `baseline`, failing rows whose median speedup
/// ratio drops below `min_ratio`. Errors only on malformed documents —
/// regressions are reported, not errored, so the caller controls the exit
/// code.
pub fn compare_docs(
    baseline: &Json,
    current: &Json,
    min_ratio: f64,
) -> Result<CompareReport, String> {
    let base = gated_rows(baseline)?;
    let cur = gated_rows(current)?;
    let mut report = CompareReport {
        checked: 0,
        skipped: Vec::new(),
        missing: Vec::new(),
        regressions: Vec::new(),
    };
    for (key, &(threads, base_speedup)) in &base {
        match cur.get(key) {
            Some(&(_, cur_speedup)) => {
                report.checked += 1;
                if cur_speedup < base_speedup * min_ratio {
                    report.regressions.push(Regression {
                        key: key.clone(),
                        baseline: base_speedup,
                        current: cur_speedup,
                    });
                }
            }
            None if ALWAYS_PRESENT_THREADS.contains(&threads) => {
                report.missing.push(key.clone());
            }
            None => report.skipped.push(key.clone()),
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            report.skipped.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, usize, f64)]) -> Json {
        Json::object([(
            "results".to_string(),
            Json::Array(
                rows.iter()
                    .map(|&(kernel, threads, speedup)| {
                        Json::object([
                            ("kernel".to_string(), Json::string(kernel)),
                            ("threads".to_string(), Json::number_usize(threads)),
                            (
                                "median_speedup_vs_naive".to_string(),
                                Json::number_f64(speedup),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(&[
            ("matmul_naive", 1, 1.0),
            ("matmul", 1, 2.0),
            ("matmul", 4, 6.0),
            ("spmm", 4, 3.0),
        ]);
        let r = compare_docs(&d, &d, DEFAULT_MIN_RATIO).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.checked, 3, "naive rows must not be gated");
    }

    #[test]
    fn slowdown_past_threshold_fails_but_mild_noise_passes() {
        let base = doc(&[("spmm", 4, 4.0), ("matmul", 4, 6.0)]);
        // 20% slower: inside the noise budget.
        let mild = doc(&[("spmm", 4, 3.2), ("matmul", 4, 6.0)]);
        assert!(compare_docs(&base, &mild, DEFAULT_MIN_RATIO)
            .unwrap()
            .passed());
        // 40% slower: regression.
        let bad = doc(&[("spmm", 4, 2.4), ("matmul", 4, 6.0)]);
        let r = compare_docs(&base, &bad, DEFAULT_MIN_RATIO).unwrap();
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].key, "spmm@4t");
        assert!(r.render().contains("REGRESSION spmm@4t"));
    }

    #[test]
    fn guaranteed_rows_must_exist_but_big_box_rows_are_skipped() {
        let base = doc(&[("matmul", 2, 3.0), ("matmul", 16, 10.0)]);
        let cur = doc(&[("matmul", 2, 3.0)]);
        let r = compare_docs(&base, &cur, DEFAULT_MIN_RATIO).unwrap();
        assert!(r.passed(), "a 16-thread row only exists on big machines");
        assert_eq!(r.skipped, vec!["matmul@16t".to_string()]);

        let gone = doc(&[("matmul", 16, 10.0)]);
        let r = compare_docs(&base, &gone, DEFAULT_MIN_RATIO).unwrap();
        assert!(!r.passed(), "threads=2 is benchmarked everywhere");
        assert_eq!(r.missing, vec!["matmul@2t".to_string()]);
    }

    #[test]
    fn empty_comparison_does_not_pass_vacuously() {
        let empty = doc(&[]);
        let r = compare_docs(&empty, &empty, DEFAULT_MIN_RATIO).unwrap();
        assert!(!r.passed());
    }

    #[test]
    fn legacy_baseline_without_median_field_still_compares() {
        let legacy = Json::parse(
            r#"{"results": [{"kernel": "spmm", "threads": 4, "speedup_vs_naive": 3.0}]}"#,
        )
        .unwrap();
        let cur = doc(&[("spmm", 4, 2.9)]);
        let r = compare_docs(&legacy, &cur, DEFAULT_MIN_RATIO).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.checked, 1);
    }

    #[test]
    fn malformed_documents_error_instead_of_passing() {
        let good = doc(&[("spmm", 4, 3.0)]);
        assert!(compare_docs(&Json::parse("{}").unwrap(), &good, 0.65).is_err());
        let no_metric = Json::parse(r#"{"results": [{"kernel": "spmm", "threads": 4}]}"#).unwrap();
        assert!(compare_docs(&good, &no_metric, 0.65).is_err());
    }
}
