//! `trace_report` — aggregates a `BBGNN_TRACE` JSONL trace into tables.
//!
//! Usage: `trace_report <trace.jsonl>`. Validates the trace (every line
//! must parse, every span must balance — a corrupt or truncated trace is a
//! nonzero exit naming the offending line), then prints:
//!
//! * the per-span-name wall-time table (count / total ms / self ms);
//! * counter totals and per-kernel call/time aggregates;
//! * the per-epoch training timeline as CSV (when the trace holds
//!   `train/epoch` events).

use bbgnn_bench::trace::read_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: trace_report <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let summary = match read_trace(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: invalid trace: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "trace {path}: {} records, {} events\n",
        summary.records, summary.events
    );
    print!("{}", summary.span_table());
    println!();
    print!("{}", summary.counter_table());
    if !summary.epochs.is_empty() {
        println!();
        print!("{}", summary.epoch_csv());
    }
}
