//! Fixture: the same driver shape, but the loop consults the stop handle
//! before each step — supervised per §11, so `check_site` stays quiet.

pub struct Driver {
    pub iters: usize,
}

impl Driver {
    pub fn sweep(&self, h: &Handle, ws: &mut Ws) {
        for _ in 0..self.iters {
            if h.should_stop() {
                break;
            }
            self.step(ws);
        }
    }

    fn step(&self, ws: &mut Ws) {
        matmul_into(ws);
    }
}
