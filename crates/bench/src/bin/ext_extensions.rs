//! Extensions bench — the two future-work directions of Sec. VI,
//! implemented and measured against the published variants.
//!
//! (a) **PEEGA-P** (Gumbel-relaxed parallel sampling, cf. PTDNet) vs.
//!     sequential PEEGA: attack strength (GCN accuracy) and wall-clock
//!     across budgets. Target: PEEGA-P's runtime is flat in the budget
//!     while sequential PEEGA's grows linearly; sequential PEEGA stays the
//!     stronger attack.
//! (b) **GNAT+prune** (augmentation + dissimilar-edge removal) vs. GNAT:
//!     accuracy on PEEGA- and Metattack-poisoned graphs. Target: pruning
//!     adds a further margin when features are informative.

use bbgnn::attack::peega_parallel::{PeegaParallel, PeegaParallelConfig};
use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::evaluate_defender};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("ext_extensions"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);

    // ---- (a) sequential vs parallel PEEGA --------------------------------
    println!("\n--- Extension (a): PEEGA vs PEEGA-P across budgets ---\n");
    let mut table_a = Table::new(&[
        "rate",
        "PEEGA acc",
        "PEEGA time(s)",
        "PEEGA-P acc",
        "PEEGA-P time(s)",
    ]);
    for &rate in &[0.05, 0.1, 0.2] {
        let mut seq = Peega::new(PeegaConfig {
            rate,
            ..Default::default()
        });
        let r_seq = seq.attack(&g);
        let acc_seq = evaluate_defender(&DefenderKind::Gcn, &r_seq.poisoned, cfg.runs, cfg.seed);

        let mut par = PeegaParallel::new(PeegaParallelConfig {
            rate,
            ..Default::default()
        });
        let r_par = par.attack(&g);
        let acc_par = evaluate_defender(&DefenderKind::Gcn, &r_par.poisoned, cfg.runs, cfg.seed);

        table_a.push_row(vec![
            format!("{rate}"),
            acc_seq.to_string(),
            format!("{:.2}", r_seq.elapsed.as_secs_f64()),
            acc_par.to_string(),
            format!("{:.2}", r_par.elapsed.as_secs_f64()),
        ]);
        eprintln!("[rate {rate} done]");
    }
    table_a.emit(&cfg.out_dir, "ext_peega_parallel");

    // ---- (b) GNAT vs GNAT+prune -------------------------------------------
    println!("\n--- Extension (b): GNAT vs GNAT+prune ---\n");
    let mut table_b = Table::new(&["attacker", "GCN", "GNAT", "GNAT+prune"]);
    let attacks: Vec<(&str, Graph)> = vec![
        ("PEEGA", {
            let mut a = Peega::new(PeegaConfig {
                rate: cfg.rate,
                ..Default::default()
            });
            a.attack(&g).poisoned
        }),
        ("Metattack", {
            let mut a = Metattack::new(MetattackConfig {
                rate: cfg.rate,
                retrain_every: 5,
                ..Default::default()
            });
            a.attack(&g).poisoned
        }),
    ];
    for (name, poisoned) in &attacks {
        let gcn = evaluate_defender(&DefenderKind::Gcn, poisoned, cfg.runs, cfg.seed);
        let gnat = evaluate_defender(
            &DefenderKind::Gnat(GnatConfig::default()),
            poisoned,
            cfg.runs,
            cfg.seed,
        );
        let pruned = evaluate_defender(
            &DefenderKind::Gnat(GnatConfig {
                prune_threshold: Some(0.02),
                ..Default::default()
            }),
            poisoned,
            cfg.runs,
            cfg.seed,
        );
        table_b.push_row(vec![
            name.to_string(),
            gcn.to_string(),
            gnat.to_string(),
            pruned.to_string(),
        ]);
        eprintln!("[{name} done]");
    }
    table_b.emit(&cfg.out_dir, "ext_gnat_prune");
    println!("\nSec. VI: parallel sampling makes the attack cost budget-independent");
    println!("(flat PEEGA-P times vs. PEEGA's linear growth) at comparable strength;");
    println!("add+remove knowledge (GNAT+prune) can further boost GNAT.");
}
