//! Pro-GNN (Jin et al. 2020) — joint graph-structure learning defense.
//!
//! Pro-GNN learns a purified dense adjacency `S` jointly with the GCN
//! parameters by alternating optimization of
//!
//! ```text
//!   min_{θ, S}  γ L_gnn(θ, S) + μ ‖S − Â‖_F² + α ‖S‖₁ + β ‖S‖_*
//!             + λ tr(X̂ᵀ L_S X̂)
//! ```
//!
//! subject to `S ∈ [0,1]^{n×n}` symmetric. Each outer epoch (a) trains the
//! GCN a few inner epochs on the current `S`, (b) takes a gradient step on
//! the differentiable terms — the GNN loss gradient flows through the GCN
//! normalization of the dense `S` variable; the fidelity and feature-
//! smoothness gradients are analytic — and (c) applies the proximal
//! operators: ℓ1 soft-thresholding and singular-value shrinkage (the
//! nuclear-norm prox, via randomized SVD), followed by projection onto the
//! symmetric box. The repeated SVDs make Pro-GNN by far the slowest
//! defender, exactly as Table VIII reports.

use crate::Defender;
use bbgnn_autodiff::Tape;
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::{TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::svd::singular_value_shrink;
use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext};
use std::rc::Rc;

/// [`singular_value_shrink`] warm-started from the artifact store. The
/// proximal step is the dominant cost of every `svd_every`-th outer epoch
/// and is a pure function of the structure matrix plus its knobs, so a
/// resumed or repeated Pro-GNN run replays it from disk.
fn shrink_cached(s: &DenseMatrix, tau: f64, rank: usize, seed: u64) -> DenseMatrix {
    let key = bbgnn_store::enabled().then(|| {
        bbgnn_store::Key::new("factors/shrink")
            .hash_field("s", s.content_hash())
            .field("tau", tau)
            .field("rank", rank)
            .field("seed", seed)
    });
    if let Some(key) = &key {
        if let Some(m) = bbgnn_store::lookup::<DenseMatrix>(key) {
            return m;
        }
    }
    let out = singular_value_shrink(s, tau, rank, seed);
    if let Some(key) = &key {
        bbgnn_store::publish(key, &out);
    }
    out
}

/// Pro-GNN configuration. Defaults follow the reference implementation's
/// Cora settings scaled to this workspace's graph sizes.
#[derive(Clone, Debug)]
pub struct ProGnnConfig {
    /// Outer (structure-learning) epochs.
    pub outer_epochs: usize,
    /// Inner GCN epochs per outer epoch.
    pub inner_epochs: usize,
    /// Structure learning rate.
    pub lr_s: f64,
    /// ℓ1 sparsity weight `α`.
    pub alpha: f64,
    /// Nuclear-norm weight `β`.
    pub beta: f64,
    /// GNN-loss weight `γ`.
    pub gamma: f64,
    /// Feature-smoothness weight `λ`.
    pub lambda_smooth: f64,
    /// Fidelity weight `μ` on `‖S − Â‖_F²`.
    pub mu: f64,
    /// Apply the (expensive) nuclear prox every this many outer epochs.
    pub svd_every: usize,
    /// Rank budget of the randomized SVD inside the nuclear prox (clamped
    /// to `n`; keep it near `n` — aggressive truncation destroys the
    /// learned structure rather than regularizing it).
    pub svd_rank: usize,
    /// Training configuration (inner and final GCN fits).
    pub train: TrainConfig,
}

impl Default for ProGnnConfig {
    fn default() -> Self {
        Self {
            outer_epochs: 12,
            inner_epochs: 5,
            lr_s: 0.5,
            alpha: 1e-3,
            beta: 0.05,
            gamma: 5.0,
            lambda_smooth: 5e-3,
            mu: 0.1,
            svd_every: 4,
            svd_rank: usize::MAX,
            train: TrainConfig::default(),
        }
    }
}

/// The Pro-GNN defender.
pub struct ProGnn {
    /// Configuration.
    pub config: ProGnnConfig,
    gcn: Gcn,
    learned_an: Option<Rc<CsrMatrix>>,
}

impl ProGnn {
    /// Creates an untrained Pro-GNN defender.
    pub fn new(config: ProGnnConfig) -> Self {
        let inner = TrainConfig {
            epochs: config.inner_epochs,
            patience: 0,
            dropout: 0.0,
            ..config.train.clone()
        };
        let gcn = Gcn::paper_default(inner);
        Self {
            config,
            gcn,
            learned_an: None,
        }
    }

    /// Pairwise squared feature distances `D[u][v] = ‖x_u − x_v‖²` — the
    /// (constant) gradient of the feature-smoothness term.
    fn feature_distance_matrix(x: &DenseMatrix) -> DenseMatrix {
        // ‖x_u − x_v‖² = ‖x_u‖² + ‖x_v‖² − 2 x_u·x_v.
        let gram = x.matmul_nt(x);
        let sq: Vec<f64> = (0..x.rows()).map(|i| gram.get(i, i)).collect();
        let n = x.rows();
        let mut d = DenseMatrix::zeros(n, n);
        for u in 0..n {
            for v in 0..n {
                d.set(u, v, (sq[u] + sq[v] - 2.0 * gram.get(u, v)).max(0.0));
            }
        }
        d
    }

    /// Gradient of the GNN loss with respect to the dense structure `S`,
    /// holding the current GCN weights fixed. The tape runs on `ctx`, so
    /// successive outer epochs reuse the same thread pool and workspace
    /// buffers.
    fn gnn_loss_grad(
        &self,
        s: &DenseMatrix,
        g: &Graph,
        ctx: &Rc<ExecContext>,
        eye: &Rc<DenseMatrix>,
    ) -> DenseMatrix {
        let w = self.gcn.weights();
        let mut tape = Tape::with_context(Rc::clone(ctx));
        let sv = tape.var(s.clone());
        let a_loop = tape.add_const(sv, Rc::clone(eye));
        let deg = tape.row_sum(a_loop);
        let dinv = tape.pow_scalar(deg, -0.5);
        let scaled = tape.scale_rows(a_loop, dinv);
        let an = tape.scale_cols(scaled, dinv);
        let xw0 = tape.constant(g.features.matmul(&w[0]));
        let h1 = tape.matmul(an, xw0);
        let h1 = tape.relu(h1);
        let w1 = tape.constant(w[1].clone());
        let hw = tape.matmul(h1, w1);
        let logits = tape.matmul(an, hw);
        let loss = tape.cross_entropy(
            logits,
            Rc::new(g.labels.clone()),
            Rc::new(g.split.train.clone()),
        );
        tape.backward(loss);
        // lint: allow(panic) reason=sv is a tape.var leaf on the path to loss, so backward always populates its gradient
        tape.grad(sv).expect("structure gradient").clone()
    }

    /// The learned purified adjacency (normalized), if fitted.
    pub fn learned_adjacency(&self) -> Option<&Rc<CsrMatrix>> {
        self.learned_an.as_ref()
    }
}

impl NodeClassifier for ProGnn {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/prognn/fit", nodes = g.num_nodes());
        let cfg = self.config.clone();
        let n = g.num_nodes();
        let a_hat = g.adjacency_dense();
        let mut s = a_hat.clone();
        let smooth_grad = Self::feature_distance_matrix(&g.features);
        let mut last_report = None;
        // One execution context + identity constant for every outer
        // epoch's structure-gradient tape.
        let ctx = ExecContext::shared_from_env();
        let eye = Rc::new(DenseMatrix::identity(n));

        for outer in 0..cfg.outer_epochs {
            // Cooperative stop site (DESIGN.md §11): the final full GCN fit
            // below still runs on the structure learned so far, so a stop
            // degrades to fewer alternating rounds, not a missing model.
            if bbgnn_supervise::stop_reason("prognn/outer").is_some() {
                break;
            }
            // (a) Inner GCN fit on the current structure.
            let an = Rc::new(CsrMatrix::from_dense(&s, 1e-4).gcn_normalize());
            last_report = Some(self.gcn.fit_on(g, Rc::clone(&an)));

            // (b) Gradient step on the differentiable terms.
            let mut grad = self.gnn_loss_grad(&s, g, &ctx, &eye).scale(cfg.gamma);
            // Fidelity: ∇ μ‖S − Â‖² = 2μ(S − Â).
            grad.axpy(2.0 * cfg.mu, &s.sub(&a_hat));
            // Smoothness: ∇ λ tr(XᵀL_S X) = (λ/2) D.
            grad.axpy(0.5 * cfg.lambda_smooth, &smooth_grad);
            s.axpy(-cfg.lr_s, &grad);

            // (c) Proximal operators and projection.
            let shrink = cfg.lr_s * cfg.alpha;
            s.map_inplace(|v| {
                // ℓ1 soft threshold then box projection.
                let shrunk = if v > shrink {
                    v - shrink
                } else if v < -shrink {
                    v + shrink
                } else {
                    0.0
                };
                shrunk.clamp(0.0, 1.0)
            });
            if cfg.svd_every > 0 && (outer + 1) % cfg.svd_every == 0 {
                s = shrink_cached(
                    &s,
                    cfg.lr_s * cfg.beta,
                    cfg.svd_rank.min(n),
                    cfg.train.seed.wrapping_add(outer as u64),
                );
                s.map_inplace(|v| v.clamp(0.0, 1.0));
            }
            s.symmetrize();
            for i in 0..n {
                s.set(i, i, 0.0);
            }
        }

        // Final full GCN fit on the learned structure.
        let an = Rc::new(CsrMatrix::from_dense(&s, 1e-4).gcn_normalize());
        self.learned_an = Some(Rc::clone(&an));
        let mut final_gcn = Gcn::paper_default(cfg.train.clone());
        let report = final_gcn.fit_on(g, an);
        self.gcn = final_gcn;
        let _ = last_report;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        // lint: allow(panic) reason=documented precondition — callers must fit() first
        let an = self.learned_an.as_ref().expect("model is not trained");
        self.gcn.logits_on(&g.features, an).row_argmax()
    }
}

impl Defender for ProGnn {
    fn name(&self) -> String {
        "Pro-GNN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    fn small_cfg() -> ProGnnConfig {
        // Miniature graphs (~150 nodes, 15 train labels) give the GNN-loss
        // gradient little signal; gentler structure-learning dynamics than
        // the experiment-scale defaults keep the test meaningful.
        ProGnnConfig {
            outer_epochs: 8,
            inner_epochs: 3,
            svd_every: 4,
            lr_s: 0.05,
            alpha: 5e-4,
            gamma: 1.0,
            lambda_smooth: 1e-3,
            mu: 1.0,
            train: TrainConfig::fast_test(),
            ..Default::default()
        }
    }

    #[test]
    fn feature_distance_matrix_is_correct() {
        let x = DenseMatrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0]]);
        let d = ProGnn::feature_distance_matrix(&x);
        assert_eq!(d.get(0, 0), 0.0);
        assert!((d.get(0, 1) - 25.0).abs() < 1e-12);
        assert!((d.get(1, 0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn learns_clean_graph() {
        let g = DatasetSpec::CoraLike.generate(0.05, 141);
        let mut p = ProGnn::new(small_cfg());
        p.fit(&g);
        let acc = p.test_accuracy(&g);
        assert!(acc > 0.5, "Pro-GNN clean accuracy {acc} too low");
    }

    #[test]
    fn recovers_accuracy_on_poisoned_graph() {
        use bbgnn_attack::peega::{Peega, PeegaConfig};
        use bbgnn_attack::Attacker;
        let g = DatasetSpec::CoraLike.generate(0.06, 142);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
        gcn.fit(&poisoned);
        let gcn_acc = gcn.test_accuracy(&poisoned);
        let mut p = ProGnn::new(small_cfg());
        p.fit(&poisoned);
        let pro_acc = p.test_accuracy(&poisoned);
        assert!(
            pro_acc > gcn_acc - 0.05,
            "Pro-GNN ({pro_acc}) should not collapse below GCN ({gcn_acc})"
        );
    }
}
