//! Table VIII — defender training time (seconds) on the clean graphs.
//!
//! Cells are scenario [`Job`]s with a `defense_time` evaluation, run
//! fault-isolated and checkpointed to
//! `results/table8_defense_time.checkpoint.json` (timings resume verbatim,
//! so a resumed table matches the interrupted run byte for byte).
//!
//! Reproduction targets: GCN is fastest; GNAT costs only a small constant
//! factor over GCN (one GCN per augmented view); Pro-GNN is slower than
//! everything else by an order of magnitude or more.

use bbgnn::prelude::*;
use bbgnn::scenario::dataset::paper_specs;
use bbgnn::scenario::job::{EvalKind, EvalSpec, Job, JobSpec};
use bbgnn_bench::{config::ExpConfig, fault::FaultRunner, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("table8_defense_time"));
    let ctx = ExecContext::from_env();
    let mut harness = FaultRunner::new(&cfg, "table8_defense_time");

    let specs = match paper_specs(cfg.dataset.as_deref()) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut headers = vec!["Model".to_string()];
    headers.extend(specs.iter().map(|s| format!("{} (s)", s.name())));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let graphs: Vec<(DatasetSpec, Graph)> = specs
        .iter()
        .map(|s| (s.clone(), s.generate(cfg.scale, cfg.seed)))
        .collect();

    // Union of all model names; cells are filled when the model applies to
    // the dataset (GCN-Jaccard / GNAT's feature view skip Polblogs).
    let all_columns = DefenderKind::paper_columns(false);
    for kind in &all_columns {
        let mut cells = vec![kind.name()];
        for (spec, g) in &graphs {
            let applicable = DefenderKind::paper_columns(spec.identity_features())
                .iter()
                .any(|k| {
                    k.name() == kind.name()
                        || (kind.name() == "GNAT" && k.name().starts_with("GNAT"))
                });
            if !applicable {
                cells.push("-".to_string());
                continue;
            }
            let concrete = if kind.name() == "GNAT" && spec.identity_features() {
                DefenderKind::Gnat(GnatConfig::without_feature_view())
            } else {
                kind.clone()
            };
            let job_spec = JobSpec {
                dataset: spec.name().to_string(),
                eval: EvalSpec {
                    kind: EvalKind::DefenseTime,
                    runs: cfg.runs,
                    scale: cfg.scale,
                    rate: cfg.rate,
                },
                seed: cfg.seed,
                ..JobSpec::default()
            };
            let job = Job::from_parts(
                format!("{}/{}", spec.name(), kind.name()),
                job_spec,
                None,
                concrete,
            );
            cells.push(harness.job(job, &ctx, Some(g)));
        }
        table.push_row(cells);
    }
    table.emit(&cfg.out_dir, "table8_defense_time");
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper ordering: GCN < GNAT < GCN-Jaccard ≈ RGCN < GAT ≈ SimPGCN");
    println!("< GCN-SVD << Pro-GNN.");
}
