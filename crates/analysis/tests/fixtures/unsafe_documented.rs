// Fixture: linted under the kernels.rs path, a SAFETY-documented block
// passes — including with attribute lines between comment and fn.
pub fn documented(x: &[f64]) -> f64 {
    assert!(!x.is_empty());
    // SAFETY: the assert above guarantees the pointer reads in bounds.
    unsafe { *x.as_ptr() }
}

// SAFETY: callers uphold `i < len`; the attribute line between this
// comment and the fn must not break the upward scan.
#[inline(never)]
unsafe fn raw_get(p: *const f64, i: usize) -> f64 {
    unsafe { *p.add(i) } // SAFETY: trailing comments count too.
}
