//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `vec` / `select` /
//! bool strategies, the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing inputs are *not*
//! shrunk — the failing case index and seed are reported instead, which is
//! enough to reproduce deterministically.

#![deny(missing_docs)]

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a) so every test has a
    /// stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding fair random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn pick(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `elem` and length `len`.
    pub fn vec<S: Strategy, L: IntoLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy produced by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Nested strategy-module namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each function body runs `cases` times with
/// freshly drawn inputs; `prop_assert*` failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(message) = outcome {
                    panic!(
                        "proptest case {case}/{} failed: {message}",
                        config.cases
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Tuple + map + vec composition works.
        #[test]
        fn composed_strategies(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn select_picks_members(p in prop::sample::select(vec![1.0f64, 2.0, 3.0])) {
            prop_assert!(p == 1.0 || p == 2.0 || p == 3.0);
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0usize..4, 0usize..4).prop_map(|(a, b)| a + b);
        let mut rng = crate::TestRng::deterministic("prop_map_applies");
        for _ in 0..50 {
            assert!(strat.pick(&mut rng) <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
