//! Attack-side wiring for the incremental rescore engine
//! (`bbgnn_linalg::incr`, DESIGN.md §13).
//!
//! The engine itself lives in the linalg layer and knows nothing about
//! graphs or the artifact store; this module bridges both:
//!
//! * [`active`] resolves per-attacker `incremental` config fields against
//!   the process-global `--incremental` / `BBGNN_INCR` switch.
//! * [`engine_for`] builds an [`IncrProp`] from a [`Graph`], warm-started
//!   from the artifact store when enabled (keyed by graph content hash +
//!   hops — the same anti-aliasing discipline as `prep/propagate`).
//! * [`commit_edge_flip`] / [`commit_feature_flip`] forward committed
//!   perturbations into the engine and publish a store checkpoint of the
//!   maintained state at every resync boundary, keyed by the engine's
//!   [`state_hash`](IncrProp::state_hash) (graph structure + feature bits
//!   + step index), so two different flip histories can never alias.
//!
//! Everything here is byte-transparent: the engine's maintained `H` is
//! bitwise identical to the dense `propagate` path, so attackers running
//! with `--incremental` commit exactly the flip sequence the dense path
//! commits (the §13 contract, enforced by the CI incremental-parity job).

use bbgnn_graph::Graph;
use bbgnn_linalg::incr::{IncrConfig, IncrProp};
use bbgnn_linalg::DenseMatrix;

/// Whether an attacker configured with `incremental` should take the
/// incremental path: its own flag OR the process-global
/// `--incremental` / `BBGNN_INCR` switch.
pub fn active(flag: bool) -> bool {
    flag || bbgnn_linalg::incr::enabled()
}

/// Engine configuration from the environment (`BBGNN_INCR_RESYNC`,
/// `BBGNN_INCR_SHADOW`), surfacing malformed values loudly at attack
/// start rather than silently falling back.
fn env_config(hops: usize) -> IncrConfig {
    // lint: allow(panic) reason=malformed BBGNN_INCR_* environment is a configuration error; failing loudly at attack start matches the CLI layer's exit-on-bad-flag behavior
    IncrConfig::from_env(hops).expect("invalid BBGNN_INCR_* environment")
}

/// Store key for the engine's maintained hop `k`, anti-aliased by the
/// engine's full state hash (graph structure + feature bits + depth +
/// step index).
fn state_key(state_hash: u64, hop: usize) -> bbgnn_store::Key {
    bbgnn_store::Key::new("incr/state")
        .hash_field("state", state_hash)
        .field("hop", hop)
}

/// Builds the incremental engine for `g` with propagation depth `hops`.
///
/// With the store enabled, the step-0 state (the initial full
/// propagation — the expensive part of construction) is warm-started
/// from `incr/state` artifacts published by a previous run over the same
/// graph, and published for the next run on a cold start.
pub fn engine_for(g: &Graph, hops: usize) -> IncrProp {
    let cfg = env_config(hops);
    let nbrs: Vec<Vec<usize>> = (0..g.num_nodes())
        .map(|u| g.neighbors(u).collect())
        .collect();
    if bbgnn_store::enabled() {
        // The step-0 state hash is derivable without building the engine:
        // it is a pure function of structure + features + hops + step 0,
        // which from_neighbor_lists_restored reproduces.
        let probe = bbgnn_linalg::incr::IncrNorm::from_neighbor_lists(nbrs.clone());
        let mut hasher = bbgnn_linalg::content_hash::Fnv1a::new();
        hasher.bytes(b"incr-state");
        hasher.u64(probe.structure_hash());
        hasher.u64(g.features.content_hash());
        hasher.usize(hops);
        hasher.usize(0);
        let h0 = hasher.finish();
        let restored: Option<Vec<DenseMatrix>> = (0..hops)
            .map(|k| bbgnn_store::lookup::<DenseMatrix>(&state_key(h0, k)))
            .collect();
        if let Some(hop_mats) = restored {
            if let Ok(engine) = IncrProp::from_neighbor_lists_restored(
                nbrs.clone(),
                g.features.clone(),
                &cfg,
                hop_mats,
            ) {
                debug_assert_eq!(engine.state_hash(), h0);
                return engine;
            }
        }
        let engine = IncrProp::from_neighbor_lists(nbrs, g.features.clone(), &cfg);
        publish_state(&engine);
        engine
    } else {
        IncrProp::from_neighbor_lists(nbrs, g.features.clone(), &cfg)
    }
}

/// Publishes every maintained hop matrix under the engine's current
/// state hash.
fn publish_state(engine: &IncrProp) {
    let state_hash = engine.state_hash();
    for (k, m) in engine.hop_matrices().iter().enumerate() {
        bbgnn_store::publish(&state_key(state_hash, k), m);
    }
}

/// Checkpoints the maintained state to the artifact store when the last
/// commit ended in a resync (the configured checkpoint cadence).
fn checkpoint_if_resynced(engine: &IncrProp) {
    if engine.resynced() && bbgnn_store::enabled() {
        publish_state(engine);
    }
}

/// Commits one undirected edge flip into the engine and checkpoints at
/// resync boundaries.
pub fn commit_edge_flip(engine: &mut IncrProp, u: usize, v: usize) {
    engine.flip_edge(u, v);
    checkpoint_if_resynced(engine);
}

/// Commits one feature write into the engine and checkpoints at resync
/// boundaries.
pub fn commit_feature_flip(engine: &mut IncrProp, v: usize, i: usize, value: f64) {
    engine.set_feature(v, i, value);
    checkpoint_if_resynced(engine);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn engine_matches_graph_propagate_bitwise() {
        let g = DatasetSpec::CoraLike.generate(0.03, 71);
        let engine = engine_for(&g, 2);
        let dense = g.propagate(2);
        assert_eq!(engine.propagated().shape(), dense.shape());
        for (a, b) in engine.propagated().as_slice().iter().zip(dense.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "engine H diverges from propagate");
        }
    }

    #[test]
    fn committed_flips_track_graph_mutations_bitwise() {
        let g = DatasetSpec::CoraLike.generate(0.03, 72);
        let mut engine = engine_for(&g, 2);
        let mut poisoned = g.clone();
        // Mixed sequence: add, delete, feature flip.
        let (u, v) = (0usize, 5usize);
        poisoned.flip_edge(u, v);
        commit_edge_flip(&mut engine, u, v);
        let (a, b) = (1usize, 2usize);
        poisoned.flip_edge(a, b);
        commit_edge_flip(&mut engine, a, b);
        let new_val = poisoned.flip_feature(3, 1);
        commit_feature_flip(&mut engine, 3, 1, new_val);
        let dense = poisoned.propagate(2);
        for (x, y) in engine.propagated().as_slice().iter().zip(dense.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "engine H diverges after commits");
        }
    }

    #[test]
    fn active_respects_flag_and_global() {
        bbgnn_linalg::incr::set_enabled(false);
        assert!(!active(false));
        assert!(active(true));
        bbgnn_linalg::incr::set_enabled(true);
        assert!(active(false));
        bbgnn_linalg::incr::set_enabled(false);
    }
}
