//! A hand-rolled, line-oriented Rust lexer.
//!
//! `bbgnn-lint`'s rules are lexical: they match token shapes (`.unwrap(`,
//! `Instant :: now`, `unsafe`), not a parse tree. What makes that sound
//! enough for an invariant checker is that this lexer is **comment- and
//! string-aware**: the word `unsafe` inside a doc comment, a `"panic!"`
//! string literal, or a raw-string lint fixture never produces an `Ident`
//! token, so rules only ever see real code. Comments are not discarded —
//! they are collected separately, because two rules read them (`// SAFETY:`
//! justifications and `// lint: allow(...)` suppressions).
//!
//! The lexer handles the Rust surface that matters for not mis-tokenizing
//! real files: line and block comments (nested), string / raw-string /
//! byte-string / char literals with escapes, lifetimes vs. char literals,
//! raw identifiers, and numeric literals. It deliberately does **not**
//! build an AST — see DESIGN.md §9 for why the project lints at the token
//! level (no external deps, no `syn`).

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, ...).
    Punct,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    /// `text` holds the *contents* (raw, escapes not processed).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Numeric literal (`42`, `1.0e-3`, `0xff_u8`).
    Num,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with its 1-based line range and full text
/// (markers stripped for line comments, kept verbatim for block comments'
/// interior).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if `line` carries at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Token vectors are line-sorted; a binary search would work, but
        // files are small and rules call this a handful of times per
        // violation candidate.
        self.toks.iter().any(|t| t.line == line)
    }

    /// True if `line` is covered by a comment.
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line)
    }

    /// Concatenated text of all comments covering `line`.
    pub fn comment_text_on(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs (a file that ends inside a string) consume to EOF, which is
/// the forgiving behavior a linter wants on in-progress code.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `idx` past one quoted literal starting at the opening quote,
    // honoring backslash escapes and counting newlines.
    fn skip_quoted(b: &[char], mut idx: usize, quote: char, line: &mut u32) -> (usize, String) {
        let mut text = String::new();
        idx += 1; // opening quote
        while idx < b.len() {
            match b[idx] {
                '\\' => {
                    if idx + 1 < b.len() {
                        if b[idx + 1] == '\n' {
                            *line += 1;
                        }
                        text.push(b[idx + 1]);
                        idx += 2;
                        continue;
                    }
                    idx += 1;
                }
                c if c == quote => return (idx + 1, text),
                '\n' => {
                    *line += 1;
                    text.push('\n');
                    idx += 1;
                }
                c => {
                    text.push(c);
                    idx += 1;
                }
            }
        }
        (idx, text)
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                // Line comment (including /// and //! doc comments).
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comment, nested.
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut text = String::new();
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        text.push(b[j]);
                        j += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text,
                });
                i = j;
            }
            '"' => {
                let tline = line;
                let (ni, text) = skip_quoted(&b, i, '"', &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: tline,
                });
                i = ni;
            }
            '\'' => {
                // Lifetime/label vs. char literal. After the quote: a
                // backslash means char literal; an identifier char whose
                // *following* char is not a closing quote means lifetime.
                let tline = line;
                if i + 1 < b.len() && b[i + 1] == '\\' {
                    let (ni, text) = skip_quoted(&b, i, '\'', &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line: tline,
                    });
                    i = ni;
                } else if i + 1 < b.len()
                    && is_ident_start(b[i + 1])
                    && !(i + 2 < b.len() && b[i + 2] == '\'')
                {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                        line: tline,
                    });
                    i = j;
                } else {
                    let (ni, text) = skip_quoted(&b, i, '\'', &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line: tline,
                    });
                    i = ni;
                }
            }
            c if c.is_ascii_digit() => {
                let tline = line;
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if is_ident_continue(d) {
                        // Exponent sign: 1e-3, 2.5E+7.
                        if (d == 'e' || d == 'E')
                            && j + 1 < b.len()
                            && (b[j + 1] == '+' || b[j + 1] == '-')
                            && j + 2 < b.len()
                            && b[j + 2].is_ascii_digit()
                        {
                            j += 2;
                        }
                        j += 1;
                    } else if d == '.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                        // Decimal point, but not the `..` of a range.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line: tline,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                // Raw-string / byte-string prefixes and raw identifiers
                // must be peeled off before maximal-munch identifiers:
                // r"..", r#".."#, br".."/b"..", b'.', r#ident.
                let tline = line;
                let rest_starts_raw = |j: usize| -> Option<(usize, usize)> {
                    // From position j (at 'r'), match r#*" and return
                    // (index of opening quote, hash count).
                    let mut k = j + 1;
                    let mut hashes = 0usize;
                    while k < b.len() && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < b.len() && b[k] == '"' {
                        Some((k, hashes))
                    } else {
                        None
                    }
                };
                let lex_raw = |i: usize, quote_at: usize, hashes: usize, line: &mut u32| {
                    // Scan for `"` followed by `hashes` hash marks.
                    let mut j = quote_at + 1;
                    let mut text = String::new();
                    while j < b.len() {
                        if b[j] == '"' {
                            let mut h = 0usize;
                            while h < hashes && j + 1 + h < b.len() && b[j + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                return (j + 1 + hashes, text);
                            }
                        }
                        if b[j] == '\n' {
                            *line += 1;
                        }
                        text.push(b[j]);
                        j += 1;
                    }
                    let _ = i;
                    (j, text)
                };
                if c == 'r' && i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') {
                    if let Some((q, h)) = rest_starts_raw(i) {
                        let (ni, text) = lex_raw(i, q, h, &mut line);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text,
                            line: tline,
                        });
                        i = ni;
                        continue;
                    }
                    // `r#ident` raw identifier.
                    if b[i + 1] == '#' && i + 2 < b.len() && is_ident_start(b[i + 2]) {
                        let mut j = i + 2;
                        while j < b.len() && is_ident_continue(b[j]) {
                            j += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: b[i + 2..j].iter().collect(),
                            line: tline,
                        });
                        i = j;
                        continue;
                    }
                }
                if c == 'b' && i + 1 < b.len() {
                    if b[i + 1] == '"' {
                        let (ni, text) = skip_quoted(&b, i + 1, '"', &mut line);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text,
                            line: tline,
                        });
                        i = ni;
                        continue;
                    }
                    if b[i + 1] == '\'' {
                        let (ni, text) = skip_quoted(&b, i + 1, '\'', &mut line);
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text,
                            line: tline,
                        });
                        i = ni;
                        continue;
                    }
                    if b[i + 1] == 'r' {
                        if let Some((q, h)) = rest_starts_raw(i + 1) {
                            let (ni, text) = lex_raw(i, q, h, &mut line);
                            out.toks.push(Tok {
                                kind: TokKind::Str,
                                text,
                                line: tline,
                            });
                            i = ni;
                            continue;
                        }
                    }
                }
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line: tline,
                });
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unsafe in a comment
            /* unwrap in /* a nested */ block */
            let s = "panic! unsafe .unwrap()";
            let r = r#"mul_add"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids
            .iter()
            .any(|t| t == "unsafe" || t == "unwrap" || t == "mul_add"));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("unsafe in a comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn escaped_quotes_and_byte_literals() {
        let lx = lex(r#"let a = "he said \"hi\""; let b = b'\n'; let c = '\'';"#);
        let strs: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("he said"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nunsafe {}\n";
        let lx = lex(src);
        let uns = lx.toks.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lx = lex("for i in 0..10 { let x = 1.5e-3; }");
        let nums: Vec<String> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
    }
}
