//! The one flag parser and init sequence every binary shares.
//!
//! Before this module, each experiment binary (and `bbgnn-serve`) either
//! duplicated the infrastructure flag handling or grew its own ad-hoc
//! peel-off loop. Now the shared surface lives here:
//!
//! * [`invalid`] / [`parse_value`] — the error-shaping helpers, so every
//!   malformed flag or environment variable reports an
//!   [`InvalidConfig`](BbgnnError::InvalidConfig) naming its source;
//! * [`InfraFlags`] — the cross-cutting flags (`--threads --trace --store
//!   --deadline --budget --faults`) with strict parse-time validation;
//! * [`InfraFlags::init`] — the one correct side-effect order (threads →
//!   tracing → store → supervision → signals), which used to live inside
//!   `ExpConfig` and is now callable by anything with an `InfraFlags`;
//! * [`extract_flag`] — the peel-off helper for binary-specific flags
//!   (`kernel_bench --compare`, `bbgnn-serve --addr`) so custom flags and
//!   shared flags can interleave on one command line.

use bbgnn_errors::{BbgnnError, BbgnnResult};

/// `InvalidConfig` naming the flag or environment variable at fault.
pub fn invalid(what: &str, message: impl Into<String>) -> BbgnnError {
    BbgnnError::InvalidConfig {
        what: what.to_string(),
        message: message.into(),
    }
}

/// Parses one value, naming its source (`--scale`, `BBGNN_SCALE`, ...) and
/// the expected shape on failure.
pub fn parse_value<T: std::str::FromStr>(
    value: Option<&str>,
    what: &str,
    expected: &str,
) -> BbgnnResult<T> {
    let value = value.ok_or_else(|| invalid(what, format!("requires a value ({expected})")))?;
    value
        .parse()
        .map_err(|_| invalid(what, format!("expected {expected}, got {value:?}")))
}

/// Removes every `flag <value>` pair from `args`, returning the last
/// value and the remaining arguments. A trailing bare `flag` is an
/// [`InvalidConfig`](BbgnnError::InvalidConfig).
pub fn extract_flag(args: &[String], flag: &str) -> BbgnnResult<(Option<String>, Vec<String>)> {
    let mut value = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => value = Some(v.clone()),
                None => return Err(invalid(flag, "requires a value")),
            }
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((value, rest))
}

/// The infrastructure flags every entry point accepts. All of them share
/// one property: they change *how* a run executes (parallelism, tracing,
/// caching, bounds, injected faults) but never the bytes a completed cell
/// produces (DESIGN.md §7) — which is why they are parsed in one place
/// and uniformly excluded from checkpoint fingerprints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InfraFlags {
    /// Kernel worker threads (`--threads N` / `BBGNN_THREADS`; `0` = the
    /// machine's available parallelism).
    pub threads: usize,
    /// Trace output path (`--trace out.jsonl` / `BBGNN_TRACE`).
    pub trace: Option<String>,
    /// Artifact-store root (`--store dir` / `BBGNN_STORE`).
    pub store: Option<String>,
    /// Wall-clock deadline spec (`--deadline 90s`; validated here,
    /// installed by [`init`](Self::init)).
    pub deadline: Option<String>,
    /// Resource-budget spec (`--budget epochs=500,queries=2M,mem=1Gi`).
    pub budget: Option<String>,
    /// Fault-injection plan (`--faults <seed>:<site>[@n][,...]`), same
    /// spec language as `BBGNN_FAULTS` and validated against the §11
    /// site catalog at parse time.
    pub faults: Option<String>,
    /// Incremental rescoring for the greedy attackers (`--incremental` /
    /// `BBGNN_INCR=1`): maintain the surrogate propagation across flips
    /// (DESIGN.md §13) instead of recomputing from scratch. Like every
    /// infra flag, the committed flip sequences — and therefore every
    /// table/figure byte — are identical either way (enforced by the CI
    /// incremental-parity step); only Table VII wall-clock changes.
    pub incremental: bool,
}

impl InfraFlags {
    /// The usage fragment for `--help` lines.
    pub const USAGE: &'static str =
        "--threads N --trace PATH --store DIR --deadline DUR --budget SPEC --faults SPEC --incremental";

    /// Reads the environment half of the flags (`BBGNN_THREADS`,
    /// `BBGNN_TRACE`, `BBGNN_STORE`, `BBGNN_INCR`). Deadline/budget/fault
    /// variables are deliberately left to `bbgnn_supervise::init_from_env`
    /// (the supervision layer owns their env semantics); a typo'd
    /// `BBGNN_THREADS` is a loud error here, not a silent all-cores run.
    pub fn from_env(env: impl Fn(&str) -> Option<String>) -> BbgnnResult<Self> {
        let mut flags = Self::default();
        if let Some(v) = env("BBGNN_THREADS") {
            flags.threads = parse_value(Some(&v), "BBGNN_THREADS", "an integer (0 = auto)")?;
        }
        if let Some(v) = env("BBGNN_TRACE") {
            flags.trace = Some(v);
        }
        if let Some(v) = env("BBGNN_STORE") {
            flags.store = Some(v);
        }
        if let Some(v) = env("BBGNN_INCR") {
            flags.incremental = match v.as_str() {
                "1" | "true" => true,
                "0" | "false" => false,
                other => {
                    return Err(invalid(
                        "BBGNN_INCR",
                        format!("expected 0/1/true/false, got {other:?}"),
                    ))
                }
            };
        }
        Ok(flags)
    }

    /// Consumes one infrastructure flag (with its value, if it takes one),
    /// validating strictly. Returns how many argv tokens were consumed —
    /// `0` (not an infra flag; fall through to the caller's own flags),
    /// `1` (valueless flag like `--incremental`), or `2` (`flag value`
    /// pair) — so callers advance their cursor by exactly that much.
    pub fn consume(&mut self, flag: &str, value: Option<&str>) -> BbgnnResult<usize> {
        match flag {
            "--incremental" => {
                self.incremental = true;
                return Ok(1);
            }
            "--threads" => self.threads = parse_value(value, flag, "an integer (0 = auto)")?,
            "--trace" => {
                self.trace = Some(
                    value
                        .ok_or_else(|| invalid(flag, "requires a value (path)"))?
                        .to_string(),
                )
            }
            "--store" => {
                self.store = Some(
                    value
                        .ok_or_else(|| invalid(flag, "requires a value (dir)"))?
                        .to_string(),
                )
            }
            "--deadline" => {
                let spec = value.ok_or_else(|| invalid(flag, "requires a value (e.g. 90s, 2m)"))?;
                bbgnn_supervise::parse_duration(spec).map_err(|e| invalid(flag, e))?;
                self.deadline = Some(spec.to_string());
            }
            "--budget" => {
                let spec = value.ok_or_else(|| {
                    invalid(
                        flag,
                        "requires a value (e.g. epochs=500,queries=2M,mem=1Gi)",
                    )
                })?;
                bbgnn_supervise::RunBudget::parse_spec(spec).map_err(|e| invalid(flag, e))?;
                self.budget = Some(spec.to_string());
            }
            "--faults" => {
                let spec = value
                    .ok_or_else(|| invalid(flag, "requires a value (<seed>:<site>[@n][,...])"))?;
                bbgnn_supervise::fault::validate(spec).map_err(|e| invalid(flag, e))?;
                self.faults = Some(spec.to_string());
            }
            _ => return Ok(0),
        }
        Ok(2)
    }

    /// Applies the flags, in the one order that works (each step feeds
    /// the next): threads before any kernel runs, tracing before any
    /// span-bearing code, the store before any cache-aware code, then
    /// supervision — environment first, explicit flags overwriting the
    /// knobs they name — and signal handlers last. Exits with status 2 on
    /// failures that strict parsing cannot catch (unwritable trace path,
    /// unusable store root).
    pub fn init(&self) {
        // The kernels read BBGNN_THREADS lazily (once, at first kernel
        // call — always after this, since flag parsing is the first thing
        // an entry point does).
        if self.threads != 0 {
            std::env::set_var("BBGNN_THREADS", self.threads.to_string());
        }
        // The process-global incremental switch, before any attack loop
        // consults it. Purely a wall-clock knob: flip sequences are
        // byte-identical either way (DESIGN.md §13).
        bbgnn::linalg::incr::set_enabled(self.incremental);
        if let Some(path) = &self.trace {
            if let Err(e) = bbgnn_obs::init_to_path(path) {
                eprintln!("error: --trace {path}: {e}");
                std::process::exit(2);
            }
        }
        if let Some(path) = &self.store {
            if let Err(e) = bbgnn::store::init_to_path(path) {
                eprintln!("error: --store {path}: {e}");
                std::process::exit(2);
            }
        }
        // Supervision: BBGNN_DEADLINE / BBGNN_BUDGET / BBGNN_FAULTS first,
        // then explicit flags overwrite the knobs they name. Installed
        // before any long-running loop, so the very first check site
        // already sees the caps.
        if let Err(e) = bbgnn_supervise::init_from_env() {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        let mut budget = bbgnn_supervise::RunBudget::default();
        if let Some(spec) = &self.budget {
            match bbgnn_supervise::RunBudget::parse_spec(spec) {
                Ok(b) => budget = b,
                // lint: allow(panic) reason=consume already validated the spec; Err is unreachable
                Err(e) => panic!("--budget: {e}"),
            }
        }
        if let Some(spec) = &self.deadline {
            match bbgnn_supervise::parse_duration(spec) {
                Ok(d) => budget.deadline = Some(d),
                // lint: allow(panic) reason=consume already validated the duration; Err is unreachable
                Err(e) => panic!("--deadline: {e}"),
            }
        }
        bbgnn_supervise::install_budget(&budget);
        if let Some(spec) = &self.faults {
            match bbgnn_supervise::fault::install(spec) {
                Ok(()) => {}
                // lint: allow(panic) reason=consume already validated the plan; Err is unreachable
                Err(e) => panic!("--faults: {e}"),
            }
        }
        // SIGINT/SIGTERM become cooperative cancellation from here on.
        bbgnn_supervise::signal::install();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn consume_takes_only_infra_flags() {
        let mut f = InfraFlags::default();
        assert_eq!(f.consume("--threads", Some("4")).unwrap(), 2);
        assert_eq!(f.consume("--trace", Some("t.jsonl")).unwrap(), 2);
        assert_eq!(f.consume("--store", Some("cache")).unwrap(), 2);
        assert_eq!(f.consume("--deadline", Some("90s")).unwrap(), 2);
        assert_eq!(f.consume("--budget", Some("epochs=5")).unwrap(), 2);
        assert_eq!(
            f.consume("--faults", Some("7:fault/kernel_nan@2")).unwrap(),
            2
        );
        assert_eq!(f.consume("--scale", Some("0.1")).unwrap(), 0);
        assert_eq!(f.threads, 4);
        assert_eq!(f.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(f.store.as_deref(), Some("cache"));
        assert_eq!(f.deadline.as_deref(), Some("90s"));
        assert_eq!(f.budget.as_deref(), Some("epochs=5"));
        assert_eq!(f.faults.as_deref(), Some("7:fault/kernel_nan@2"));
    }

    /// `--incremental` is valueless: it must consume exactly one token,
    /// leaving whatever follows for the caller's own flag handling.
    #[test]
    fn incremental_is_a_one_token_flag() {
        let mut f = InfraFlags::default();
        assert!(!f.incremental);
        // The "value" here is the NEXT flag on a real command line; a
        // two-token consume would swallow it.
        assert_eq!(f.consume("--incremental", Some("--scale")).unwrap(), 1);
        assert!(f.incremental);
        assert_eq!(f.consume("--incremental", None).unwrap(), 1);
    }

    /// Drives `consume` the way entry points do: a cursor loop over argv,
    /// advancing by the returned token count and keeping unconsumed
    /// tokens for the caller.
    fn drive(args: &[&str]) -> BbgnnResult<(InfraFlags, Vec<String>)> {
        let mut f = InfraFlags::default();
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let used = f.consume(args[i], args.get(i + 1).copied())?;
            if used == 0 {
                rest.push(args[i].to_string());
                i += 1;
            } else {
                i += used;
            }
        }
        Ok((f, rest))
    }

    #[test]
    fn consume_token_counts_hold_over_a_full_argv() {
        // Valueless flag directly before a positional argument: consume
        // sees the positional as its would-be value and must not swallow
        // it — a two-token return here would eat the dataset name.
        let (f, rest) = drive(&["--incremental", "cora", "--threads", "2"]).unwrap();
        assert!(f.incremental);
        assert_eq!(f.threads, 2);
        assert_eq!(rest, ["cora"]);

        // Repeated flags: the last occurrence wins, silently — matching
        // extract_flag and letting wrapper scripts append overrides.
        let (f, rest) = drive(&[
            "--threads",
            "2",
            "--trace",
            "a.jsonl",
            "--threads",
            "8",
            "--trace",
            "b.jsonl",
        ])
        .unwrap();
        assert_eq!(f.threads, 8);
        assert_eq!(f.trace.as_deref(), Some("b.jsonl"));
        assert!(rest.is_empty());

        // `--incremental` as the final argv token: consume is called with
        // value=None (nothing follows) and must still take exactly one
        // token rather than erroring like the value-taking flags do.
        let (f, rest) = drive(&["--scale", "0.1", "--incremental"]).unwrap();
        assert!(f.incremental);
        assert_eq!(rest, ["--scale", "0.1"]);

        // Repeating a valueless flag is idempotent, not an error.
        let (f, rest) = drive(&["--incremental", "--incremental"]).unwrap();
        assert!(f.incremental);
        assert!(rest.is_empty());
    }

    #[test]
    fn incr_env_is_strict() {
        for (v, want) in [("1", true), ("true", true), ("0", false), ("false", false)] {
            let env = |name: &str| (name == "BBGNN_INCR").then(|| v.to_string());
            assert_eq!(
                InfraFlags::from_env(env).unwrap().incremental,
                want,
                "BBGNN_INCR={v}"
            );
        }
        let env = |name: &str| (name == "BBGNN_INCR").then(|| "yes".to_string());
        assert!(matches!(
            InfraFlags::from_env(env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "BBGNN_INCR"
        ));
    }

    #[test]
    fn strict_parse_rejects_malformed_values_naming_the_flag() {
        let mut f = InfraFlags::default();
        for (flag, value) in [
            ("--threads", "many"),
            ("--deadline", "soonish"),
            ("--budget", "steps=3"),
            ("--faults", "7:fault/unknown_site"),
            ("--faults", "noseed"),
        ] {
            match f.consume(flag, Some(value)) {
                Err(BbgnnError::InvalidConfig { what, .. }) => assert_eq!(what, flag),
                other => panic!("expected InvalidConfig for {flag} {value}, got {other:?}"),
            }
        }
        // Missing values are reported too, naming the flag.
        for flag in [
            "--threads",
            "--trace",
            "--store",
            "--deadline",
            "--budget",
            "--faults",
        ] {
            assert!(matches!(
                f.consume(flag, None),
                Err(BbgnnError::InvalidConfig { ref what, .. }) if what == flag
            ));
        }
    }

    #[test]
    fn env_half_parses_and_validates() {
        let env = |name: &str| match name {
            "BBGNN_THREADS" => Some("2".to_string()),
            "BBGNN_TRACE" => Some("env.jsonl".to_string()),
            "BBGNN_STORE" => Some("envcache".to_string()),
            _ => None,
        };
        let f = InfraFlags::from_env(env).unwrap();
        assert_eq!(f.threads, 2);
        assert_eq!(f.trace.as_deref(), Some("env.jsonl"));
        assert_eq!(f.store.as_deref(), Some("envcache"));
        assert_eq!(InfraFlags::from_env(no_env).unwrap(), InfraFlags::default());
        let env = |name: &str| (name == "BBGNN_THREADS").then(|| "many".to_string());
        assert!(matches!(
            InfraFlags::from_env(env),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "BBGNN_THREADS"
        ));
    }

    #[test]
    fn extract_flag_peels_pairs_and_keeps_the_rest() {
        let args: Vec<String> = ["--scale", "0.1", "--compare", "base.json", "--runs", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (value, rest) = extract_flag(&args, "--compare").unwrap();
        assert_eq!(value.as_deref(), Some("base.json"));
        assert_eq!(rest, ["--scale", "0.1", "--runs", "2"]);
        // Absent flag: untouched.
        let (value, rest) = extract_flag(&rest, "--compare").unwrap();
        assert_eq!(value, None);
        assert_eq!(rest.len(), 4);
        // Trailing bare flag is a loud error.
        let bare = vec!["--compare".to_string()];
        assert!(matches!(
            extract_flag(&bare, "--compare"),
            Err(BbgnnError::InvalidConfig { ref what, .. }) if what == "--compare"
        ));
    }
}
