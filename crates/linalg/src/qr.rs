//! Thin QR factorization via modified Gram–Schmidt.
//!
//! Used by the randomized SVD range finder and the Lanczos
//! reorthogonalization step. Modified Gram–Schmidt with a single
//! reorthogonalization pass is numerically adequate for the modest matrix
//! sizes (`n ≤ a few thousand`, `k ≤ a few hundred`) in this workspace.

use crate::DenseMatrix;

/// Result of a thin QR factorization `A = Q R` with `Q` (m×k) having
/// orthonormal columns and `R` (k×k) upper-triangular.
#[derive(Clone, Debug)]
pub struct ThinQr {
    /// Orthonormal factor, `m × k`.
    pub q: DenseMatrix,
    /// Upper-triangular factor, `k × k`.
    pub r: DenseMatrix,
}

/// Computes the thin QR factorization of `a` (m×k, m ≥ k) by modified
/// Gram–Schmidt with one reorthogonalization pass.
///
/// Columns that become numerically zero (rank deficiency) are replaced by
/// zero columns in `Q` with a zero diagonal in `R`.
pub fn thin_qr(a: &DenseMatrix) -> ThinQr {
    let (m, k) = a.shape();
    // Work column-wise: store Q^T so columns are contiguous. Columns are
    // pulled with `col_into` straight into the working rows rather than
    // materializing a full transpose.
    let mut qt = DenseMatrix::zeros(k, m); // row j = column j of A
    for j in 0..k {
        a.col_into(j, qt.row_mut(j));
    }
    let mut r = DenseMatrix::zeros(k, k);
    for j in 0..k {
        // Two orthogonalization passes against previous columns.
        for _pass in 0..2 {
            for i in 0..j {
                let proj = dot_rows(&qt, i, j, m);
                if proj != 0.0 {
                    subtract_scaled_row(&mut qt, j, i, proj, m);
                    r.add_at(i, j, proj);
                }
            }
        }
        let norm = norm_row(&qt, j, m);
        r.set(j, j, norm);
        if norm > 1e-14 {
            scale_row(&mut qt, j, 1.0 / norm, m);
        } else {
            zero_row(&mut qt, j, m);
        }
    }
    let mut q = DenseMatrix::zeros(m, k);
    for j in 0..k {
        q.set_col(j, qt.row(j));
    }
    ThinQr { q, r }
}

fn dot_rows(qt: &DenseMatrix, i: usize, j: usize, m: usize) -> f64 {
    let ri = &qt.as_slice()[i * m..(i + 1) * m];
    let rj = &qt.as_slice()[j * m..(j + 1) * m];
    ri.iter().zip(rj).map(|(&a, &b)| a * b).sum()
}

fn subtract_scaled_row(qt: &mut DenseMatrix, j: usize, i: usize, alpha: f64, m: usize) {
    // row j -= alpha * row i ; rows are disjoint because i < j.
    let data = qt.as_mut_slice();
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    let (left, right) = data.split_at_mut(hi * m);
    let row_i = &left[lo * m..(lo + 1) * m];
    let row_j = &mut right[..m];
    for (x, &y) in row_j.iter_mut().zip(row_i) {
        *x -= alpha * y;
    }
}

fn norm_row(qt: &DenseMatrix, j: usize, m: usize) -> f64 {
    qt.as_slice()[j * m..(j + 1) * m]
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
}

fn scale_row(qt: &mut DenseMatrix, j: usize, alpha: f64, m: usize) {
    for v in &mut qt.as_mut_slice()[j * m..(j + 1) * m] {
        *v *= alpha;
    }
}

fn zero_row(qt: &mut DenseMatrix, j: usize, m: usize) {
    for v in &mut qt.as_mut_slice()[j * m..(j + 1) * m] {
        *v = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = DenseMatrix::uniform(20, 5, 1.0, 11);
        let ThinQr { q, r } = thin_qr(&a);
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = DenseMatrix::uniform(30, 8, 2.0, 3);
        let ThinQr { q, .. } = thin_qr(&a);
        let gram = q.matmul_tn(&q);
        assert!(gram.max_abs_diff(&DenseMatrix::identity(8)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::uniform(10, 6, 1.0, 4);
        let ThinQr { r, .. } = thin_qr(&a);
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0, "R[{i}][{j}] must be 0");
            }
        }
    }

    #[test]
    fn rank_deficient_input_yields_zero_columns() {
        // Two identical columns.
        let mut a = DenseMatrix::zeros(5, 2);
        for i in 0..5 {
            a.set(i, 0, (i + 1) as f64);
            a.set(i, 1, (i + 1) as f64);
        }
        let ThinQr { q, r } = thin_qr(&a);
        assert!(r.get(1, 1).abs() < 1e-12);
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }
}
