//! PEEGA — the paper's Practical, Effective and Efficient black-box GNN
//! Attacker (Sec. III).
//!
//! PEEGA reads only the adjacency matrix `A` and the node features `X`. It
//! maximizes the single-level objective of Def. 3,
//!
//! ```text
//!   max_{Â, X̂}  Σ_v ‖Â_n²[v] X̂ − A_n²[v] X‖_p
//!             + λ Σ_v Σ_{u ∈ N_v} ‖Â_n²[v] X̂ − A_n²[u] X‖_p
//!   s.t.  ‖Â − A‖₀ + β‖X̂ − X‖₀ ≤ δ,
//! ```
//!
//! with the greedy gradient-scored loop of Alg. 1: at each step the
//! gradients of the objective with respect to the (relaxed, dense) `Â` and
//! `X̂` are multiplied elementwise with the candidate direction matrices
//! `A_t = −2Â + 1` and `X_f = −2X̂ + 1`, and the highest-scoring flip is
//! committed. The surrogate depth (2 hops above) is configurable for the
//! Fig. 7(b) experiment, and the feature-cost weight `β` implements the
//! Sec. V-D1 ablation.

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext};
use std::rc::Rc;
use std::time::Instant;

/// Which perturbation types PEEGA may use (Fig. 5a ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AttackSpace {
    /// Topology modifications and feature perturbations (TM+FP).
    #[default]
    Both,
    /// Topology modifications only (TM).
    TopologyOnly,
    /// Feature perturbations only (FP).
    FeatureOnly,
}

/// Which nodes the Def. 3 sums range over.
///
/// The paper follows Metattack and "compute[s] the objective on training
/// nodes" (Sec. V-A3): concentrating the representation drift on the
/// labeled nodes corrupts exactly what the victim learns from, which makes
/// the poisoning attack markedly stronger than spreading it uniformly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ObjectiveNodes {
    /// Sum over the training split (the paper's setting).
    #[default]
    Train,
    /// Sum over every node.
    All,
    /// Sum over a custom node set.
    Custom(Vec<usize>),
}

/// PEEGA configuration. Defaults follow the paper's tuned values on Cora
/// (`λ = 0.01`, `p = 2`, 2-hop surrogate, β = 1, objective on train nodes).
#[derive(Clone, Debug)]
pub struct PeegaConfig {
    /// Perturbation rate `r`; the budget is `δ = r · ‖A‖₀`.
    pub rate: f64,
    /// Trade-off `λ` between the self view and the global view.
    pub lambda: f64,
    /// Norm order `p ∈ {1, 2, 3}`.
    pub p: f64,
    /// Surrogate propagation depth `l` (paper default 2).
    pub hops: usize,
    /// Relative cost `β` of one feature flip (Sec. V-D1).
    pub beta: f64,
    /// Perturbation types allowed.
    pub space: AttackSpace,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// Nodes the objective sums over (Sec. V-A3).
    pub objective_nodes: ObjectiveNodes,
    /// Worker threads for the surrogate-gradient kernels and the candidate
    /// scans (`0` = defer to `BBGNN_THREADS` / available parallelism). The
    /// result is bitwise-identical for every value.
    pub threads: usize,
    /// Maintain the surrogate propagation `A_n^l X` incrementally across
    /// committed flips (DESIGN.md §13): the clean propagation is served
    /// from the engine and the poisoned-graph state stays checkpointable
    /// in the artifact store at resync boundaries. Byte-identical flip
    /// sequences either way; also honoured when the process-global
    /// `--incremental` / `BBGNN_INCR` switch is on.
    pub incremental: bool,
}

impl Default for PeegaConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            lambda: 0.01,
            p: 2.0,
            hops: 2,
            beta: 1.0,
            space: AttackSpace::Both,
            attacker_nodes: AttackerNodes::All,
            objective_nodes: ObjectiveNodes::Train,
            threads: 0,
            incremental: false,
        }
    }
}

/// The PEEGA attacker. See the module docs for the algorithm.
#[derive(Clone, Debug)]
pub struct Peega {
    /// Configuration.
    pub config: PeegaConfig,
}

impl Peega {
    /// Creates a PEEGA attacker.
    pub fn new(config: PeegaConfig) -> Self {
        Self { config }
    }

    /// Builds the Def. 3 objective on a tape over the current relaxed
    /// `Â` / `X̂` and returns `(objective, a_id, x_id)`.
    ///
    /// `row_mask` restricts the node sums (Sec. V-A3) — rows outside the
    /// objective set are zeroed before the norms, and `masked_adj` holds
    /// only the original edges whose source is in the objective set.
    #[allow(clippy::too_many_arguments)]
    fn objective(
        &self,
        tape: &mut Tape,
        a_hat: &DenseMatrix,
        x_hat: &DenseMatrix,
        clean_prop: &Rc<DenseMatrix>,
        masked_adj: &Rc<CsrMatrix>,
        eye: &Rc<DenseMatrix>,
        row_mask: &Rc<DenseMatrix>,
    ) -> (TensorId, TensorId, TensorId) {
        let a = tape.var(a_hat.clone());
        let x = tape.var(x_hat.clone());
        // GCN normalization chain on the dense adjacency variable.
        let a_loop = tape.add_const(a, Rc::clone(eye));
        let deg = tape.row_sum(a_loop);
        let dinv = tape.pow_scalar(deg, -0.5);
        let scaled = tape.scale_rows(a_loop, dinv);
        let an = tape.scale_cols(scaled, dinv);
        // Â_nˡ X̂ via repeated (n×n)(n×d) products (cheaper than Â_nˡ).
        let mut h = x;
        for _ in 0..self.config.hops {
            // lint: allow(check_site) reason=hop chain is one objective evaluation; the §11 check belongs to the attack iteration loop driving it
            h = tape.matmul(an, h);
        }
        // Self view (Eq. 5), restricted to the objective nodes.
        let diff = tape.sub_const(h, clean_prop);
        let masked_diff = tape.hadamard_const(diff, Rc::clone(row_mask));
        let self_view = tape.row_lp_norm_sum(masked_diff, self.config.p);
        // Global view (Eq. 6) over the ORIGINAL topology's edges whose
        // source node is in the objective set.
        let objective = if self.config.lambda != 0.0 {
            let global = tape.neighbor_lp_norm_sum(
                h,
                Rc::clone(masked_adj),
                Rc::clone(clean_prop),
                self.config.p,
            );
            let weighted = tape.scalar_mul(global, self.config.lambda);
            tape.add(self_view, weighted)
        } else {
            self_view
        };
        (objective, a, x)
    }

    /// The node set the objective sums over.
    fn objective_node_set(&self, g: &Graph) -> Vec<usize> {
        match &self.config.objective_nodes {
            ObjectiveNodes::Train => g.split.train.clone(),
            ObjectiveNodes::All => (0..g.num_nodes()).collect(),
            ObjectiveNodes::Custom(v) => v.clone(),
        }
    }
}

/// A greedy candidate: either an edge flip or a feature flip.
#[derive(Clone, Copy, Debug)]
enum Candidate {
    Edge(usize, usize),
    Feature(usize, usize),
}

/// `g.propagate(hops)` (the black-box surrogate embedding `A_n^k X`)
/// warm-started from the artifact store. Keyed on the full graph content
/// hash: the propagation reads both adjacency and features, either of
/// which the attacker may have perturbed.
fn propagate_cached(g: &Graph, hops: usize) -> DenseMatrix {
    let key = bbgnn_store::enabled().then(|| {
        bbgnn_store::Key::new("prep/propagate")
            .hash_field("graph", g.content_hash())
            .field("hops", hops)
    });
    if let Some(key) = &key {
        if let Some(m) = bbgnn_store::lookup::<DenseMatrix>(key) {
            return m;
        }
    }
    let prop = g.propagate(hops);
    if let Some(key) = &key {
        bbgnn_store::publish(key, &prop);
    }
    prop
}

impl Attacker for Peega {
    fn name(&self) -> &'static str {
        "PEEGA"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let cfg = &self.config;
        assert!(cfg.hops >= 1, "surrogate needs at least one hop");
        assert!(cfg.beta > 0.0, "feature cost must be positive");
        let n = g.num_nodes();
        let budget = budget_for(g, cfg.rate) as f64;
        let _span = bbgnn_obs::span!(
            "attack/peega",
            nodes = n,
            rate = cfg.rate,
            budget = budget,
            hops = cfg.hops
        );
        // Incrementally maintained propagation over the poisoned graph:
        // serves the clean H = A_n^l X below (bitwise-equal to
        // `propagate`) and keeps a store-checkpointable state as flips
        // commit (DESIGN.md §13).
        let mut engine = crate::incremental::active(cfg.incremental)
            .then(|| crate::incremental::engine_for(g, cfg.hops));
        let clean_prop = Rc::new(match &engine {
            Some(eng) => eng.propagated().clone(),
            None => propagate_cached(g, cfg.hops),
        });
        let eye = Rc::new(DenseMatrix::identity(n));
        // Objective-node restriction (Sec. V-A3).
        let obj_nodes = self.objective_node_set(g);
        assert!(!obj_nodes.is_empty(), "objective node set is empty");
        let mut row_mask = DenseMatrix::zeros(n, g.feature_dim());
        for &v in &obj_nodes {
            for x in row_mask.row_mut(v) {
                *x = 1.0;
            }
        }
        let row_mask = Rc::new(row_mask);
        let in_objective: std::collections::HashSet<usize> = obj_nodes.iter().copied().collect();
        let masked_adj = Rc::new(CsrMatrix::from_triplets(
            n,
            n,
            g.edges().flat_map(|(u, v)| {
                let mut t = Vec::with_capacity(2);
                if in_objective.contains(&u) {
                    t.push((u, v, 1.0));
                }
                if in_objective.contains(&v) {
                    t.push((v, u, 1.0));
                }
                t
            }),
        ));

        let mut poisoned = g.clone();
        let mut a_hat = g.adjacency_dense();
        let mut x_hat = g.features.clone();
        let mut spent = 0.0;
        // Each candidate is committed at most once: revisiting a flipped
        // entry would refund budget and can cycle forever when the
        // post-flip gradient reverses sign (greedy overshoot).
        let mut touched_edges = std::collections::HashSet::new();
        let mut touched_features = std::collections::HashSet::new();

        let allow_topology = cfg.space != AttackSpace::FeatureOnly;
        let allow_features = cfg.space != AttackSpace::TopologyOnly;

        // One execution context for the whole greedy loop: every step's
        // tape shares the thread pool and recycles its tensor buffers
        // through the same workspace arena, and the candidate scans fan
        // out over the same pool.
        let ctx = Rc::new(ExecContext::with_threads(cfg.threads));

        let mut truncated = false;
        loop {
            // Cooperative stop site (DESIGN.md §11): the perturbations
            // committed so far form the degraded result.
            if crate::should_stop("attack/peega/perturb") {
                truncated = true;
                break;
            }
            // Affordability of each move class. Every commit is final
            // (`touched_*` forbids revisits, see above), so costs are
            // strictly additive — `spent` only grows, by 1 per edge flip
            // and β per feature flip, and a full-budget run exhausts the
            // budget exactly: `edge_flips + β·feature_flips == δ`.
            let can_edge = allow_topology && spent + 1.0 <= budget + 1e-9;
            let can_feat = allow_features && spent + cfg.beta <= budget + 1e-9;
            if !can_edge && !can_feat {
                break;
            }

            // lint: allow(clock) reason=step timing feeds an obs event, is gated on tracing being enabled, and never branches numerics
            let step_start = bbgnn_obs::enabled().then(Instant::now);
            let mut tape = Tape::with_context(Rc::clone(&ctx));
            let (obj, a_id, x_id) = self.objective(
                &mut tape,
                &a_hat,
                &x_hat,
                &clean_prop,
                &masked_adj,
                &eye,
                &row_mask,
            );
            let obj_value = tape.value(obj).get(0, 0);
            tape.backward(obj);
            // lint: allow(panic) reason=a_id is a tape.var leaf on the path to obj, so backward always populates its gradient
            let grad_a = tape.grad(a_id).expect("adjacency gradient");
            // lint: allow(panic) reason=x_id is a tape.var leaf on the path to obj, so backward always populates its gradient
            let grad_x = tape.grad(x_id).expect("feature gradient");
            let pool = ctx.pool();

            // Best topology candidate: score of flipping the undirected
            // pair {u, v} combines both directed entries (Â is symmetric).
            // Both scans fan out over the pool with the deterministic
            // chunk-ordered merge of [`crate::scan`], reproducing the
            // sequential first-max exactly for every worker count.
            let best_edge = if can_edge {
                crate::scan::best_edge_flip(pool, n, |u, v| {
                    if touched_edges.contains(&(u, v)) || !cfg.attacker_nodes.edge_allowed(u, v) {
                        return None;
                    }
                    let dir = 1.0 - 2.0 * a_hat.get(u, v);
                    Some((grad_a.get(u, v) + grad_a.get(v, u)) * dir)
                })
                .map(|(s, u, v)| (s, Candidate::Edge(u, v)))
            } else {
                None
            };
            let best_feat = if can_feat {
                crate::scan::best_entry_flip(pool, n, x_hat.cols(), |v, i| {
                    if !cfg.attacker_nodes.contains(v) || touched_features.contains(&(v, i)) {
                        return None;
                    }
                    // Normalized by β as in Sec. V-D1: S_f = S_f / β.
                    Some(grad_x.get(v, i) * (1.0 - 2.0 * x_hat.get(v, i)) / cfg.beta)
                })
                .map(|(s, v, i)| (s, Candidate::Feature(v, i)))
            } else {
                None
            };
            // Sequential semantics: edges are scanned before features, so a
            // feature flip wins only with a strictly higher score.
            let best = crate::scan::merge_best(best_edge, best_feat);
            let Some((score, cand)) = best else { break };
            let scan_s = step_start.map_or(f64::NAN, |t| t.elapsed().as_secs_f64());
            match cand {
                Candidate::Edge(u, v) => {
                    touched_edges.insert((u, v));
                    let existed_now = poisoned.has_edge(u, v);
                    poisoned.flip_edge(u, v);
                    let new_val = if existed_now { 0.0 } else { 1.0 };
                    a_hat.set(u, v, new_val);
                    a_hat.set(v, u, new_val);
                    if let Some(eng) = engine.as_mut() {
                        crate::incremental::commit_edge_flip(eng, u, v);
                    }
                    spent += 1.0;
                    bbgnn_obs::counter("attack/edge_flips", 1);
                    bbgnn_obs::event!(
                        "peega/perturb",
                        kind = "edge",
                        u = u,
                        v = v,
                        score = score,
                        objective = obj_value,
                        spent = spent,
                        scan_s = scan_s
                    );
                }
                Candidate::Feature(v, i) => {
                    touched_features.insert((v, i));
                    let new_val = poisoned.flip_feature(v, i);
                    x_hat.set(v, i, new_val);
                    if let Some(eng) = engine.as_mut() {
                        crate::incremental::commit_feature_flip(eng, v, i, new_val);
                    }
                    spent += cfg.beta;
                    bbgnn_obs::counter("attack/feature_flips", 1);
                    bbgnn_obs::event!(
                        "peega/perturb",
                        kind = "feature",
                        u = v,
                        v = i,
                        score = score,
                        objective = obj_value,
                        spent = spent,
                        scan_s = scan_s
                    );
                }
            }
        }

        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: g.feature_difference(&poisoned),
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_gnn::gcn::Gcn;
    use bbgnn_gnn::train::TrainConfig;
    use bbgnn_gnn::NodeClassifier;
    use bbgnn_graph::datasets::DatasetSpec;
    use bbgnn_graph::metrics::edge_diff_breakdown;

    fn small_graph() -> bbgnn_graph::Graph {
        DatasetSpec::CoraLike.generate(0.04, 51)
    }

    #[test]
    fn respects_budget() {
        let g = small_graph();
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.1,
            ..Default::default()
        });
        let r = atk.attack(&g);
        let budget = budget_for(&g, 0.1);
        assert!(
            r.edge_flips + r.feature_flips <= budget,
            "spent {} + {} > budget {budget}",
            r.edge_flips,
            r.feature_flips
        );
        assert!(
            r.edge_flips + r.feature_flips > 0,
            "attack must do something"
        );
    }

    /// Pin for the commit-once budget accounting (ISSUE 8 satellite):
    /// `spent` only ever grows — by 1 per edge flip and β per feature
    /// flip, no refunds — so a full-budget run exhausts the budget
    /// *exactly*: `edge_flips + β·feature_flips == δ`. The candidate space
    /// (n² pairs, commit-once) vastly exceeds the budget, so the loop can
    /// only terminate by exhaustion.
    #[test]
    fn full_budget_run_exhausts_budget_exactly() {
        let g = small_graph();
        for beta in [1.0, 2.0] {
            let mut atk = Peega::new(PeegaConfig {
                rate: 0.1,
                beta,
                ..Default::default()
            });
            let r = atk.attack(&g);
            let budget = budget_for(&g, 0.1) as f64;
            let spent = r.edge_flips as f64 + beta * r.feature_flips as f64;
            assert_eq!(
                spent, budget,
                "β={beta}: spent {} + {beta}·{} must equal δ={budget}",
                r.edge_flips, r.feature_flips
            );
        }
    }

    #[test]
    fn incremental_matches_dense_path_bitwise() {
        let g = small_graph();
        let base = PeegaConfig {
            rate: 0.08,
            ..Default::default()
        };
        let dense = Peega::new(base.clone()).attack(&g);
        let incr = Peega::new(PeegaConfig {
            incremental: true,
            ..base
        })
        .attack(&g);
        assert_eq!(dense.edge_flips, incr.edge_flips);
        assert_eq!(dense.feature_flips, incr.feature_flips);
        assert_eq!(
            dense.poisoned.content_hash(),
            incr.poisoned.content_hash(),
            "incremental PEEGA must commit the exact dense flip sequence"
        );
    }

    #[test]
    fn does_not_mutate_input() {
        let g = small_graph();
        let edges_before = g.num_edges();
        let feats_before = g.features.clone();
        let mut atk = Peega::new(PeegaConfig::default());
        let _ = atk.attack(&g);
        assert_eq!(g.num_edges(), edges_before);
        assert_eq!(g.features, feats_before);
    }

    #[test]
    fn topology_only_never_touches_features() {
        let g = small_graph();
        let mut atk = Peega::new(PeegaConfig {
            space: AttackSpace::TopologyOnly,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert_eq!(r.feature_flips, 0);
        assert!(r.edge_flips > 0);
    }

    #[test]
    fn feature_only_never_touches_topology() {
        let g = small_graph();
        let mut atk = Peega::new(PeegaConfig {
            space: AttackSpace::FeatureOnly,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert_eq!(r.edge_flips, 0);
        assert!(r.feature_flips > 0);
    }

    #[test]
    fn attacker_subset_is_respected() {
        let g = small_graph();
        let subset = AttackerNodes::random_subset(g.num_nodes(), 0.2, 3);
        let allowed = subset.clone();
        let mut atk = Peega::new(PeegaConfig {
            attacker_nodes: subset,
            ..Default::default()
        });
        let r = atk.attack(&g);
        // Every modified edge has an accessible endpoint; every modified
        // feature row is accessible.
        for (u, v) in r.poisoned.edges() {
            if !g.has_edge(u, v) {
                assert!(allowed.edge_allowed(u, v), "illegal edge add ({u},{v})");
            }
        }
        for (u, v) in g.edges() {
            if !r.poisoned.has_edge(u, v) {
                assert!(allowed.edge_allowed(u, v), "illegal edge delete ({u},{v})");
            }
        }
        for v in 0..g.num_nodes() {
            for i in 0..g.feature_dim() {
                if g.features.get(v, i) != r.poisoned.features.get(v, i) {
                    assert!(allowed.contains(v), "illegal feature flip at node {v}");
                }
            }
        }
    }

    #[test]
    fn degrades_gcn_accuracy() {
        let g = DatasetSpec::CoraLike.generate(0.08, 52);
        let mut clean_gcn = Gcn::paper_default(TrainConfig::fast_test());
        clean_gcn.fit(&g);
        let clean_acc = clean_gcn.test_accuracy(&g);

        let mut atk = Peega::new(PeegaConfig {
            rate: 0.2,
            ..Default::default()
        });
        let r = atk.attack(&g);
        let mut poisoned_gcn = Gcn::paper_default(TrainConfig::fast_test());
        poisoned_gcn.fit(&r.poisoned);
        let poisoned_acc = poisoned_gcn.test_accuracy(&r.poisoned);
        assert!(
            poisoned_acc < clean_acc - 0.02,
            "PEEGA must degrade accuracy: clean {clean_acc} vs poisoned {poisoned_acc}"
        );
    }

    #[test]
    fn tends_to_add_cross_label_edges() {
        // The Sec. IV-A insight: attackers mostly ADD edges between nodes
        // with DIFFERENT labels.
        let g = DatasetSpec::CoraLike.generate(0.06, 53);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.15,
            ..Default::default()
        });
        let r = atk.attack(&g);
        let d = edge_diff_breakdown(&g, &r.poisoned);
        assert!(
            d.add_diff > d.add_same,
            "cross-label additions {0} should dominate same-label {1}",
            d.add_diff,
            d.add_same
        );
    }

    #[test]
    fn is_deterministic() {
        let g = small_graph();
        let mut a1 = Peega::new(PeegaConfig::default());
        let mut a2 = Peega::new(PeegaConfig::default());
        let r1 = a1.attack(&g);
        let r2 = a2.attack(&g);
        let e1: Vec<_> = r1.poisoned.edges().collect();
        let e2: Vec<_> = r2.poisoned.edges().collect();
        assert_eq!(e1, e2);
        assert_eq!(r1.poisoned.features, r2.poisoned.features);
    }

    /// The determinism contract: the poisoned graph is bitwise-identical
    /// for every worker count — the parallel candidate scans and the
    /// threaded tape kernels reproduce the sequential result exactly.
    #[test]
    fn thread_count_does_not_change_result() {
        let g = small_graph();
        let run = |threads: usize| {
            let mut atk = Peega::new(PeegaConfig {
                threads,
                ..Default::default()
            });
            atk.attack(&g)
        };
        let r1 = run(1);
        for threads in [2, 4] {
            let rn = run(threads);
            let e1: Vec<_> = r1.poisoned.edges().collect();
            let en: Vec<_> = rn.poisoned.edges().collect();
            assert_eq!(e1, en, "{threads}-thread edge flips diverged");
            assert_eq!(
                r1.poisoned.features, rn.poisoned.features,
                "{threads}-thread feature flips diverged"
            );
        }
    }
}
